//! Workspace-level umbrella for the ParaDL reproduction.
//!
//! The real API lives in the member crates (see `crates/`); this package
//! exists to host the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`). It simply re-exports the [`paradl`]
//! facade crate.

#![forbid(unsafe_code)]

pub use paradl::*;
