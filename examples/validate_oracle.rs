//! Validating the oracle against the simulator (§5.2): run one amortized
//! grid sweep, replay each cell's winners through the distributed-training
//! simulator (the repo's stand-in for the paper's 1024-GPU measurements),
//! and print the resulting `FidelityReport` — how far the projections drift
//! from "measured" runs per strategy family, and whether the oracle still
//! *ranks* candidates in the measured order (its actual job).
//!
//! Run with: `cargo run --release --example validate_oracle`

use paradl::prelude::*;

fn main() {
    // ResNet-50 and CosmoFlow across two batches and two clusters, keeping
    // the 5 best candidates per cell for replay. CosmoFlow needs ≥ 256 PEs
    // of spatial splitting before its activations fit a 16 GiB V100 at
    // these batches — cells where nothing fits are dropped from the report.
    let constraints = Constraints { max_pes: 256, top_k: Some(5), ..Constraints::default() };
    let grid = QueryGrid::new(constraints)
        .with_model(paradl::models::resnet50(), TrainingConfig::imagenet(256))
        .with_model(paradl::models::cosmoflow(), TrainingConfig::cosmoflow(256))
        .with_batches([256usize, 512])
        .with_cluster(ClusterSpec::paper_system())
        .with_cluster(ClusterSpec::workstation(8));

    // The conformance harness: sweep → replay winners → fidelity report.
    // Overheads model the paper's ChainerMNX runs without external
    // congestion; every replay seeds its own sampler, so the report is
    // deterministic under any thread count.
    let harness = Conformance::new()
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(3)
        .with_replay_top(5);
    let report = harness.run(&grid).expect("feasible winners in every cell");

    println!("replayed {} winners over {} cells\n", report.num_samples(), report.cells.len());
    println!(
        "{:<14} {:>7} {:>10} {:>9} {:>9} {:>10}",
        "family", "samples", "signed", "meanAPE", "maxAPE", "accuracy"
    );
    for family in &report.families {
        let s = &family.stats;
        println!(
            "{:<14} {:>7} {:>+9.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
            family.family.to_string(),
            s.samples,
            s.mean_signed_error * 100.0,
            s.mean_ape * 100.0,
            s.max_ape * 100.0,
            s.mean_accuracy * 100.0
        );
    }
    let o = &report.overall;
    println!(
        "{:<14} {:>7} {:>+9.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
        "overall",
        o.samples,
        o.mean_signed_error * 100.0,
        o.mean_ape * 100.0,
        o.max_ape * 100.0,
        o.mean_accuracy * 100.0
    );

    // Rank correlation per cell: even where absolute projections drift, the
    // oracle earns its keep by ordering candidates like the measured runs.
    println!(
        "\n{:<14} {:>6} {:<12} {:>8} {:>12}",
        "model", "B", "cluster", "winners", "Spearman rho"
    );
    for cell in &report.cells {
        let model = &grid.models()[cell.query.model].model.name;
        let cluster = if cell.query.cluster == 0 { "paper" } else { "workstation" };
        match cell.rank_correlation {
            Some(rho) => println!(
                "{:<14} {:>6} {:<12} {:>8} {:>12.3}",
                model,
                cell.query.batch,
                cluster,
                cell.samples.len(),
                rho
            ),
            None => println!(
                "{:<14} {:>6} {:<12} {:>8} {:>12}",
                model,
                cell.query.batch,
                cluster,
                cell.samples.len(),
                "n/a"
            ),
        }
    }
    if let Some(rho) = report.mean_rank_correlation {
        println!("\nmean rank correlation: {rho:.3}");
    }
    println!("paper §5.2 reference: 86.74% average accuracy across models and strategies");
}
