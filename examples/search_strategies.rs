//! Exhaustive strategy search: enumerate every candidate parallelization of
//! ResNet-50 under the paper's system constraints, prune the ones that don't
//! fit GPU memory, cost the rest in parallel across all cores, and print the
//! ranked winners — overall and per PE budget.
//!
//! Run with: `cargo run --release --example search_strategies`

use paradl::prelude::*;

fn main() {
    let model = paradl::models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    let oracle = Oracle::new(&model, &device, &cluster, config);

    let constraints = Constraints::default();
    let space = oracle.strategy_space(&constraints);
    println!(
        "{}: {} candidate strategies under max_pes={}, capacity={:.0} GiB\n",
        model.name,
        space.len(),
        constraints.max_pes,
        constraints.memory_capacity_bytes / (1024.0 * 1024.0 * 1024.0),
    );

    let report = oracle.search(&constraints);
    println!(
        "enumerated {}, pruned {} by memory, costed {}\n",
        report.enumerated,
        report.pruned_by_memory,
        report.evaluated()
    );

    // The same search with branch-and-bound pruning: keep only the top 10,
    // skip candidates whose compute-only lower bound can't beat the running
    // winners. Same ranking prefix and budget winners, less work.
    let pruned = oracle.search(&Constraints { top_k: Some(10), ..constraints });
    println!(
        "top-k search: {} bound-pruned, {} costed, same winner: {}\n",
        pruned.pruned_by_bound,
        pruned.evaluated(),
        pruned.best().map(|b| b.strategy == report.best().unwrap().strategy).unwrap_or(false),
    );

    println!("top 10 strategies by projected epoch time:");
    println!(
        "{:<30} {:>6} {:>14} {:>14} {:>12}",
        "strategy", "PEs", "epoch (s)", "compute (s)", "comm (s)"
    );
    for candidate in report.ranked.iter().take(10) {
        let epoch = &candidate.projection.cost.per_epoch;
        println!(
            "{:<30} {:>6} {:>14.2} {:>14.2} {:>12.2}",
            candidate.strategy.to_string(),
            candidate.strategy.total_pes(),
            epoch.total(),
            epoch.compute(),
            epoch.communication()
        );
    }

    println!("\nbest strategy per PE budget:");
    println!("{:<8} {:<30} {:>14}", "budget", "winner", "epoch (s)");
    for winner in &report.best_per_budget {
        println!(
            "{:<8} {:<30} {:>14.2}",
            winner.max_pes,
            winner.candidate.strategy.to_string(),
            winner.candidate.epoch_time()
        );
    }

    if let Some(best) = report.best() {
        let phases = &best.projection.cost.per_epoch;
        println!("\nwinner {} — per-phase breakdown (s/epoch):", best.strategy);
        println!("  forward+backward  {:>12.2}", phases.forward_backward);
        println!("  weight update     {:>12.2}", phases.weight_update);
        println!("  gradient exchange {:>12.2}", phases.gradient_exchange);
        println!("  fb collectives    {:>12.2}", phases.fb_collective);
        println!("  halo exchange     {:>12.2}", phases.halo_exchange);
        println!("  pipeline p2p      {:>12.2}", phases.pipeline_p2p);
    }
}
