//! Scaling study: compare the oracle's projection with the simulator's
//! "measured" runs for VGG16 under data, filter and data+filter parallelism —
//! a miniature version of the paper's Figure 3 — and print the projection
//! accuracy of each point.
//!
//! Run with: `cargo run --release --example choose_strategy`

use paradl::prelude::*;

fn main() {
    let model = paradl::models::vgg16();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let simulator = Simulator::new(&device, &cluster)
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(3);

    println!("{} — oracle vs simulated measurement (per-iteration time)\n", model.name);
    println!(
        "{:<22} {:>6} {:>14} {:>14} {:>10}",
        "strategy", "GPUs", "projected (s)", "measured (s)", "accuracy"
    );

    // Data parallelism and the data+filter hybrid: weak scaling, 16 samples/GPU.
    for p in [16usize, 64, 256] {
        let config = TrainingConfig::imagenet(16 * p);
        let oracle = Oracle::new(&model, &device, &cluster, config);
        for strategy in [Strategy::Data { p }, Strategy::DataFilter { p1: p / 4, p2: 4 }] {
            let projected = oracle.project(strategy).cost;
            let measured = simulator.simulate(&model, &config, strategy);
            let acc = projection_accuracy(
                projected.per_iteration().total(),
                measured.per_iteration.total(),
            );
            println!(
                "{:<22} {:>6} {:>14.4} {:>14.4} {:>9.1}%",
                strategy.to_string(),
                p,
                projected.per_iteration().total(),
                measured.per_iteration.total(),
                acc * 100.0
            );
        }
    }

    // Filter parallelism: strong scaling with a fixed batch of 32 (the
    // paper's filter/channel columns), limited to min_l F_l = 64 GPUs.
    for p in [4usize, 16, 64] {
        let config = TrainingConfig::imagenet(32);
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let strategy = Strategy::Filter { p };
        let projected = oracle.project(strategy).cost;
        let measured = simulator.simulate(&model, &config, strategy);
        let acc =
            projection_accuracy(projected.per_iteration().total(), measured.per_iteration.total());
        println!(
            "{:<22} {:>6} {:>14.4} {:>14.4} {:>9.1}%",
            strategy.to_string(),
            p,
            projected.per_iteration().total(),
            measured.per_iteration.total(),
            acc * 100.0
        );
    }
}
