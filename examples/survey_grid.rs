//! Batched multi-query oracle: sweep every bundled model across a grid of
//! global batch sizes and two clusters in ONE amortized `GridSweep` — the
//! engines, per-cluster topology caches and candidate enumerations are
//! shared across all cells instead of being rebuilt per query, which is
//! what makes paper-scale surveys (tables of best strategies per model ×
//! batch × system) run at near-single-query cost.
//!
//! Run with: `cargo run --release --example survey_grid`

use paradl::prelude::*;

fn main() {
    // One search configuration for the whole grid: keep the 3 best
    // candidates per cell, exhaustive PE sweep up to 1024 PEs.
    let constraints = Constraints {
        max_pes: 1024,
        top_k: Some(3),
        sweep: PeSweep::Exhaustive,
        ..Constraints::default()
    };

    // Model axis: every bundled model, each with its dataset-scale config.
    // Batch axis and cluster axis complete the cross product.
    let mut grid = QueryGrid::new(constraints)
        .with_batches([256usize, 512, 1024])
        .with_cluster(ClusterSpec::paper_system())
        .with_cluster(ClusterSpec::workstation(8));
    for model in paradl::models::paper_models() {
        let base = if model.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(256)
        } else {
            TrainingConfig::imagenet(256)
        };
        grid = grid.with_model(model, base);
    }
    grid = grid.with_model(paradl::models::alexnet(), TrainingConfig::imagenet(256));

    println!(
        "{} models x {} batches x {} clusters = {} queries\n",
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        grid.num_queries()
    );

    let report = GridSweep::new().run(&grid);

    println!(
        "{:<14} {:>6} {:<12} {:<28} {:>6} {:>12}",
        "model", "B", "cluster", "best strategy", "PEs", "epoch (s)"
    );
    for cell in &report.cells {
        let model = &grid.models()[cell.query.model].model.name;
        let cluster = if cell.query.cluster == 0 { "paper" } else { "workstation" };
        match cell.report.best() {
            Some(best) => println!(
                "{:<14} {:>6} {:<12} {:<28} {:>6} {:>12.2}",
                model,
                cell.query.batch,
                cluster,
                best.strategy.to_string(),
                best.strategy.total_pes(),
                best.epoch_time()
            ),
            None => println!(
                "{:<14} {:>6} {:<12} {:<28}",
                model, cell.query.batch, cluster, "nothing feasible"
            ),
        }
    }

    // Each cell is exactly what a standalone `oracle.search(&constraints)`
    // at that (model, batch, cluster) would return — the sweep only
    // amortizes the work, never changes the answer.
    let total: usize = report.cells.iter().map(|c| c.report.enumerated).sum();
    println!("\n{} candidate strategies evaluated across the grid", total);
}
