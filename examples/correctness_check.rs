//! Correctness check (paper §4.5.2): run the threaded implementations of the
//! parallel strategies on a small CNN with random data and verify, value by
//! value, that their activations and gradients match the sequential engine.
//!
//! Run with: `cargo run --release --example correctness_check`

use paradl::parallel::{
    channel_parallel_conv_forward, data_parallel_gradients, filter_parallel_forward,
    pipeline_parallel_forward, spatial_parallel_conv_forward,
};
use paradl::prelude::*;
use paradl::tensor::{conv2d_forward, softmax_cross_entropy, Conv2dParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn status(ok: bool) -> &'static str {
    if ok {
        "OK"
    } else {
        "MISMATCH"
    }
}

fn main() {
    const TOL: f32 = 1e-4;
    let config = SmallCnnConfig {
        in_channels: 4,
        input_side: 16,
        conv1_filters: 8,
        conv2_filters: 16,
        classes: 8,
    };
    let net = SmallCnn::new(config, 2024);
    let mut rng = StdRng::seed_from_u64(7);
    let batch = 8usize;
    let x = Tensor::random(&[batch, 4, 16, 16], 1.0, &mut rng);
    let labels: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..8)).collect();

    // Sequential reference.
    let trace = net.forward(&x);
    let (_, d_logits) = softmax_cross_entropy(&trace.logits, &labels);
    let reference_grads = net.backward(&trace, &d_logits);
    println!("Sequential reference: {} parameters\n", net.param_count());

    // Data parallelism: gradients after the GE Allreduce must match.
    let dp = data_parallel_gradients(&net, &x, &labels, 4);
    let dp_ok = dp.iter().all(|g| {
        g.conv1_w.approx_eq(&reference_grads.conv1_w, TOL)
            && g.fc_w.approx_eq(&reference_grads.fc_w, TOL)
    });
    println!("data parallelism (4 workers):     gradients  {}", status(dp_ok));

    // Filter parallelism: logits after per-layer Allgathers must match.
    let fp = filter_parallel_forward(&net, &x, 4);
    let fp_ok = fp.iter().all(|l| l.approx_eq(&trace.logits, TOL));
    println!("filter parallelism (4 workers):   activations {}", status(fp_ok));

    // Channel parallelism on one convolution: Allreduce of partial sums.
    let w = net.conv2_w.clone();
    let b = net.conv2_b.clone();
    let pooled = trace.pool_out.clone();
    let reference_conv = conv2d_forward(&pooled, &w, &b, Conv2dParams { stride: 1, padding: 1 });
    let cp =
        channel_parallel_conv_forward(&pooled, &w, &b, Conv2dParams { stride: 1, padding: 1 }, 4);
    let cp_ok = cp.iter().all(|o| o.approx_eq(&reference_conv, TOL));
    println!("channel parallelism (4 workers):  activations {}", status(cp_ok));

    // Spatial parallelism on one convolution: halo exchange + slab assembly.
    let ref_conv1 =
        conv2d_forward(&x, &net.conv1_w, &net.conv1_b, Conv2dParams { stride: 1, padding: 1 });
    let slabs = spatial_parallel_conv_forward(&x, &net.conv1_w, &net.conv1_b, 4);
    let sp_ok = Tensor::concat_axis(&slabs, 3).approx_eq(&ref_conv1, TOL);
    println!("spatial parallelism (4 workers):  activations {}", status(sp_ok));

    // Pipeline parallelism: logits streamed through two stages must match.
    let pipe = pipeline_parallel_forward(&net, &x, 4);
    let pipe_ok = pipe[1].approx_eq(&trace.logits, TOL);
    println!("pipeline parallelism (2 stages):  activations {}", status(pipe_ok));

    let all_ok = dp_ok && fp_ok && cp_ok && sp_ok && pipe_ok;
    println!(
        "\n{}",
        if all_ok {
            "All parallel decompositions are value-identical to the sequential run."
        } else {
            "Some decomposition diverged from the sequential run!"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
