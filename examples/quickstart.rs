//! Quickstart: project the cost of training ResNet-50 under every parallel
//! strategy at 64 GPUs and print the oracle's per-phase breakdown, memory
//! estimate and suggested strategy.
//!
//! Run with: `cargo run --release --example quickstart`

use paradl::prelude::*;

fn main() {
    // 1. Describe the problem: model, device, cluster and training setup.
    let model = paradl::models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    // Weak scaling: 32 samples per GPU at 64 GPUs => global batch 2048.
    let config = TrainingConfig::imagenet(32 * 64);
    let oracle = Oracle::new(&model, &device, &cluster, config);

    println!(
        "Model: {} ({:.1} M parameters, {} layers)",
        model.name,
        model.total_params() as f64 / 1e6,
        model.num_layers()
    );
    println!("Cluster: {} GPUs available, 4 per node\n", cluster.total_gpus());

    // 2. Survey every strategy at 64 GPUs.
    let constraints = Constraints::default();
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "strategy", "compute (s)", "comm (s)", "epoch (s)", "mem (GB)", "feasible"
    );
    for projection in oracle.survey(64, &constraints) {
        let b = projection.cost.per_epoch;
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>10.2} {:>9}",
            projection.cost.strategy.to_string(),
            b.compute(),
            b.communication(),
            b.total(),
            projection.cost.memory_per_pe_bytes / 1e9,
            projection.feasible()
        );
    }

    // 3. Ask the oracle for the best feasible strategy within 1024 GPUs.
    match oracle.suggest(&constraints) {
        Some(best) => println!(
            "\nSuggested strategy: {} — projected epoch time {:.2} s, {:.2} GB per GPU",
            best.cost.strategy,
            best.cost.epoch_time(),
            best.cost.memory_per_pe_bytes / 1e9
        ),
        None => println!("\nNo feasible strategy within the given constraints"),
    }

    // 4. Diagnose the limitations of one projection (paper Table 6 style).
    let filter = oracle.project(Strategy::Filter { p: 64 });
    let diagnosis = diagnose_default(&filter.cost);
    println!("\nDiagnosis of filter parallelism at 64 GPUs:");
    if diagnosis.findings.is_empty() {
        println!("  no dominant bottleneck detected");
    }
    for (finding, fraction) in diagnosis.findings {
        println!("  - {finding}: {:.0}% of the epoch", fraction * 100.0);
    }
}
