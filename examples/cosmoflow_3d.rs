//! CosmoFlow: a 3-D scientific workload where data parallelism is not an
//! option (a single 512³ sample exceeds GPU memory). This example reproduces
//! the reasoning behind the paper's Figures 4 and 5: spatial parallelism
//! makes the model fit, and the Data+Spatial hybrid then scales it out.
//!
//! Run with: `cargo run --release --example cosmoflow_3d`

use paradl::prelude::*;

fn main() {
    let model = paradl::models::cosmoflow_with_input(512);
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(4);
    let oracle = Oracle::new(&model, &device, &cluster, config);

    println!(
        "{}: {:.1} M parameters, {:.1} GB of activations per sample\n",
        model.name,
        model.total_params() as f64 / 1e6,
        model.total_activations() as f64 * 4.0 / 1e9
    );

    // 1. Memory feasibility: data parallelism vs spatial parallelism.
    println!("Per-GPU memory requirement (16 GB V100):");
    let candidates = [
        ("data, 4 GPUs (1 sample/GPU)", Strategy::Data { p: 4 }),
        ("spatial, 16 GPUs", Strategy::Spatial { split: SpatialSplit::balanced_3d(16) }),
        (
            "data+spatial, 4×16 GPUs",
            Strategy::DataSpatial { p1: 4, split: SpatialSplit::balanced_3d(16) },
        ),
    ];
    for (label, strategy) in candidates {
        let mem = memory_per_pe(&model, &config, strategy);
        let fits = if mem <= V100_MEMORY_BYTES { "fits" } else { "OUT OF MEMORY" };
        println!("  {:<28} {:>8.1} GB   {fits}", label, mem / 1e9);
    }

    // 2. Scaling: pure spatial vs the Data+Spatial hybrid (Figure 5).
    println!("\nScaling projection (per-epoch time, weak scaling over data groups):");
    println!("{:>6} {:>16} {:>18} {:>10}", "GPUs", "spatial (s)", "data+spatial (s)", "speedup");
    let spatial16 = oracle.project(Strategy::Spatial { split: SpatialSplit::balanced_3d(16) });
    for p1 in [1usize, 4, 16, 64] {
        let p = 16 * p1;
        let ds = oracle.project(Strategy::DataSpatial { p1, split: SpatialSplit::balanced_3d(16) });
        let speedup = spatial16.cost.epoch_time() / ds.cost.epoch_time();
        println!(
            "{:>6} {:>16.1} {:>18.1} {:>9.1}x",
            p,
            spatial16.cost.epoch_time(),
            ds.cost.epoch_time(),
            speedup
        );
    }
    println!("\nThe hybrid keeps the per-GPU footprint of spatial parallelism while the");
    println!("data-parallel dimension keeps absorbing new GPUs — the paper's Figure 5.");
}
