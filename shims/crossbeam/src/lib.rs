//! Offline stand-in for the subset of [`crossbeam`](https://docs.rs/crossbeam)
//! used by this workspace: unbounded MPSC channels with cloneable senders.
//! Implemented on `std::sync::mpsc`, which provides exactly those semantics.

#![forbid(unsafe_code)]

/// Multi-producer channels (shim for `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel. Cloneable like
    /// crossbeam's MPMC receiver; clones share the underlying queue.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing if all senders were dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver poisoned").recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("receiver poisoned").try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn cloneable_senders_cross_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
