//! Offline stand-in for the subset of
//! [`criterion`](https://docs.rs/criterion) used by this workspace's bench
//! targets (`harness = false`). The container building this repository cannot
//! reach crates.io, so this shim provides a small wall-clock harness with the
//! same source-level API: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], the [`criterion_group!`]/[`criterion_main!`]
//! macros, and the `--test` smoke mode that `cargo bench -- --test` uses in
//! CI to keep benches compiling and runnable.
//!
//! Statistics are deliberately simple: each sample times a fixed batch of
//! iterations sized so one sample takes ≥ ~5 ms, and the report prints the
//! median, minimum and maximum per-iteration time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs the setup before
/// every routine call regardless of the variant, so these are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: rayon-free setup per iteration is fine.
    SmallInput,
    /// Large input: setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, a name filter). Called by the
    /// `criterion_group!` expansion; benches never call this directly.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs (or in `--test` mode, smoke-tests) one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
        } else {
            bencher.report(id);
        }
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `routine` by itself.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Benchmarks `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Calibrate: how many iterations make one sample take ≥ ~5 ms?
        let mut iters_per_sample = 1usize;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let once = start.elapsed();
            if once * iters_per_sample as u32 >= Duration::from_millis(5)
                || iters_per_sample >= 1 << 20
            {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<48} median {:>12} (min {:>12}, max {:>12}, n={})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark target functions, mirroring criterion's
/// macro. Both the positional and the `name =`/`config =`/`targets =` forms
/// are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut calls = 0usize;
        let mut bencher = Bencher { test_mode: true, sample_size: 10, samples: Vec::new() };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(bencher.samples.is_empty());
    }

    #[test]
    fn timed_mode_collects_requested_samples() {
        let mut criterion =
            Criterion { sample_size: 3, test_mode: false, filter: None }.sample_size(3);
        let mut ran = false;
        criterion.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(2u64.pow(10)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut criterion =
            Criterion { sample_size: 2, test_mode: true, filter: Some("match_me".into()) };
        let mut ran = false;
        criterion.bench_function("other/benchmark", |_| ran = true);
        assert!(!ran);
        criterion.bench_function("group/match_me", |_| ran = true);
        assert!(ran);
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(15)), "15.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00 s");
    }
}
