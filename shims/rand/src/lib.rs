//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors a deterministic, dependency-free implementation. The
//! generator is SplitMix64 — statistically fine for synthetic data, noise
//! injection and property tests, but **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministically seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic SplitMix64 generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(10.0f64..20.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 11.0 && hi > 19.0, "lo={lo} hi={hi}");
    }
}
