//! Offline stand-in for the subset of
//! [`proptest`](https://docs.rs/proptest) used by this workspace: the
//! [`proptest!`] test macro, [`prop_assert!`], [`prop_oneof!`], [`Just`],
//! ranges and tuples as strategies, and [`Strategy::prop_map`].
//!
//! The container building this repository cannot reach crates.io, so this
//! shim provides random-sampling property tests without shrinking: each
//! `#[test]` samples its strategies `ProptestConfig::cases` times from a
//! deterministic per-test RNG and fails on the first violated assertion.

#![forbid(unsafe_code)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by [`prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (the result of [`prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given non-empty set of alternatives.
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_usize(0..self.variants.len());
            self.variants[idx].sample(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty => $as_u64:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize => usize, u32 => u32, u64 => u64);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    lo + (hi - lo) * rng.next_f64() as $t
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));
}

/// Test-execution plumbing: configuration, RNG, error type.
pub mod test_runner {
    use std::fmt;

    /// Controls how many cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property within one test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold; carries the assertion message.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "property failed: {msg}"),
            }
        }
    }

    /// Deterministic SplitMix64 RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed (typically derived from the test name).
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds an RNG deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(seed)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `range`.
        pub fn gen_usize(&mut self, range: std::ops::Range<usize>) -> usize {
            assert!(range.start < range.end);
            range.start + (self.next_u64() as usize) % (range.end - range.start)
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_oneof, proptest};
}

/// Asserts a property inside a [`proptest!`] body, returning a
/// `TestCaseError` (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($variant)),+])
    };
}

/// Declares property-based `#[test]` functions. Supports the optional
/// `#![proptest_config(...)]` header and `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_just_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            assert_eq!(Just(42u8).sample(&mut rng), 42);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1usize..4, 10usize..20).prop_map(|(a, b)| a * 100 + b);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            let (a, b) = (v / 100, v % 100);
            assert!((1..4).contains(&a) && (10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_draws_every_variant() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 0usize..100, y in 1usize..10) {
            prop_assert!(x < 100);
            prop_assert!(y >= 1, "y={y} must be positive");
            if x == usize::MAX { return Ok(()); }
        }
    }
}
