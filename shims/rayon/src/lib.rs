//! Offline stand-in for the subset of [`rayon`](https://docs.rs/rayon) used by
//! this workspace. The container building this repository cannot reach
//! crates.io, so this shim reimplements data-parallel iteration on
//! `std::thread::scope`: items are split into one contiguous chunk per
//! available core, each chunk is mapped on its own OS thread, and results are
//! reassembled in order. Unlike real rayon there is no work stealing — chunks
//! are static — which is adequate for the uniform per-item workloads this
//! workspace parallelizes (candidate-strategy evaluation).
//!
//! Supported surface: `par_iter()` / `into_par_iter()` on slices, `Vec`, and
//! `Range<usize>`, with `map`, `filter`, `filter_map`, `flat_map`, `collect`
//! into `Vec`, `min_by`/`max_by`, `sum`, and `count`.

#![forbid(unsafe_code)]

use std::thread;

/// Returns the number of worker threads the shim will use (one per core).
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items` in parallel, preserving order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = len.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A parallel iterator over owned items.
///
/// The pipeline is materialized: every adapter runs one parallel pass. That
/// differs from rayon's fused lazy pipelines but keeps identical results.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: par_map_vec(self.items, f) }
    }

    /// Keeps the items for which `pred` returns `true`.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, pred: F) -> ParIter<T> {
        ParIter {
            items: par_map_vec(self.items, |t| if pred(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Applies `f` in parallel and keeps the `Some` results.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: par_map_vec(self.items, f).into_iter().flatten().collect() }
    }

    /// Maps each item to an iterator and concatenates the results in order.
    pub fn flat_map<R, I, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
        I::IntoIter: Send,
    {
        ParIter {
            items: par_map_vec(self.items, |t| f(t).into_iter().collect::<Vec<R>>())
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Collects the items into a container (currently `Vec<T>`).
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Returns the minimum item under `cmp`, or `None` when empty.
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(|a, b| cmp(a, b))
    }

    /// Returns the maximum item under `cmp`, or `None` when empty.
    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(|a, b| cmp(a, b))
    }

    /// Number of items remaining in the pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Conversion from a [`ParIter`] pipeline into a collection.
pub trait FromParIter<T> {
    /// Builds the collection from the pipeline's items.
    fn from_par_iter(iter: ParIter<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par_iter(iter: ParIter<T>) -> Self {
        iter.items
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Types whose references are parallel-iterable (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type produced.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references to `self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The traits needed to call `par_iter()`/`into_par_iter()`.
pub mod prelude {
    pub use crate::{FromParIter, IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let doubled: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_matches_serial() {
        let v: Vec<u64> = (0..257).collect();
        let par: Vec<u64> = v.par_iter().filter_map(|&x| (x % 3 == 0).then_some(x * x)).collect();
        let ser: Vec<u64> = v.iter().filter_map(|&x| (x % 3 == 0).then_some(x * x)).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn min_by_and_empty_cases() {
        let v: Vec<i32> = vec![5, -3, 7, 0];
        assert_eq!(v.clone().into_par_iter().min_by(|a, b| a.cmp(b)), Some(-3));
        assert_eq!(v.into_par_iter().max_by(|a, b| a.cmp(b)), Some(7));
        let empty: Vec<i32> = Vec::new();
        assert_eq!(empty.into_par_iter().min_by(|a, b| a.cmp(b)), None);
        let none: Vec<i32> = Vec::new();
        assert_eq!(none.into_par_iter().map(|x| x).collect::<Vec<_>>(), Vec::<i32>::new());
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let out: Vec<usize> = (0..5).into_par_iter().flat_map(|i| vec![i; i]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3, 4, 4, 4, 4]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        assert!(distinct <= super::current_num_threads().max(1));
        assert!(distinct >= 1);
    }
}
