//! Property tests for the simulator, pinning the two relations that make it
//! a sound "measured" side for the oracle comparison:
//!
//! * **lower-bound admissibility** — for every non-pipeline candidate the
//!   simulated epoch time dominates the oracle's compute-only
//!   `CostEngine::lower_bound` whenever the overhead model is *directional*
//!   (no symmetric compute noise): the simulator's compute path evaluates
//!   the same per-layer times (splits keep their kernel overhead, so a
//!   split layer is never cheaper than `full/p`), every overhead multiplier
//!   is ≥ 1 and every communication term is ≥ 0. Pipeline is excluded *by
//!   theorem, not by weakness*: the paper's pipeline formula prices every
//!   one of the `p + S − 1` critical-path slots at the slowest stage, which
//!   upper-bounds the simulator's dependency-driven schedule for unbalanced
//!   stages — the third property pins exactly that.
//! * **overhead monotonicity** — raising any directional overhead knob
//!   (split inefficiency, glue time, stall/congestion probability or
//!   factor) while holding the symmetric noise fixed never makes a
//!   simulated run faster. This relies on the draw-aligned sampler
//!   discipline (`OverheadSampler` consumes a fixed number of draws per
//!   call), which keeps the two runs' RNG streams position-aligned.

use paradl_core::prelude::*;
use paradl_sim::{OverheadModel, Simulator};
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// A small random CNN, mirroring the generator in
/// `paradl-core/tests/proptest_grid.rs`.
fn arb_model() -> impl PropStrategy<Value = Model> {
    let spatial = prop_oneof![Just(16usize), Just(32)];
    let depth = 1usize..4;
    (spatial, depth, 4usize..32, 2usize..8).prop_map(|(s, depth, base_ch, classes)| {
        let mut layers = Vec::new();
        let mut ch = 3usize;
        let mut hw = s;
        for i in 0..depth {
            let out = base_ch * (i + 1);
            layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
            if hw >= 8 {
                layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                hw /= 2;
            }
            ch = out;
        }
        layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
        layers.push(Layer::fully_connected("fc", ch, classes));
        Model::new("random", 3, vec![s, s], layers)
    })
}

/// A directional overhead model: every knob slows the run down or leaves it
/// unchanged, and the symmetric compute noise is off.
fn arb_directional_overheads() -> impl PropStrategy<Value = OverheadModel> {
    (0.0f64..0.05, 0.0f64..300e-6, 0.0f64..1.0, 1.0f64..1.5, 0.0f64..1.0, 1.5f64..4.0).prop_map(
        |(ineff, glue, stall_p, stall_f, cong_p, cong_max)| OverheadModel {
            conv_split_inefficiency: ineff,
            split_concat_per_layer: glue,
            memory_stall_probability: stall_p,
            memory_stall_factor: stall_f,
            congestion_probability: cong_p,
            congestion_max_factor: cong_max,
            compute_noise: 0.0,
        },
    )
}

/// Non-negative increments for every directional knob (probabilities are
/// clamped back into `[0, 1]` by the caller).
fn arb_overhead_increments() -> impl PropStrategy<Value = (f64, f64, f64, f64, f64, f64)> {
    (0.0f64..0.05, 0.0f64..200e-6, 0.0f64..0.5, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..2.0)
}

/// A training configuration whose dataset is an exact multiple of the
/// batch, so `D = I · B` holds without truncation (the oracle's epoch
/// formulas use `D` directly while the simulator extrapolates `I` sampled
/// iterations — a non-divisible dataset would open a gap unrelated to the
/// properties under test).
fn divisible_config(batch: usize, iters: usize) -> TrainingConfig {
    TrainingConfig::small(batch * iters, batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_time_dominates_oracle_lower_bound(
        model in arb_model(),
        overheads in arb_directional_overheads(),
        log_batch in 4usize..7,
        iters in 2usize..20,
        pick in 0usize..10_000,
        seed in 0u64..1_000_000,
    ) {
        let batch = 1usize << log_batch;
        let config = divisible_config(batch, iters);
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let constraints = Constraints { max_pes: 64, ..Constraints::default() };
        let candidates: Vec<Strategy> = StrategySpace::new(&model, batch, &constraints)
            .filter(|s| s.kind() != StrategyKind::Pipeline)
            .collect();
        prop_assert!(!candidates.is_empty());
        let strategy = candidates[pick % candidates.len()];

        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        let lb = engine.lower_bound(strategy);
        let sim = Simulator::new(&device, &cluster)
            .with_overheads(overheads)
            .with_samples(2)
            .with_seed(seed);
        let measured = sim.simulate(&model, &config, strategy).per_epoch.total();
        prop_assert!(
            measured >= lb * (1.0 - 1e-12),
            "{strategy}: measured {measured} < lower bound {lb}"
        );
    }

    #[test]
    fn more_overhead_never_speeds_a_run_up(
        model in arb_model(),
        base in arb_directional_overheads(),
        inc in arb_overhead_increments(),
        noise in 0.0f64..0.05,
        log_batch in 4usize..7,
        pick in 0usize..10_000,
        seed in 0u64..1_000_000,
    ) {
        let batch = 1usize << log_batch;
        let config = divisible_config(batch, 8);
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let constraints = Constraints { max_pes: 64, ..Constraints::default() };
        let candidates: Vec<Strategy> =
            StrategySpace::new(&model, batch, &constraints).into_vec();
        let strategy = candidates[pick % candidates.len()];

        // `slower` dominates `faster` in every directional knob; the
        // symmetric noise is shared so the aligned draws produce the same
        // jitter on both sides.
        let faster = OverheadModel { compute_noise: noise, ..base };
        let slower = OverheadModel {
            conv_split_inefficiency: base.conv_split_inefficiency + inc.0,
            split_concat_per_layer: base.split_concat_per_layer + inc.1,
            memory_stall_probability: (base.memory_stall_probability + inc.2).min(1.0),
            memory_stall_factor: base.memory_stall_factor + inc.3,
            congestion_probability: (base.congestion_probability + inc.4).min(1.0),
            congestion_max_factor: base.congestion_max_factor + inc.5,
            compute_noise: noise,
        };
        let run = |overheads: OverheadModel| {
            Simulator::new(&device, &cluster)
                .with_overheads(overheads)
                .with_samples(2)
                .with_seed(seed)
                .simulate(&model, &config, strategy)
                .per_epoch
                .total()
        };
        let t_fast = run(faster);
        let t_slow = run(slower);
        prop_assert!(
            t_slow >= t_fast * (1.0 - 1e-12),
            "{strategy}: more overhead sped the run up ({t_slow} < {t_fast})"
        );
    }

    #[test]
    fn oracle_pipeline_compute_upper_bounds_the_dependency_schedule(
        model in arb_model(),
        log_batch in 4usize..7,
        p in 2usize..6,
        log_segments in 0usize..5,
    ) {
        let batch = 1usize << log_batch;
        let segments = (1usize << log_segments).min(batch);
        let config = divisible_config(batch, 8);
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let strategy = Strategy::Pipeline { p: p.min(model.num_layers()), segments };

        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        let projected_fb = engine.estimate(strategy).per_iteration().forward_backward;
        let sim = Simulator::new(&device, &cluster)
            .with_overheads(OverheadModel::ideal())
            .with_samples(1);
        let measured_fb =
            sim.simulate(&model, &config, strategy).per_iteration.forward_backward;
        // The oracle prices all p+S−1 critical-path slots at the slowest
        // stage; the simulator's dependency schedule pays each stage its own
        // time, so its compute can only be faster (never slower).
        prop_assert!(
            measured_fb <= projected_fb * (1.0 + 1e-12),
            "pipeline {strategy}: simulated fb {measured_fb} > projected fb {projected_fb}"
        );
    }
}
