//! Determinism of the conformance subsystem: a fidelity sweep must be
//! byte-identical for a fixed seed no matter how its replays are scheduled.
//!
//! The parallel path fans the (cell, candidate) replay jobs out over rayon,
//! so the test compares it against `Conformance::validate_sweep_serial` —
//! the same job plan executed on one thread (equivalently: any thread
//! count, since each job's `OverheadSampler` is seeded from the job's grid
//! coordinates and shares no state). Every float is compared exactly
//! (`PartialEq` on the report), not within a tolerance: a single
//! order-dependent RNG draw or accumulation would flip low bits and fail.

use paradl_core::prelude::*;
use paradl_sim::{Conformance, OverheadModel, Simulator};

fn model(seed: usize) -> Model {
    Model::new(
        format!("m{seed}"),
        3,
        vec![32, 32],
        vec![
            Layer::conv2d("c1", 3, 32 + 16 * seed, (32, 32), 3, 1, 1),
            Layer::pool2d("p1", 32 + 16 * seed, (32, 32), 2, 2),
            Layer::conv2d("c2", 32 + 16 * seed, 64, (16, 16), 3, 1, 1),
            Layer::global_pool("g", 64, &[16, 16]),
            Layer::fully_connected("fc", 64, 10),
        ],
    )
}

fn grid() -> QueryGrid {
    let constraints = Constraints { max_pes: 64, top_k: Some(5), ..Constraints::default() };
    QueryGrid::new(constraints)
        .with_model(model(0), TrainingConfig::small(8192, 64))
        .with_model(model(1), TrainingConfig::small(4096, 64))
        .with_batches([32usize, 64])
        .with_cluster(ClusterSpec::paper_system())
        .with_cluster(ClusterSpec::workstation(8))
}

/// The full-noise overhead model exercises every random draw of the
/// sampler (stalls, congestion, jitter), so any order-dependence in how
/// draws are consumed across replay jobs would surface here.
fn harness() -> Conformance {
    Conformance::new().with_overheads(OverheadModel::chainermnx()).with_samples(3).with_seed(7)
}

#[test]
fn parallel_conformance_is_byte_identical_to_serial() {
    let grid = grid();
    let sweep = GridSweep::new().run(&grid);
    let harness = harness();
    let parallel = harness.validate_sweep(&grid, &sweep).expect("winners exist");
    let serial = harness.validate_sweep_serial(&grid, &sweep).expect("winners exist");
    assert_eq!(parallel, serial);
}

#[test]
fn repeated_conformance_runs_are_byte_identical() {
    let grid = grid();
    let harness = harness();
    let a = harness.run(&grid).expect("winners exist");
    let b = harness.run(&grid).expect("winners exist");
    assert_eq!(a, b);
}

#[test]
fn simulator_replays_are_byte_identical_per_seed() {
    let m = model(0);
    let config = TrainingConfig::small(8192, 64);
    let cluster = ClusterSpec::paper_system();
    let device = DeviceProfile::v100();
    let sim = |seed: u64| {
        Simulator::new(&device, &cluster)
            .with_overheads(OverheadModel::chainermnx())
            .with_samples(5)
            .with_seed(seed)
    };
    let a = sim(99).simulate(&m, &config, Strategy::DataFilter { p1: 8, p2: 4 });
    let b = sim(99).simulate(&m, &config, Strategy::DataFilter { p1: 8, p2: 4 });
    assert_eq!(a, b);
    let c = sim(100).simulate(&m, &config, Strategy::DataFilter { p1: 8, p2: 4 });
    assert!(a.per_epoch.total() != c.per_epoch.total(), "different seeds should differ");
}
