//! # paradl-sim
//!
//! The "measured" side of the reproduction: a distributed-training simulator
//! that executes every parallel strategy mechanism-by-mechanism — per-layer
//! compute on each PE, collective schedules routed over the fat-tree with
//! link-level contention, halo exchanges, a dependency-driven pipeline
//! schedule — and adds the framework/system [`overheads`] that separate real
//! runs from the oracle's ideal projection (imperfect conv splitting,
//! split/concat glue, memory stalls, network congestion).
//!
//! The simulator substitutes for the 1024-GPU V100 cluster and ChainerMNX
//! measurements of the paper; the oracle-vs-simulator comparison reproduces
//! the oracle-vs-measured accuracy evaluation of §5.2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod overheads;

pub use engine::{MeasuredResult, Simulator};
pub use overheads::{OverheadModel, OverheadSampler};
