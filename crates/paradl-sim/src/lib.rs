//! # paradl-sim
//!
//! The "measured" side of the reproduction: a distributed-training simulator
//! that executes every parallel strategy mechanism-by-mechanism — per-layer
//! compute on each PE, collective schedules routed over the fat-tree with
//! link-level contention, halo exchanges, a dependency-driven pipeline
//! schedule — and adds the framework/system [`overheads`] that separate real
//! runs from the oracle's ideal projection (imperfect conv splitting,
//! split/concat glue, memory stalls, network congestion).
//!
//! The simulator substitutes for the 1024-GPU V100 cluster and ChainerMNX
//! measurements of the paper; the [`conformance`] module closes the loop —
//! it sweeps a query grid through the oracle, replays every cell's winners
//! through the simulator, and reports the §5.2-style fidelity statistics
//! (per-family error, APE distribution, rank correlation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformance;
pub mod engine;
pub mod overheads;

pub use conformance::Conformance;
pub use engine::{MeasuredResult, Simulator};
pub use overheads::{OverheadModel, OverheadSampler};
