//! Framework / system overhead models that separate the *measured* run from
//! the oracle's ideal projection.
//!
//! The paper attributes the gap between ParaDL and measured runs to a small
//! set of mechanisms (§5.2–5.3): imperfect scaling of split convolutions and
//! split/concat glue kernels in filter/channel parallelism (Figure 8), memory
//! -manager stalls when asynchronous kernels wait for allocations, and
//! network congestion from other jobs (Figure 6). The simulator applies these
//! on top of the analytical compute/communication costs to produce a
//! "measured-like" trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Implementation overheads of the framework executing the strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Efficiency loss of convolutions whose filters/channels are split over
    /// `p` PEs: the per-PE time is `(work/p) · (1 + split_inefficiency·(p−1))`
    /// instead of the ideal `work/p` (Figure 8, "conv does not scale well").
    pub conv_split_inefficiency: f64,
    /// Fixed split/concat glue time per layer per iteration, in seconds, for
    /// filter/channel parallelism (Figure 8, split/concat bars).
    pub split_concat_per_layer: f64,
    /// Probability that an iteration hits a memory-manager stall.
    pub memory_stall_probability: f64,
    /// Multiplicative slowdown of a stalled iteration's compute.
    pub memory_stall_factor: f64,
    /// Probability that a collective hits external network congestion.
    pub congestion_probability: f64,
    /// Maximum multiplicative slowdown of a congested collective (the paper
    /// observes up to ≈4×, Figure 6).
    pub congestion_max_factor: f64,
    /// Relative run-to-run noise applied to compute times (GPU clocks, OS
    /// jitter).
    pub compute_noise: f64,
}

impl OverheadModel {
    /// Overheads representative of the paper's ChainerMNX measurements.
    pub fn chainermnx() -> Self {
        OverheadModel {
            conv_split_inefficiency: 0.015,
            split_concat_per_layer: 120e-6,
            memory_stall_probability: 0.05,
            memory_stall_factor: 1.3,
            congestion_probability: 0.08,
            congestion_max_factor: 4.0,
            compute_noise: 0.03,
        }
    }

    /// An ideal framework with no overheads: the simulator then reproduces
    /// the oracle exactly (used to validate the simulator itself).
    pub fn ideal() -> Self {
        OverheadModel {
            conv_split_inefficiency: 0.0,
            split_concat_per_layer: 0.0,
            memory_stall_probability: 0.0,
            memory_stall_factor: 1.0,
            congestion_probability: 0.0,
            congestion_max_factor: 1.0,
            compute_noise: 0.0,
        }
    }

    /// Congestion-free variant of `chainermnx` (the paper reports the best
    /// communication times, excluding congested outliers, in Figure 3).
    pub fn chainermnx_quiet() -> Self {
        OverheadModel {
            congestion_probability: 0.0,
            memory_stall_probability: 0.0,
            ..Self::chainermnx()
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::chainermnx_quiet()
    }
}

/// Per-run random draws of the overhead model.
///
/// **Draw alignment.** Every sampler method consumes a *fixed* number of
/// uniform draws, independent of the model's parameters and of which
/// overheads actually trigger: [`OverheadSampler::compute_multiplier`]
/// always consumes two draws (noise, stall decision) and
/// [`OverheadSampler::congestion_multiplier`] always consumes two
/// (congestion decision, severity). Two samplers with the same seed
/// therefore stay position-aligned across *different* overhead models,
/// which makes two properties hold exactly (both tested in
/// `tests/proptest_sim.rs`):
///
/// * **determinism** — a run's draw stream never depends on which branches
///   trigger, so replaying a strategy yields byte-identical times no matter
///   what ran before on other threads or with other models;
/// * **monotonicity** — raising any directional overhead knob
///   (probabilities, stall/congestion factors, split inefficiency, glue
///   time) while holding the symmetric `compute_noise` fixed reuses the
///   same underlying draws and can only slow the run down, because each
///   decision compares the *same* uniform draw against a larger threshold
///   and each severity maps the *same* draw through a pointwise-larger
///   function.
///
/// Before this discipline, a triggered overhead consumed extra draws, so
/// two models with the same seed diverged after the first branch taken by
/// only one of them — "more overhead" could then randomly *speed up* later
/// iterations through a luckier noise stream.
#[derive(Debug)]
pub struct OverheadSampler {
    model: OverheadModel,
    rng: StdRng,
}

impl OverheadSampler {
    /// Creates a sampler with a deterministic seed.
    pub fn new(model: OverheadModel, seed: u64) -> Self {
        OverheadSampler { model, rng: StdRng::seed_from_u64(seed) }
    }

    /// The overhead model being sampled.
    pub fn model(&self) -> &OverheadModel {
        &self.model
    }

    /// One uniform draw in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0f64..1.0)
    }

    /// Multiplier applied to a compute time (noise + possible memory stall).
    /// Always consumes exactly two draws (see the type docs).
    pub fn compute_multiplier(&mut self) -> f64 {
        let noise_u = self.uniform();
        let stall_u = self.uniform();
        let noise = 1.0 + self.model.compute_noise * (2.0 * noise_u - 1.0);
        let stall = if stall_u < self.model.memory_stall_probability {
            self.model.memory_stall_factor
        } else {
            1.0
        };
        noise * stall
    }

    /// Multiplier applied to a collective's time (external congestion).
    /// Always consumes exactly two draws (see the type docs).
    pub fn congestion_multiplier(&mut self) -> f64 {
        let hit_u = self.uniform();
        let severity_u = self.uniform();
        if hit_u < self.model.congestion_probability {
            1.5 + (self.model.congestion_max_factor - 1.5).max(0.0) * severity_u
        } else {
            1.0
        }
    }

    /// Per-PE compute inefficiency factor when a conv layer's work is split
    /// over `p` PEs.
    pub fn split_scaling_factor(&self, p: usize) -> f64 {
        1.0 + self.model.conv_split_inefficiency * (p.saturating_sub(1)) as f64
    }

    /// Split/concat glue time for `layers` layers in one iteration.
    pub fn split_concat_time(&self, layers: usize) -> f64 {
        self.model.split_concat_per_layer * layers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_a_noop() {
        let mut s = OverheadSampler::new(OverheadModel::ideal(), 1);
        for _ in 0..100 {
            assert_eq!(s.compute_multiplier(), 1.0);
            assert_eq!(s.congestion_multiplier(), 1.0);
        }
        assert_eq!(s.split_scaling_factor(64), 1.0);
        assert_eq!(s.split_concat_time(50), 0.0);
    }

    #[test]
    fn congestion_occasionally_slows_collectives() {
        let mut s = OverheadSampler::new(OverheadModel::chainermnx(), 42);
        let draws: Vec<f64> = (0..1000).map(|_| s.congestion_multiplier()).collect();
        let congested = draws.iter().filter(|&&d| d > 1.0).count();
        assert!(congested > 20 && congested < 300, "congested = {congested}");
        assert!(draws.iter().cloned().fold(0.0, f64::max) <= 4.0);
    }

    #[test]
    fn split_scaling_grows_with_p() {
        let s = OverheadSampler::new(OverheadModel::chainermnx(), 0);
        assert!(s.split_scaling_factor(64) > s.split_scaling_factor(4));
        assert_eq!(s.split_scaling_factor(1), 1.0);
    }

    #[test]
    fn compute_noise_stays_within_bounds() {
        let mut s = OverheadSampler::new(OverheadModel::chainermnx_quiet(), 9);
        for _ in 0..200 {
            let m = s.compute_multiplier();
            assert!((0.97..=1.03).contains(&m), "m = {m}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = OverheadSampler::new(OverheadModel::chainermnx(), 5);
        let mut b = OverheadSampler::new(OverheadModel::chainermnx(), 5);
        let da: Vec<f64> = (0..50).map(|_| a.compute_multiplier()).collect();
        let db: Vec<f64> = (0..50).map(|_| b.compute_multiplier()).collect();
        assert_eq!(da, db);
    }
}
