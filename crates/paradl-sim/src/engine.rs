//! The distributed-training simulator: the "measured" side of the
//! reproduction.
//!
//! For each parallel strategy the simulator executes one training iteration
//! mechanism-by-mechanism — per-layer compute on each PE (with framework
//! overheads), collective communication as step-by-step schedules routed over
//! the fat-tree with link-level contention, halo exchanges, and the pipeline
//! dependency schedule — and aggregates the result into the same
//! [`PhaseBreakdown`] the oracle produces, so the two can be compared with
//! the paper's accuracy metric.

use crate::overheads::{OverheadModel, OverheadSampler};
use paradl_core::cluster::ClusterSpec;
use paradl_core::compute::ComputeModel;
use paradl_core::config::TrainingConfig;
use paradl_core::cost::PhaseBreakdown;
use paradl_core::model::Model;
use paradl_core::strategy::{SpatialSplit, Strategy};
use paradl_net::collectives::{
    halo_exchange, hierarchical_allreduce, ring_allgather, ring_allreduce, segmented_allreduce,
};
use paradl_net::contention::schedule_time;
use paradl_net::topology::FatTree;

/// Result of simulating a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredResult {
    /// The simulated strategy.
    pub strategy: Strategy,
    /// Average per-iteration time breakdown over the sampled iterations.
    pub per_iteration: PhaseBreakdown,
    /// Extrapolated per-epoch breakdown (`per_iteration × I`).
    pub per_epoch: PhaseBreakdown,
    /// Number of iterations actually simulated.
    pub sampled_iterations: usize,
}

/// The distributed-training simulator.
pub struct Simulator<'a, C: ComputeModel + ?Sized> {
    /// Per-layer compute-time source (same as the oracle's, by construction —
    /// the paper profiles one set of layer times and feeds both sides).
    pub device: &'a C,
    /// Cluster description used to build the fat-tree.
    pub cluster: &'a ClusterSpec,
    /// Framework overhead model.
    pub overheads: OverheadModel,
    /// Number of iterations to simulate and average (the paper averages 100).
    pub sample_iterations: usize,
    /// RNG seed for the overhead draws.
    pub seed: u64,
}

impl<'a, C: ComputeModel + ?Sized> Simulator<'a, C> {
    /// Creates a simulator with the default (congestion-free) overheads and
    /// 10 sampled iterations.
    pub fn new(device: &'a C, cluster: &'a ClusterSpec) -> Self {
        Simulator {
            device,
            cluster,
            overheads: OverheadModel::default(),
            sample_iterations: 10,
            seed: 0x5EED,
        }
    }

    /// Replaces the overhead model.
    pub fn with_overheads(mut self, overheads: OverheadModel) -> Self {
        self.overheads = overheads;
        self
    }

    /// Sets the number of sampled iterations.
    pub fn with_samples(mut self, iterations: usize) -> Self {
        self.sample_iterations = iterations.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn topology(&self, pes: usize) -> FatTree {
        if pes <= self.cluster.gpus_per_node {
            // All traffic stays on the node's intra-node links.
            FatTree {
                intra_node: self.cluster.intra_node,
                ..FatTree::single_node(self.cluster.gpus_per_node)
            }
        } else {
            // The simulated tree prices the same per-level links the
            // analytical oracle does — previously this was hardwired to the
            // paper system, so different cluster specs "measured" identical
            // times and the conformance cluster axis carried no signal.
            FatTree::from_cluster(self.cluster, pes)
        }
    }

    /// Simulates `strategy` training `model` under `config` and returns the
    /// measured-like time breakdown.
    pub fn simulate(
        &self,
        model: &Model,
        config: &TrainingConfig,
        strategy: Strategy,
    ) -> MeasuredResult {
        let mut sampler = OverheadSampler::new(self.overheads, self.seed);
        let iters = config.iterations_per_epoch();
        let mut acc = PhaseBreakdown::default();
        for _ in 0..self.sample_iterations {
            let one = self.simulate_iteration(model, config, strategy, &mut sampler);
            acc = acc.add(&one);
        }
        let per_iteration = acc.scaled(1.0 / self.sample_iterations as f64);
        MeasuredResult {
            strategy,
            per_iteration,
            per_epoch: per_iteration.scaled(iters as f64),
            sampled_iterations: self.sample_iterations,
        }
    }

    fn simulate_iteration(
        &self,
        model: &Model,
        config: &TrainingConfig,
        strategy: Strategy,
        sampler: &mut OverheadSampler,
    ) -> PhaseBreakdown {
        let b = config.batch_size as f64;
        let delta = config.bytes_per_item;
        let weight_bytes = model.total_weights() as f64 * delta;
        let mut out = PhaseBreakdown::default();

        match strategy {
            Strategy::Serial => {
                out.forward_backward = self.compute_full(model, b, sampler);
                out.weight_update = self.weight_update_full(model);
            }
            Strategy::Data { p } => {
                let topo = self.topology(p);
                out.forward_backward = self.compute_full(model, b / p as f64, sampler);
                out.weight_update = self.weight_update_full(model);
                let ranks: Vec<usize> = (0..p).collect();
                out.gradient_exchange = schedule_time(&topo, &ring_allreduce(&ranks, weight_bytes))
                    * sampler.congestion_multiplier();
            }
            Strategy::Spatial { split } => {
                let p = split.total();
                let topo = self.topology(p);
                out.forward_backward = self.compute_full(model, b / p as f64, sampler);
                out.weight_update = self.weight_update_full(model);
                let ranks: Vec<usize> = (0..p).collect();
                out.gradient_exchange = schedule_time(&topo, &ring_allreduce(&ranks, weight_bytes))
                    * sampler.congestion_multiplier();
                out.halo_exchange = self.halo_time(model, &topo, &ranks, &split, b, delta, sampler);
            }
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let topo = self.topology(p);
                out.forward_backward = self.compute_split(model, b, p, sampler);
                out.weight_update = self.weight_update_full(model) / p as f64;
                let ranks: Vec<usize> = (0..p).collect();
                out.fb_collective =
                    self.layerwise_collectives(model, &topo, &ranks, p, b, delta, sampler);
            }
            Strategy::Pipeline { p, segments } => {
                let (fb, p2p) = self.pipeline_iteration(model, config, p, segments, sampler);
                out.forward_backward = fb;
                out.pipeline_p2p = p2p;
                // Weight update of the slowest stage.
                let groups = model.balanced_pipeline_groups(p);
                out.weight_update = groups
                    .iter()
                    .map(|r| {
                        model.layers[r.clone()]
                            .iter()
                            .map(|l| self.device.weight_update_time(l))
                            .sum::<f64>()
                    })
                    .fold(0.0, f64::max);
            }
            Strategy::DataFilter { p1, p2 } => {
                let p = p1 * p2;
                let topo = self.topology(p);
                // Filter parallelism within node-sized groups on B/p1 samples.
                out.forward_backward = self.compute_split(model, b / p1 as f64, p2, sampler);
                out.weight_update = self.weight_update_full(model) / p2 as f64;
                // Intra-group layer-wise collectives (groups are consecutive
                // ranks, i.e. the GPUs of one node).
                let group0: Vec<usize> = (0..p2).collect();
                out.fb_collective = self.layerwise_collectives(
                    model,
                    &topo,
                    &group0,
                    p,
                    b / p1 as f64,
                    delta,
                    sampler,
                );
                // Segmented Allreduce: p2 concurrent rings, one per weight
                // shard, each spanning the p1 groups (strided ranks).
                let segments: Vec<Vec<usize>> =
                    (0..p2).map(|g| (0..p1).map(|n| n * p2 + g).collect()).collect();
                out.gradient_exchange =
                    schedule_time(&topo, &segmented_allreduce(&segments, weight_bytes / p2 as f64))
                        * sampler.congestion_multiplier();
            }
            Strategy::DataSpatial { p1, split } => {
                let p2 = split.total();
                let p = p1 * p2;
                let topo = self.topology(p);
                out.forward_backward = self.compute_full(model, b / p as f64, sampler);
                out.weight_update = self.weight_update_full(model);
                let group0: Vec<usize> = (0..p2).collect();
                out.halo_exchange =
                    self.halo_time(model, &topo, &group0, &split, b / p1 as f64, delta, sampler);
                // Hierarchical Allreduce: one group per node.
                let groups: Vec<Vec<usize>> =
                    (0..p1).map(|n| (0..p2).map(|g| n * p2 + g).collect()).collect();
                out.gradient_exchange =
                    schedule_time(&topo, &hierarchical_allreduce(&groups, weight_bytes))
                        * sampler.congestion_multiplier();
            }
        }
        out
    }

    /// Forward+backward compute for `samples` samples with the full model on
    /// one PE (data/spatial/serial paths).
    fn compute_full(&self, model: &Model, samples: f64, sampler: &mut OverheadSampler) -> f64 {
        let per_sample: f64 = model
            .layers
            .iter()
            .map(|l| self.device.forward_time(l) + self.device.backward_time(l))
            .sum();
        per_sample * samples * sampler.compute_multiplier()
    }

    /// Forward+backward compute when each conv-like layer's work is split
    /// over `p` PEs (filter/channel paths), including the imperfect-scaling
    /// factor and split/concat glue of the framework (Figure 8).
    fn compute_split(
        &self,
        model: &Model,
        samples: f64,
        p: usize,
        sampler: &mut OverheadSampler,
    ) -> f64 {
        let frac = 1.0 / p as f64;
        let scale = sampler.split_scaling_factor(p);
        let per_sample: f64 = model
            .layers
            .iter()
            .map(|l| {
                if l.kind.is_conv_like() {
                    (self.device.forward_time_split(l, frac)
                        + self.device.backward_time_split(l, frac))
                        * scale
                } else {
                    self.device.forward_time(l) + self.device.backward_time(l)
                }
            })
            .sum();
        per_sample * samples * sampler.compute_multiplier()
            + sampler.split_concat_time(model.num_layers())
    }

    fn weight_update_full(&self, model: &Model) -> f64 {
        model.layers.iter().map(|l| self.device.weight_update_time(l)).sum()
    }

    /// Layer-wise Allgather (forward) + Allreduce (backward) of filter/channel
    /// parallelism, per iteration, over the real topology.
    #[allow(clippy::too_many_arguments)]
    fn layerwise_collectives(
        &self,
        model: &Model,
        topo: &FatTree,
        ranks: &[usize],
        p_total: usize,
        batch: f64,
        delta: f64,
        sampler: &mut OverheadSampler,
    ) -> f64 {
        let mut t = 0.0;
        let g = model.layers.len();
        for (i, l) in model.layers.iter().enumerate() {
            if i + 1 == g {
                continue;
            }
            let act_bytes = batch * l.output_size() as f64 / p_total as f64 * delta;
            let full_bytes = act_bytes * ranks.len() as f64;
            t += schedule_time(topo, &ring_allgather(ranks, full_bytes));
            t += schedule_time(topo, &ring_allreduce(ranks, full_bytes));
        }
        t * sampler.congestion_multiplier()
    }

    /// Halo-exchange time per iteration for a spatial split over `ranks`.
    #[allow(clippy::too_many_arguments)]
    fn halo_time(
        &self,
        model: &Model,
        topo: &FatTree,
        ranks: &[usize],
        split: &SpatialSplit,
        batch: f64,
        delta: f64,
        sampler: &mut OverheadSampler,
    ) -> f64 {
        let mut t = 0.0;
        for l in &model.layers {
            let factors = split.factors(l.spatial_dims());
            let halo = l.halo_size(&factors) as f64;
            if halo == 0.0 {
                continue;
            }
            let halo_dy = halo * (l.output_size() as f64 / l.input_size().max(1) as f64);
            let bytes = batch * (halo + halo_dy) * delta;
            // Forward and backward halo exchanges.
            t += 2.0 * schedule_time(topo, &halo_exchange(ranks, bytes));
        }
        t * sampler.congestion_multiplier()
    }

    /// Simulates one pipelined iteration with a dependency-driven schedule:
    /// stage `i` can process micro-batch segment `s` only after stage `i−1`
    /// finished segment `s` (plus the activation transfer) and after it
    /// finished segment `s−1` itself. Returns `(compute-critical-path,
    /// p2p-transfer time on the critical path)`.
    fn pipeline_iteration(
        &self,
        model: &Model,
        config: &TrainingConfig,
        p: usize,
        segments: usize,
        sampler: &mut OverheadSampler,
    ) -> (f64, f64) {
        let groups = model.balanced_pipeline_groups(p);
        let p = groups.len();
        let s = segments.max(1);
        let seg_samples = config.batch_size as f64 / s as f64;
        let topo = self.topology(p.max(2));
        let delta = config.bytes_per_item;

        // Per-stage per-segment compute times (forward + backward), with noise.
        let stage_time: Vec<f64> = groups
            .iter()
            .map(|r| {
                let per_sample: f64 = model.layers[r.clone()]
                    .iter()
                    .map(|l| self.device.forward_time(l) + self.device.backward_time(l))
                    .sum();
                per_sample * seg_samples * sampler.compute_multiplier()
            })
            .collect();
        // Activation transfer time between consecutive stages.
        let transfer: Vec<f64> = groups
            .iter()
            .take(p.saturating_sub(1))
            .map(|r| {
                let act = model.layers[r.end - 1].output_size() as f64;
                topo.p2p_time(
                    0,
                    topo.gpus_per_node.min(topo.total_pes() - 1).max(1),
                    seg_samples * act * delta,
                )
            })
            .collect();

        // Dependency recurrence over the (stage, segment) grid.
        let mut finish = vec![vec![0.0f64; s]; p];
        let mut p2p_on_path = 0.0f64;
        for seg in 0..s {
            for stage in 0..p {
                let from_prev_stage =
                    if stage > 0 { finish[stage - 1][seg] + transfer[stage - 1] } else { 0.0 };
                let from_prev_seg = if seg > 0 { finish[stage][seg - 1] } else { 0.0 };
                let start = from_prev_stage.max(from_prev_seg);
                if stage > 0 && from_prev_stage >= from_prev_seg {
                    p2p_on_path += transfer[stage - 1];
                }
                finish[stage][seg] = start + stage_time[stage];
            }
        }
        let total = finish[p - 1][s - 1];
        (total - p2p_on_path.min(total), p2p_on_path.min(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::compute::DeviceProfile;
    use paradl_core::cost::estimate;
    use paradl_core::oracle::projection_accuracy;
    use paradl_models::SyntheticCnn;

    fn setup() -> (Model, DeviceProfile, ClusterSpec, TrainingConfig) {
        (
            SyntheticCnn::default().build(),
            DeviceProfile::v100(),
            ClusterSpec::paper_system(),
            TrainingConfig::small(8192, 64),
        )
    }

    #[test]
    fn serial_simulation_matches_oracle_with_ideal_overheads() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_overheads(OverheadModel::ideal()).with_samples(1);
        let measured = sim.simulate(&m, &cfg, Strategy::Serial);
        let projected = estimate(&m, &d, &c, &cfg, Strategy::Serial);
        let acc = projection_accuracy(projected.per_epoch.total(), measured.per_epoch.total());
        assert!(acc > 0.99, "accuracy = {acc}");
    }

    #[test]
    fn data_parallel_simulation_is_close_to_oracle() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_overheads(OverheadModel::ideal()).with_samples(1);
        // The oracle prices every ring hop at the bottleneck link, while the
        // simulated ring keeps 3 of 4 hops on NVLink, so accuracy dips as the
        // communication share grows — the same qualitative gap the paper
        // reports (accuracy between ~74% and ~98% across configurations).
        for p in [4usize, 16, 64] {
            let measured = sim.simulate(&m, &cfg, Strategy::Data { p });
            let projected = estimate(&m, &d, &c, &cfg, Strategy::Data { p });
            let acc = projection_accuracy(projected.per_epoch.total(), measured.per_epoch.total());
            assert!(acc > 0.7, "p={p} accuracy={acc}");
        }
    }

    #[test]
    fn overheads_make_measured_slower_than_ideal() {
        let (m, d, c, cfg) = setup();
        let ideal = Simulator::new(&d, &c)
            .with_overheads(OverheadModel::ideal())
            .with_samples(3)
            .simulate(&m, &cfg, Strategy::Filter { p: 8 });
        let real = Simulator::new(&d, &c)
            .with_overheads(OverheadModel::chainermnx_quiet())
            .with_samples(3)
            .simulate(&m, &cfg, Strategy::Filter { p: 8 });
        assert!(real.per_epoch.total() > ideal.per_epoch.total());
    }

    #[test]
    fn filter_parallelism_has_layerwise_comm_but_no_gradient_exchange() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_samples(2);
        let r = sim.simulate(&m, &cfg, Strategy::Filter { p: 8 });
        assert!(r.per_iteration.fb_collective > 0.0);
        assert_eq!(r.per_iteration.gradient_exchange, 0.0);
    }

    #[test]
    fn spatial_has_halo_exchange() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_samples(2);
        let r = sim.simulate(&m, &cfg, Strategy::Spatial { split: SpatialSplit::width_only(4) });
        assert!(r.per_iteration.halo_exchange > 0.0);
        assert!(r.per_iteration.gradient_exchange > 0.0);
    }

    #[test]
    fn pipeline_with_more_segments_is_faster() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_overheads(OverheadModel::ideal()).with_samples(1);
        let few = sim.simulate(&m, &cfg, Strategy::Pipeline { p: 4, segments: 1 });
        let many = sim.simulate(&m, &cfg, Strategy::Pipeline { p: 4, segments: 16 });
        assert!(many.per_epoch.total() < few.per_epoch.total());
    }

    #[test]
    fn hybrid_df_exhibits_segmented_allreduce_contention() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_overheads(OverheadModel::ideal()).with_samples(1);
        let df = sim.simulate(&m, &cfg, Strategy::DataFilter { p1: 16, p2: 4 });
        assert!(df.per_iteration.gradient_exchange > 0.0);
        assert!(df.per_iteration.fb_collective > 0.0);
    }

    #[test]
    fn per_epoch_is_per_iteration_times_iterations() {
        let (m, d, c, cfg) = setup();
        let sim = Simulator::new(&d, &c).with_samples(2);
        let r = sim.simulate(&m, &cfg, Strategy::Data { p: 8 });
        let expected = r.per_iteration.total() * cfg.iterations_per_epoch() as f64;
        assert!((r.per_epoch.total() - expected).abs() < 1e-9 * expected);
    }
}
