//! Oracle-vs-simulator conformance: batched fidelity sweeps reproducing the
//! shape of the paper's §5.2 accuracy evaluation.
//!
//! The paper validates the oracle by training the same configurations with
//! ChainerMNX on up to 1024 V100s and comparing measured step times with the
//! projections (§5.2, Figure 3). This module closes the same loop inside the
//! repository: a [`Conformance`] harness takes a
//! [`QueryGrid`](paradl_core::grid::QueryGrid), runs the amortized
//! [`GridSweep`] to pick each cell's winners, replays every winner through
//! the [`Simulator`] (the stand-in for the measured cluster), and aggregates
//! the comparison into a [`FidelityReport`] — per-strategy-family signed
//! error and APE distribution, plus per-cell rank correlation between the
//! oracle's ordering and the simulated ordering.
//!
//! **Determinism.** Replays run rayon-parallel across all (cell, candidate)
//! jobs, but every job seeds its own [`OverheadSampler`] (inside its own
//! [`Simulator`]) from a hash of the base seed and the job's grid
//! coordinates — no sampler state is shared across jobs or threads, so the
//! report is byte-identical for any thread count and to the serial
//! [`Conformance::validate_sweep_serial`] path (asserted in
//! `tests/determinism.rs`). An earlier design that advanced one shared
//! sampler across replays would have made every measurement depend on the
//! rayon scheduling order.
//!
//! [`OverheadSampler`]: crate::overheads::OverheadSampler

use crate::engine::Simulator;
use crate::overheads::OverheadModel;
use paradl_core::calibrate::{CalSample, Calibration};
use paradl_core::grid::{GridQuery, GridReport, GridSweep, QueryGrid};
use paradl_core::search::RankedCandidate;
use paradl_core::validate::{ErrorSample, FidelityReport};
use rayon::prelude::*;

/// One replay unit: a ranked candidate of one grid cell, with the seed its
/// simulator will use.
struct ReplayJob {
    cell: usize,
    query: GridQuery,
    candidate: RankedCandidate,
    seed: u64,
}

/// The oracle-vs-simulator conformance harness. Build with
/// [`Conformance::new`], customize with the `with_*` methods, run with
/// [`Conformance::run`].
#[derive(Debug, Clone, Copy)]
pub struct Conformance {
    /// Overhead model of the simulated framework (default:
    /// [`OverheadModel::chainermnx_quiet`], the paper's congestion-free
    /// measurement setting).
    pub overheads: OverheadModel,
    /// Iterations each replay simulates and averages.
    pub sample_iterations: usize,
    /// How many of each cell's ranked candidates are replayed (clamped to
    /// the cell's ranking length; with `Constraints::top_k = Some(k)` at
    /// most `k` are available).
    pub replay_top: usize,
    /// Base seed; each job derives its own sampler seed from this and its
    /// grid coordinates.
    pub base_seed: u64,
}

impl Default for Conformance {
    fn default() -> Self {
        Conformance::new()
    }
}

impl Conformance {
    /// A harness with the default overheads (congestion-free ChainerMNX),
    /// 2 sampled iterations per replay, and top-10 replay depth.
    pub fn new() -> Self {
        Conformance {
            overheads: OverheadModel::default(),
            sample_iterations: 2,
            replay_top: 10,
            base_seed: 0x5EED_C0DE,
        }
    }

    /// Replaces the simulated framework's overhead model.
    pub fn with_overheads(mut self, overheads: OverheadModel) -> Self {
        self.overheads = overheads;
        self
    }

    /// Sets the iterations simulated per replay.
    pub fn with_samples(mut self, iterations: usize) -> Self {
        self.sample_iterations = iterations.max(1);
        self
    }

    /// Sets how many ranked candidates per cell are replayed.
    pub fn with_replay_top(mut self, n: usize) -> Self {
        self.replay_top = n.max(1);
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Runs the full conformance loop: one amortized [`GridSweep`] over
    /// `grid`, then a parallel replay of every cell's winners through the
    /// simulator. Returns `None` when no cell produced a feasible winner.
    pub fn run(&self, grid: &QueryGrid) -> Option<FidelityReport> {
        let sweep = GridSweep::new().run(grid);
        self.validate_sweep(grid, &sweep)
    }

    /// Replays the winners of an already-computed sweep `report` (its cells
    /// must come from `grid`), rayon-parallel across all (cell, candidate)
    /// jobs. Byte-identical to [`Conformance::validate_sweep_serial`].
    pub fn validate_sweep(&self, grid: &QueryGrid, report: &GridReport) -> Option<FidelityReport> {
        let jobs = self.jobs(report);
        let samples: Vec<ErrorSample> = jobs.par_iter().map(|job| self.replay(grid, job)).collect();
        self.assemble(report, &jobs, samples)
    }

    /// Single-threaded replay of the same jobs, in the same deterministic
    /// order — the equivalence baseline the determinism test compares the
    /// parallel path against (and a 1-thread execution of the same plan).
    pub fn validate_sweep_serial(
        &self,
        grid: &QueryGrid,
        report: &GridReport,
    ) -> Option<FidelityReport> {
        let jobs = self.jobs(report);
        let samples: Vec<ErrorSample> = jobs.iter().map(|job| self.replay(grid, job)).collect();
        self.assemble(report, &jobs, samples)
    }

    /// Fits a per-family overhead [`Calibration`] from the winners of an
    /// already-computed sweep: every (cell, candidate) job is replayed with
    /// exactly the seeds [`Conformance::validate_sweep`] uses, so the fit's
    /// training measurements are the validation sweep's measurements — the
    /// closed §5.2 loop. Returns `None` when the sweep has no replayable
    /// winner. Deterministic: same grid, report and harness seed give a
    /// bit-equal calibration.
    pub fn fit(&self, grid: &QueryGrid, report: &GridReport) -> Option<Calibration> {
        let jobs = self.jobs(report);
        if jobs.is_empty() {
            return None;
        }
        let samples: Vec<CalSample> = jobs
            .par_iter()
            .map(|job| {
                let measured = self.replay(grid, job).measured;
                CalSample::from_estimate(&job.candidate.projection.cost, measured)
            })
            .collect();
        Some(Calibration::fit(&samples, self.base_seed))
    }

    /// [`Conformance::validate_sweep`] with the projections rescaled by a
    /// fitted [`Calibration`] before comparison. The measured side is
    /// byte-identical to the uncalibrated sweep (same jobs, same derived
    /// seeds), so an uncalibrated/calibrated report pair isolates exactly
    /// the effect of the calibration.
    pub fn validate_sweep_calibrated(
        &self,
        grid: &QueryGrid,
        report: &GridReport,
        calibration: &Calibration,
    ) -> Option<FidelityReport> {
        let jobs = self.jobs(report);
        let samples: Vec<ErrorSample> = jobs
            .par_iter()
            .map(|job| {
                let mut sample = self.replay(grid, job);
                sample.projected =
                    calibration.apply_estimate(&job.candidate.projection.cost).epoch_time();
                sample
            })
            .collect();
        self.assemble(report, &jobs, samples)
    }

    /// The flat replay plan: every cell's top candidates, cell-major, each
    /// with a seed derived from its coordinates (not from execution order).
    fn jobs(&self, report: &GridReport) -> Vec<ReplayJob> {
        let mut jobs = Vec::new();
        for (cell, (query, winners)) in report.winners(self.replay_top).into_iter().enumerate() {
            for (rank, &candidate) in winners.iter().enumerate() {
                jobs.push(ReplayJob {
                    cell,
                    query,
                    candidate,
                    seed: derive_seed(self.base_seed, cell, rank),
                });
            }
        }
        jobs
    }

    /// Replays one winner through a freshly seeded simulator and pairs the
    /// measurement with the oracle's projection (both per-epoch seconds).
    fn replay(&self, grid: &QueryGrid, job: &ReplayJob) -> ErrorSample {
        let gm = &grid.models()[job.query.model];
        let cluster = &grid.clusters()[job.query.cluster];
        let config = gm.config_at(job.query.batch);
        let sim = Simulator::new(&cluster.device, cluster)
            .with_overheads(self.overheads)
            .with_samples(self.sample_iterations)
            .with_seed(job.seed);
        let measured = sim.simulate(&gm.model, &config, job.candidate.strategy);
        ErrorSample {
            strategy: job.candidate.strategy,
            projected: job.candidate.projection.cost.epoch_time(),
            measured: measured.per_epoch.total(),
        }
    }

    /// Regroups the flat sample list by cell (jobs are cell-major and the
    /// parallel map preserves order) and builds the report.
    fn assemble(
        &self,
        report: &GridReport,
        jobs: &[ReplayJob],
        samples: Vec<ErrorSample>,
    ) -> Option<FidelityReport> {
        let mut cells: Vec<(GridQuery, Vec<ErrorSample>)> =
            report.cells.iter().map(|c| (c.query, Vec::new())).collect();
        for (job, sample) in jobs.iter().zip(samples) {
            cells[job.cell].1.push(sample);
        }
        FidelityReport::from_cells(cells)
    }
}

/// Mixes the base seed with a job's grid coordinates (SplitMix64-style
/// finalizer), so per-job RNG streams are decorrelated yet depend only on
/// *which* job this is — never on when or where it runs.
fn derive_seed(base: u64, cell: usize, rank: usize) -> u64 {
    let mut z = base
        ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (rank as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::cluster::ClusterSpec;
    use paradl_core::config::TrainingConfig;
    use paradl_core::layer::Layer;
    use paradl_core::model::Model;
    use paradl_core::oracle::Constraints;
    use paradl_core::strategy::StrategyKind;

    fn small_model() -> Model {
        Model::new(
            "toy",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 32, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 32, (32, 32), 2, 2),
                Layer::conv2d("c2", 32, 64, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 64, &[16, 16]),
                Layer::fully_connected("fc", 64, 10),
            ],
        )
    }

    fn small_grid() -> QueryGrid {
        let constraints = Constraints { max_pes: 64, top_k: Some(4), ..Constraints::default() };
        QueryGrid::new(constraints)
            .with_model(small_model(), TrainingConfig::small(4096, 64))
            .with_batches([64usize, 128])
            .with_cluster(ClusterSpec::paper_system())
    }

    #[test]
    fn serial_cells_are_projected_exactly_under_ideal_overheads() {
        // A 1-PE budget admits only the serial strategy, whose simulated run
        // is pure compute — with ideal overheads the oracle projection is
        // exact, so the fidelity pipeline must report ~100% accuracy.
        let constraints = Constraints { max_pes: 1, ..Constraints::default() };
        let grid = QueryGrid::new(constraints)
            .with_model(small_model(), TrainingConfig::small(4096, 64))
            .with_batches([64usize, 128])
            .with_cluster(ClusterSpec::paper_system())
            .with_cluster(ClusterSpec::workstation(4));
        let report = Conformance::new()
            .with_overheads(OverheadModel::ideal())
            .with_samples(1)
            .run(&grid)
            .expect("serial is always feasible");
        assert_eq!(report.cells.len(), grid.num_queries());
        let serial = report.family(StrategyKind::Serial).expect("serial replayed");
        assert_eq!(serial.stats.samples, grid.num_queries());
        assert!(serial.stats.mean_accuracy > 0.999, "serial accuracy {:?}", serial.stats);
        assert!(serial.stats.max_ape < 1e-6, "serial APE {:?}", serial.stats);
    }

    #[test]
    fn report_covers_every_cell_and_family_of_the_winners() {
        let grid = small_grid();
        let sweep = GridSweep::new().run(&grid);
        let report = Conformance::new().validate_sweep(&grid, &sweep).expect("winners");
        assert_eq!(report.cells.len(), grid.num_queries());
        // Every replayed family shows up in the per-family table and the
        // sample counts add up to the overall count.
        let per_family: usize = report.families.iter().map(|f| f.stats.samples).sum();
        assert_eq!(per_family, report.overall.samples);
        let per_cell: usize = report.cells.iter().map(|c| c.stats.samples).sum();
        assert_eq!(per_cell, report.overall.samples);
        // Top-4 replay over ≥ 4 feasible candidates per cell → ρ defined.
        assert!(report.mean_rank_correlation.is_some());
    }

    #[test]
    fn replay_depth_caps_at_ranking_length() {
        let grid = small_grid();
        let sweep = GridSweep::new().run(&grid);
        let harness = Conformance::new().with_replay_top(100);
        let report = harness.validate_sweep(&grid, &sweep).unwrap();
        for (cell, fid) in sweep.cells.iter().zip(&report.cells) {
            assert_eq!(fid.samples.len(), cell.report.ranked.len().min(100));
        }
    }

    #[test]
    fn deterministic_overheads_slow_measurements_down() {
        let grid = small_grid();
        // Probability-1 triggers and zero noise make the slowdown a theorem
        // (every compute term ×1.5, every collective ×≥1.5) rather than a
        // draw of the probabilistic stall/congestion coins, which at this
        // replay count would make the assertion seed-dependent.
        let always_slow = OverheadModel {
            memory_stall_probability: 1.0,
            memory_stall_factor: 1.5,
            congestion_probability: 1.0,
            compute_noise: 0.0,
            ..OverheadModel::chainermnx()
        };
        let ideal = Conformance::new()
            .with_overheads(OverheadModel::ideal())
            .with_samples(1)
            .run(&grid)
            .unwrap();
        let real =
            Conformance::new().with_overheads(always_slow).with_samples(1).run(&grid).unwrap();
        // More overhead biases the signed error downward (oracle
        // under-projects the measured time more often).
        assert!(real.overall.mean_signed_error < ideal.overall.mean_signed_error);
    }

    #[test]
    fn fit_is_deterministic_and_improves_training_fidelity() {
        let grid = small_grid();
        let sweep = GridSweep::new().run(&grid);
        let harness = Conformance::new().with_overheads(OverheadModel::chainermnx());
        let uncal = harness.validate_sweep(&grid, &sweep).expect("winners");
        let cal = harness.fit(&grid, &sweep).expect("winners to fit on");
        assert_eq!(cal, harness.fit(&grid, &sweep).expect("winners"), "fit not deterministic");
        assert_eq!(cal.seed, harness.base_seed);
        let calibrated = harness.validate_sweep_calibrated(&grid, &sweep, &cal).expect("winners");
        // Same jobs, same seeds: the measured side is identical, so the
        // comparison isolates the calibration.
        assert_eq!(uncal.overall.samples, calibrated.overall.samples);
        // The identity candidate in the fit guarantees no family scores
        // below its uncalibrated training accuracy.
        for fam in &calibrated.families {
            let before = uncal.family(fam.family).expect("same families").stats;
            assert!(
                fam.stats.mean_accuracy >= before.mean_accuracy - 1e-9,
                "{}: {:.4} -> {:.4}",
                fam.family,
                before.mean_accuracy,
                fam.stats.mean_accuracy
            );
            assert!(
                fam.stats.mean_signed_error.abs() <= before.mean_signed_error.abs() + 1e-9,
                "{}: signed {:+.4} -> {:+.4}",
                fam.family,
                before.mean_signed_error,
                fam.stats.mean_signed_error
            );
        }
        assert!(
            calibrated.overall.mean_accuracy >= uncal.overall.mean_accuracy - 1e-9,
            "overall accuracy regressed: {:.4} -> {:.4}",
            uncal.overall.mean_accuracy,
            calibrated.overall.mean_accuracy
        );
    }

    #[test]
    fn identity_calibration_reproduces_uncalibrated_sweep() {
        let grid = small_grid();
        let sweep = GridSweep::new().run(&grid);
        let harness = Conformance::new();
        let uncal = harness.validate_sweep(&grid, &sweep).expect("winners");
        let id = harness
            .validate_sweep_calibrated(&grid, &sweep, &Calibration::identity())
            .expect("winners");
        assert_eq!(uncal, id);
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let a = derive_seed(1, 0, 0);
        let b = derive_seed(1, 0, 1);
        let c = derive_seed(1, 1, 0);
        let d = derive_seed(2, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
