//! Link-contention accounting (paper §4.3, "Contention modeling").
//!
//! Every transfer is routed over the topology; when several concurrent flows
//! share a link, each receives `1/φ` of the link bandwidth, where `φ` is the
//! number of flows on that link — a dynamic contention graph. The execution
//! time of one bulk-synchronous step is the maximum over its transfers of
//! `α_path + bytes · β_bottleneck · φ_bottleneck`.

use crate::collectives::{Schedule, Transfer};
use crate::topology::{FatTree, LinkId};
use std::collections::HashMap;

/// Computes the per-link flow counts of a set of concurrent transfers.
pub fn link_loads(topology: &FatTree, transfers: &[Transfer]) -> HashMap<LinkId, usize> {
    let mut loads: HashMap<LinkId, usize> = HashMap::new();
    for t in transfers {
        for link in topology.route(t.src, t.dst) {
            *loads.entry(link).or_insert(0) += 1;
        }
    }
    loads
}

/// Time of one bulk-synchronous step: each transfer is slowed down by the
/// most contended link on its path, and the step finishes when the slowest
/// transfer does.
pub fn step_time(topology: &FatTree, transfers: &[Transfer]) -> f64 {
    if transfers.is_empty() {
        return 0.0;
    }
    let loads = link_loads(topology, transfers);
    transfers
        .iter()
        .map(|t| {
            if t.src == t.dst {
                return 0.0;
            }
            let route = topology.route(t.src, t.dst);
            let alpha: f64 =
                route.iter().map(|&l| topology.link_params(l).alpha).sum::<f64>() / 2.0;
            // Effective inverse bandwidth: bottleneck of β·φ over the path.
            let beta_eff = route
                .iter()
                .map(|&l| {
                    let phi = *loads.get(&l).unwrap_or(&1) as f64;
                    topology.link_params(l).beta * phi
                })
                .fold(0.0f64, f64::max);
            alpha + t.bytes * beta_eff
        })
        .fold(0.0f64, f64::max)
}

/// Time of a full collective schedule: the sum of its step times (steps are
/// bulk-synchronous).
pub fn schedule_time(topology: &FatTree, schedule: &Schedule) -> f64 {
    schedule.steps.iter().map(|s| step_time(topology, s)).sum()
}

/// Maximum contention factor φ observed on any link of a schedule — the
/// quantity the analytical model approximates with its constant coefficient.
pub fn max_contention(topology: &FatTree, schedule: &Schedule) -> usize {
    schedule.steps.iter().flat_map(|s| link_loads(topology, s).into_values()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{ring_allreduce, segmented_allreduce};

    #[test]
    fn disjoint_flows_do_not_contend() {
        let topo = FatTree::paper_system(64);
        // Two transfers inside different nodes.
        let transfers =
            vec![Transfer { src: 0, dst: 1, bytes: 1e6 }, Transfer { src: 4, dst: 5, bytes: 1e6 }];
        let loads = link_loads(&topo, &transfers);
        assert!(loads.values().all(|&v| v == 1));
        let t_two = step_time(&topo, &transfers);
        let t_one = step_time(&topo, &transfers[..1]);
        assert!((t_two - t_one).abs() < 1e-12);
    }

    #[test]
    fn shared_uplink_halves_bandwidth() {
        let topo = FatTree::paper_system(64);
        // Two flows leaving node 0 towards node 1 share the node-0 uplink.
        let one = vec![Transfer { src: 0, dst: 4, bytes: 1e8 }];
        let two =
            vec![Transfer { src: 0, dst: 4, bytes: 1e8 }, Transfer { src: 1, dst: 5, bytes: 1e8 }];
        let t1 = step_time(&topo, &one);
        let t2 = step_time(&topo, &two);
        assert!(t2 > 1.8 * t1, "t1={t1} t2={t2}");
        let loads = link_loads(&topo, &two);
        assert_eq!(loads[&LinkId::NodeToRack { node: 0, dir: crate::topology::Direction::Up }], 2);
    }

    #[test]
    fn empty_step_takes_no_time() {
        let topo = FatTree::single_node(4);
        assert_eq!(step_time(&topo, &[]), 0.0);
        assert_eq!(step_time(&topo, &[Transfer { src: 2, dst: 2, bytes: 1e9 }]), 0.0);
    }

    #[test]
    fn ring_allreduce_time_grows_with_span() {
        let topo = FatTree::paper_system(1024);
        let bytes = 100e6;
        let local: Vec<usize> = (0..4).collect();
        let rack: Vec<usize> = (0..32).collect();
        let t_local = schedule_time(&topo, &ring_allreduce(&local, bytes));
        let t_rack = schedule_time(&topo, &ring_allreduce(&rack, bytes));
        assert!(t_rack > t_local);
    }

    #[test]
    fn segmented_allreduce_exhibits_self_contention() {
        let topo = FatTree::paper_system(64);
        // 4 segments, each spanning one GPU per node across 4 nodes: the
        // per-node uplinks are shared by all 4 concurrent rings.
        let segments: Vec<Vec<usize>> =
            (0..4).map(|g| (0..4).map(|n| n * 4 + g).collect()).collect();
        let sched = segmented_allreduce(&segments, 25e6);
        let phi = max_contention(&topo, &sched);
        assert!(phi >= 4, "expected uplink sharing, got φ = {phi}");
        // A single segment on its own is faster per byte.
        let single = ring_allreduce(&segments[0], 25e6);
        let t_single = schedule_time(&topo, &single);
        let t_all = schedule_time(&topo, &sched);
        assert!(t_all > t_single);
    }

    #[test]
    fn schedule_time_is_sum_of_steps() {
        let topo = FatTree::single_node(4);
        let sched = ring_allreduce(&[0, 1, 2, 3], 4e6);
        let sum: f64 = sched.steps.iter().map(|s| step_time(&topo, s)).sum();
        assert!((schedule_time(&topo, &sched) - sum).abs() < 1e-12);
    }
}
