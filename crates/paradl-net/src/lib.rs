//! # paradl-net
//!
//! Network substrate for the ParaDL simulator: a link-level fat-tree
//! [`topology::FatTree`] matching the paper's evaluation system, step-by-step
//! [`collectives`] schedules (ring Allreduce/Allgather/Reduce-Scatter, tree
//! broadcast, hierarchical and segmented Allreduce, halo exchange), and the
//! dynamic [`contention`] accounting that slows concurrent flows sharing a
//! link — the mechanism behind both the self-contention of hybrid strategies
//! and external network congestion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collectives;
pub mod contention;
pub mod topology;

pub use collectives::{
    flat_reduce_to_root, halo_exchange, hierarchical_allreduce, merge_concurrent, ring_allgather,
    ring_allreduce, ring_reduce_scatter, segmented_allreduce, tree_broadcast, Schedule, Transfer,
};
pub use contention::{link_loads, max_contention, schedule_time, step_time};
pub use topology::{Direction, FatTree, LinkId};

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::comm::{CollectiveAlgorithm, CommModel};

    /// The link-level schedule time and the analytical Hockney formula must
    /// agree (same α, β, ring algorithm, no contention) — this cross-checks
    /// the two halves of the reproduction against each other.
    #[test]
    fn simulated_ring_allreduce_matches_analytical_model() {
        let topo = FatTree::single_node(8);
        let ranks: Vec<usize> = (0..8).collect();
        let bytes = 64.0 * 1024.0 * 1024.0;
        let simulated = schedule_time(&topo, &ring_allreduce(&ranks, bytes));
        let analytic = CommModel::new(topo.intra_node)
            .with_algorithm(CollectiveAlgorithm::Ring)
            .allreduce(8, bytes);
        let rel = (simulated - analytic).abs() / analytic;
        assert!(rel < 0.05, "simulated={simulated} analytic={analytic}");
    }

    #[test]
    fn allgather_matches_analytical_model_too() {
        let topo = FatTree::single_node(4);
        let ranks: Vec<usize> = (0..4).collect();
        let bytes = 16.0 * 1024.0 * 1024.0;
        let simulated = schedule_time(&topo, &ring_allgather(&ranks, bytes));
        let analytic = CommModel::new(topo.intra_node)
            .with_algorithm(CollectiveAlgorithm::Ring)
            .allgather(4, bytes);
        let rel = (simulated - analytic).abs() / analytic;
        assert!(rel < 0.05, "simulated={simulated} analytic={analytic}");
    }
}
