//! Step-by-step collective communication schedules.
//!
//! The analytical side (`paradl-core::comm`) only needs closed-form times;
//! the simulator needs the actual sequence of point-to-point transfers so
//! that link sharing and contention emerge from the schedule. This module
//! produces those schedules for the collectives the six strategies use:
//! ring Allreduce / Allgather / Reduce-Scatter, binomial-tree broadcast,
//! hierarchical (leader-based) Allreduce and the segmented Allreduce used by
//! the Data+Filter hybrid, plus the halo-exchange pattern of spatial
//! parallelism.

/// One point-to-point transfer belonging to a collective step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Source PE (global rank).
    pub src: usize,
    /// Destination PE (global rank).
    pub dst: usize,
    /// Message size in bytes.
    pub bytes: f64,
}

/// A collective schedule: a list of steps, each step being a set of transfers
/// that proceed concurrently. A step only starts once the previous step has
/// completed on every participant (the bulk-synchronous view NCCL rings
/// follow).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// The steps of the collective.
    pub steps: Vec<Vec<Transfer>>,
}

impl Schedule {
    /// Total number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total bytes moved by the whole collective.
    pub fn total_bytes(&self) -> f64 {
        self.steps.iter().flat_map(|s| s.iter()).map(|t| t.bytes).sum()
    }

    /// Concatenates another schedule after this one.
    pub fn then(mut self, other: Schedule) -> Schedule {
        self.steps.extend(other.steps);
        self
    }
}

/// Ring Allreduce over `ranks` with a total buffer of `bytes` bytes:
/// a reduce-scatter phase of `p−1` steps followed by an allgather phase of
/// `p−1` steps, each moving `bytes/p` per PE per step.
pub fn ring_allreduce(ranks: &[usize], bytes: f64) -> Schedule {
    let p = ranks.len();
    if p <= 1 {
        return Schedule::default();
    }
    let chunk = bytes / p as f64;
    let mut steps = Vec::with_capacity(2 * (p - 1));
    for _phase in 0..2 {
        for _s in 0..p - 1 {
            let mut transfers = Vec::with_capacity(p);
            for i in 0..p {
                let src = ranks[i];
                let dst = ranks[(i + 1) % p];
                transfers.push(Transfer { src, dst, bytes: chunk });
            }
            steps.push(transfers);
        }
    }
    Schedule { steps }
}

/// Ring Allgather over `ranks`: each PE contributes `bytes / p` and after
/// `p−1` steps everyone holds the full `bytes` buffer.
pub fn ring_allgather(ranks: &[usize], total_bytes: f64) -> Schedule {
    let p = ranks.len();
    if p <= 1 {
        return Schedule::default();
    }
    let chunk = total_bytes / p as f64;
    let mut steps = Vec::with_capacity(p - 1);
    for _s in 0..p - 1 {
        let mut transfers = Vec::with_capacity(p);
        for i in 0..p {
            transfers.push(Transfer { src: ranks[i], dst: ranks[(i + 1) % p], bytes: chunk });
        }
        steps.push(transfers);
    }
    Schedule { steps }
}

/// Ring Reduce-Scatter over `ranks`: `p−1` steps of `bytes/p` per PE.
pub fn ring_reduce_scatter(ranks: &[usize], bytes: f64) -> Schedule {
    ring_allgather(ranks, bytes)
}

/// Binomial-tree broadcast of `bytes` bytes from `ranks[0]` to all ranks.
pub fn tree_broadcast(ranks: &[usize], bytes: f64) -> Schedule {
    let p = ranks.len();
    if p <= 1 {
        return Schedule::default();
    }
    let mut steps = Vec::new();
    let mut have = 1usize; // number of ranks that already hold the data
    while have < p {
        let senders = have.min(p - have);
        let mut transfers = Vec::with_capacity(senders);
        for i in 0..senders {
            transfers.push(Transfer { src: ranks[i], dst: ranks[have + i], bytes });
        }
        steps.push(transfers);
        have += senders;
    }
    Schedule { steps }
}

/// Flat reduce of `bytes` bytes from every rank to `ranks[0]` (each non-root
/// sends its full buffer to the root; used by the leader-based hierarchical
/// Allreduce of the Data+Spatial hybrid).
pub fn flat_reduce_to_root(ranks: &[usize], bytes: f64) -> Schedule {
    let p = ranks.len();
    if p <= 1 {
        return Schedule::default();
    }
    let steps =
        ranks[1..].iter().map(|&src| vec![Transfer { src, dst: ranks[0], bytes }]).collect();
    Schedule { steps }
}

/// Hierarchical Allreduce for `groups` of PEs (e.g. one group per node):
/// a local reduce to each group leader, a ring Allreduce among the leaders,
/// and a local broadcast back to the group members (paper §4.5.1, the
/// Data+Spatial implementation).
pub fn hierarchical_allreduce(groups: &[Vec<usize>], bytes: f64) -> Schedule {
    let mut schedule = Schedule::default();
    // Phase 1: local reduce to leaders (concurrent across groups — merge the
    // per-group steps index-wise so they run in parallel).
    let local: Vec<Schedule> = groups.iter().map(|g| flat_reduce_to_root(g, bytes)).collect();
    schedule = schedule.then(merge_concurrent(&local));
    // Phase 2: Allreduce among leaders.
    let leaders: Vec<usize> = groups.iter().filter_map(|g| g.first().copied()).collect();
    schedule = schedule.then(ring_allreduce(&leaders, bytes));
    // Phase 3: local broadcast from each leader.
    let bcasts: Vec<Schedule> = groups.iter().map(|g| tree_broadcast(g, bytes)).collect();
    schedule.then(merge_concurrent(&bcasts))
}

/// Segmented Allreduce used by the Data+Filter hybrid: `segments[k]` is the
/// set of PEs holding the `k`-th weight shard (one shard per GPU-of-a-node),
/// and the disjoint Allreduces run concurrently — sharing the inter-node
/// links, which is exactly the self-contention the paper's φ = 2 models.
pub fn segmented_allreduce(segments: &[Vec<usize>], bytes_per_segment: f64) -> Schedule {
    let schedules: Vec<Schedule> =
        segments.iter().map(|s| ring_allreduce(s, bytes_per_segment)).collect();
    merge_concurrent(&schedules)
}

/// Halo exchange of spatial parallelism: every PE swaps `halo_bytes` with its
/// logical neighbours in a 1-D decomposition of `ranks` (two transfers per
/// interior boundary, one step for the "left" faces and one for the "right").
pub fn halo_exchange(ranks: &[usize], halo_bytes: f64) -> Schedule {
    let p = ranks.len();
    if p <= 1 || halo_bytes <= 0.0 {
        return Schedule::default();
    }
    let mut right = Vec::new();
    let mut left = Vec::new();
    for i in 0..p - 1 {
        right.push(Transfer { src: ranks[i], dst: ranks[i + 1], bytes: halo_bytes });
        left.push(Transfer { src: ranks[i + 1], dst: ranks[i], bytes: halo_bytes });
    }
    Schedule { steps: vec![right, left] }
}

/// Merges several schedules so that their step `i`s run concurrently (used
/// for independent per-group collectives).
pub fn merge_concurrent(schedules: &[Schedule]) -> Schedule {
    let depth = schedules.iter().map(|s| s.steps.len()).max().unwrap_or(0);
    let mut steps = vec![Vec::new(); depth];
    for s in schedules {
        for (i, step) in s.steps.iter().enumerate() {
            steps[i].extend_from_slice(step);
        }
    }
    Schedule { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_step_count_and_volume() {
        let ranks: Vec<usize> = (0..8).collect();
        let s = ring_allreduce(&ranks, 8.0e6);
        assert_eq!(s.num_steps(), 2 * 7);
        // Every step moves p chunks of m/p bytes => total 2(p-1) * m.
        let expected = 2.0 * 7.0 * 8.0e6;
        assert!((s.total_bytes() - expected).abs() < 1.0);
    }

    #[test]
    fn ring_allgather_has_p_minus_1_steps() {
        let ranks: Vec<usize> = (0..4).collect();
        let s = ring_allgather(&ranks, 4096.0);
        assert_eq!(s.num_steps(), 3);
        assert!((s.total_bytes() - 3.0 * 4096.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_collectives_are_empty() {
        assert_eq!(ring_allreduce(&[3], 1e6).num_steps(), 0);
        assert_eq!(tree_broadcast(&[3], 1e6).num_steps(), 0);
        assert_eq!(halo_exchange(&[3], 1e6).num_steps(), 0);
    }

    #[test]
    fn tree_broadcast_reaches_everyone_in_log_steps() {
        let ranks: Vec<usize> = (0..8).collect();
        let s = tree_broadcast(&ranks, 100.0);
        assert_eq!(s.num_steps(), 3);
        // All non-root ranks receive exactly once.
        let mut receivers: Vec<usize> = s.steps.iter().flatten().map(|t| t.dst).collect();
        receivers.sort_unstable();
        assert_eq!(receivers, (1..8).collect::<Vec<_>>());
    }

    #[test]
    fn hierarchical_allreduce_composes_three_phases() {
        let groups: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let s = hierarchical_allreduce(&groups, 1e6);
        // local reduce: 3 steps; leader allreduce: 2*(2-1)=2; broadcast: 2 steps.
        assert_eq!(s.num_steps(), 3 + 2 + 2);
        // Leaders are 0 and 4.
        let leader_step = &s.steps[3];
        assert!(leader_step.iter().all(|t| t.src == 0 || t.src == 4));
    }

    #[test]
    fn segmented_allreduce_runs_segments_concurrently() {
        let segments = vec![vec![0, 4, 8], vec![1, 5, 9]];
        let s = segmented_allreduce(&segments, 3e6);
        assert_eq!(s.num_steps(), 2 * 2); // 2(p-1) with p=3
                                          // Each step contains transfers from both segments.
        assert!(s.steps[0].iter().any(|t| t.src % 4 == 0));
        assert!(s.steps[0].iter().any(|t| t.src % 4 == 1));
    }

    #[test]
    fn halo_exchange_swaps_between_neighbours() {
        let ranks = [0usize, 1, 2, 3];
        let s = halo_exchange(&ranks, 512.0);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.steps[0].len(), 3);
        assert!((s.total_bytes() - 2.0 * 3.0 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn merge_concurrent_preserves_total_bytes() {
        let a = ring_allreduce(&[0, 1, 2, 3], 1e6);
        let b = ring_allreduce(&[4, 5, 6, 7], 1e6);
        let merged = merge_concurrent(&[a.clone(), b.clone()]);
        assert_eq!(merged.num_steps(), a.num_steps());
        assert!((merged.total_bytes() - (a.total_bytes() + b.total_bytes())).abs() < 1.0);
    }
}
