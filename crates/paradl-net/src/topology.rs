//! Fat-tree cluster topology with link-level routing.
//!
//! The paper's system connects 4-GPU nodes (NVLink intra-node) through a
//! 3-level fat-tree with full bisection bandwidth intra-rack and 1:3
//! over-subscription inter-rack. For the discrete-event simulator we need a
//! link-level view: every transfer between two PEs is routed over a sequence
//! of [`LinkId`]s, and concurrent transfers sharing a link split its
//! bandwidth — that is how both self-contention (hybrid strategies) and
//! external congestion appear.

use paradl_core::cluster::ClusterSpec;
use paradl_core::comm::LinkParams;

/// Direction of traversal of a (full-duplex) link. Traffic in opposite
/// directions does not contend; traffic in the same direction shares the
/// link's bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards the switches (egress from the PE / node / rack).
    Up,
    /// Towards the PEs (ingress).
    Down,
}

/// Identifier of one physical link in the topology, including the traversal
/// direction (links are full duplex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkId {
    /// NVLink/PCIe link between GPU `gpu` and the node switch of `node`.
    GpuToNode {
        /// Global node index.
        node: usize,
        /// GPU index within the node.
        gpu: usize,
        /// Traversal direction.
        dir: Direction,
    },
    /// Node uplink: from node `node` to its rack (leaf) switch.
    NodeToRack {
        /// Global node index.
        node: usize,
        /// Traversal direction.
        dir: Direction,
    },
    /// Rack uplink: from rack `rack` to the core switches.
    RackToCore {
        /// Rack index.
        rack: usize,
        /// Traversal direction.
        dir: Direction,
    },
}

/// A fat-tree topology of `racks × nodes_per_rack × gpus_per_node` PEs.
#[derive(Debug, Clone, PartialEq)]
pub struct FatTree {
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Number of racks.
    pub racks: usize,
    /// Intra-node link parameters (GPU ↔ node switch).
    pub intra_node: LinkParams,
    /// Node ↔ rack switch link parameters.
    pub node_uplink: LinkParams,
    /// Rack ↔ core link parameters (after over-subscription).
    pub rack_uplink: LinkParams,
}

impl FatTree {
    /// The paper's system sized for at least `min_gpus` GPUs.
    pub fn paper_system(min_gpus: usize) -> Self {
        let gpus_per_node = 4;
        let nodes_per_rack = 17;
        let per_rack = gpus_per_node * nodes_per_rack;
        let racks = min_gpus.div_ceil(per_rack).max(1);
        FatTree {
            gpus_per_node,
            nodes_per_rack,
            racks,
            intra_node: LinkParams::nvlink(),
            node_uplink: LinkParams::infiniband_edr(),
            rack_uplink: LinkParams::infiniband_oversubscribed(),
        }
    }

    /// A fat-tree with the link hierarchy of `cluster`, sized for at least
    /// `min_gpus` GPUs: node size and per-level link parameters come from the
    /// [`ClusterSpec`], so the simulated topology prices the same links the
    /// analytical oracle does. For [`ClusterSpec::paper_system`] this is
    /// parameter-for-parameter [`FatTree::paper_system`].
    pub fn from_cluster(cluster: &ClusterSpec, min_gpus: usize) -> Self {
        let per_rack = cluster.gpus_per_node * cluster.nodes_per_rack;
        FatTree {
            gpus_per_node: cluster.gpus_per_node,
            nodes_per_rack: cluster.nodes_per_rack,
            racks: min_gpus.div_ceil(per_rack.max(1)).max(1),
            intra_node: cluster.intra_node,
            node_uplink: cluster.intra_rack,
            rack_uplink: cluster.inter_rack,
        }
    }

    /// A single-node machine with `gpus` GPUs (no inter-node links involved).
    pub fn single_node(gpus: usize) -> Self {
        FatTree {
            gpus_per_node: gpus,
            nodes_per_rack: 1,
            racks: 1,
            intra_node: LinkParams::nvlink(),
            node_uplink: LinkParams::pcie_gen3(),
            rack_uplink: LinkParams::pcie_gen3(),
        }
    }

    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.gpus_per_node * self.nodes_per_rack * self.racks
    }

    /// Node index of PE `pe` (node-major rank order).
    pub fn node_of(&self, pe: usize) -> usize {
        pe / self.gpus_per_node
    }

    /// Rack index of PE `pe`.
    pub fn rack_of(&self, pe: usize) -> usize {
        self.node_of(pe) / self.nodes_per_rack
    }

    /// GPU index of PE `pe` within its node.
    pub fn gpu_of(&self, pe: usize) -> usize {
        pe % self.gpus_per_node
    }

    /// Routes a transfer from `src` to `dst`: the ordered list of links it
    /// traverses. Same-node transfers use only the two GPU links; same-rack
    /// transfers add the node uplinks; cross-rack transfers add the rack
    /// uplinks.
    pub fn route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        assert!(src < self.total_pes() && dst < self.total_pes(), "PE out of range");
        if src == dst {
            return Vec::new();
        }
        let (sn, dn) = (self.node_of(src), self.node_of(dst));
        let mut links =
            vec![LinkId::GpuToNode { node: sn, gpu: self.gpu_of(src), dir: Direction::Up }];
        if sn != dn {
            links.push(LinkId::NodeToRack { node: sn, dir: Direction::Up });
            let (sr, dr) = (self.rack_of(src), self.rack_of(dst));
            if sr != dr {
                links.push(LinkId::RackToCore { rack: sr, dir: Direction::Up });
                links.push(LinkId::RackToCore { rack: dr, dir: Direction::Down });
            }
            links.push(LinkId::NodeToRack { node: dn, dir: Direction::Down });
        }
        links.push(LinkId::GpuToNode { node: dn, gpu: self.gpu_of(dst), dir: Direction::Down });
        links
    }

    /// Parameters (α, β) of a link.
    pub fn link_params(&self, link: LinkId) -> LinkParams {
        match link {
            LinkId::GpuToNode { .. } => self.intra_node,
            LinkId::NodeToRack { .. } => self.node_uplink,
            LinkId::RackToCore { .. } => self.rack_uplink,
        }
    }

    /// End-to-end Hockney parameters of the path `src → dst`: latencies add
    /// up, the bandwidth is the bottleneck (maximum β) along the path.
    pub fn path_params(&self, src: usize, dst: usize) -> LinkParams {
        let route = self.route(src, dst);
        if route.is_empty() {
            return LinkParams { alpha: 0.0, beta: 0.0 };
        }
        let alpha: f64 = route.iter().map(|&l| self.link_params(l).alpha).sum::<f64>() / 2.0;
        let beta = route.iter().map(|&l| self.link_params(l).beta).fold(0.0f64, f64::max);
        LinkParams { alpha, beta }
    }

    /// Point-to-point transfer time of `bytes` bytes from `src` to `dst`
    /// without contention.
    pub fn p2p_time(&self, src: usize, dst: usize, bytes: f64) -> f64 {
        let p = self.path_params(src, dst);
        if src == dst {
            0.0
        } else {
            p.alpha + bytes * p.beta
        }
    }

    /// The PEs that share a node with `pe` (including itself).
    pub fn node_peers(&self, pe: usize) -> Vec<usize> {
        let node = self.node_of(pe);
        (0..self.gpus_per_node).map(|g| node * self.gpus_per_node + g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_indexing() {
        let t = FatTree::paper_system(1024);
        assert!(t.total_pes() >= 1024);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.gpu_of(5), 1);
        assert_eq!(t.rack_of(4 * 17), 1);
    }

    #[test]
    fn paper_cluster_maps_to_paper_topology() {
        // The cluster-derived tree of the paper system is the paper tree:
        // simulations on the default cluster are unchanged by the mapping.
        for n in [4usize, 64, 1024] {
            assert_eq!(
                FatTree::from_cluster(&ClusterSpec::paper_system(), n),
                FatTree::paper_system(n)
            );
        }
        // A fatter cluster changes the simulated links too.
        let fat = ClusterSpec {
            gpus_per_node: 8,
            intra_rack: LinkParams::from_latency_bandwidth(10.0, 25.0),
            ..ClusterSpec::paper_system()
        };
        let t = FatTree::from_cluster(&fat, 64);
        assert_eq!(t.gpus_per_node, 8);
        assert_eq!(t.node_uplink, fat.intra_rack);
        assert!(t.total_pes() >= 64);
    }

    #[test]
    fn same_node_route_stays_local() {
        let t = FatTree::paper_system(64);
        let route = t.route(0, 1);
        assert_eq!(route.len(), 2);
        assert!(route.iter().all(|l| matches!(l, LinkId::GpuToNode { node: 0, .. })));
    }

    #[test]
    fn cross_node_route_uses_uplinks() {
        let t = FatTree::paper_system(64);
        let route = t.route(0, 4); // different node, same rack
        assert!(route.contains(&LinkId::NodeToRack { node: 0, dir: Direction::Up }));
        assert!(route.contains(&LinkId::NodeToRack { node: 1, dir: Direction::Down }));
        assert!(!route.iter().any(|l| matches!(l, LinkId::RackToCore { .. })));
    }

    #[test]
    fn cross_rack_route_uses_core() {
        let t = FatTree::paper_system(1024);
        let far = 4 * 17 * 2; // first PE of rack 2
        let route = t.route(0, far);
        assert!(route
            .iter()
            .any(|l| matches!(l, LinkId::RackToCore { rack: 0, dir: Direction::Up })));
        assert!(route
            .iter()
            .any(|l| matches!(l, LinkId::RackToCore { rack: 2, dir: Direction::Down })));
    }

    #[test]
    fn opposite_directions_are_distinct_links() {
        let t = FatTree::paper_system(64);
        let fwd = t.route(0, 4);
        let rev = t.route(4, 0);
        // The forward and reverse paths share no directed link.
        assert!(fwd.iter().all(|l| !rev.contains(l)));
    }

    #[test]
    fn path_bandwidth_is_bottleneck() {
        let t = FatTree::paper_system(1024);
        let local = t.path_params(0, 1);
        let rack = t.path_params(0, 4);
        let core = t.path_params(0, 4 * 17 * 2);
        assert!(local.beta <= rack.beta);
        assert!(rack.beta <= core.beta);
        assert_eq!(t.p2p_time(3, 3, 1e6), 0.0);
        assert!(t.p2p_time(0, 1, 1e6) < t.p2p_time(0, 4, 1e6));
    }

    #[test]
    fn node_peers_are_the_four_gpus() {
        let t = FatTree::paper_system(64);
        assert_eq!(t.node_peers(6), vec![4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "PE out of range")]
    fn route_rejects_out_of_range() {
        let t = FatTree::single_node(4);
        let _ = t.route(0, 10);
    }
}
