//! Robustness tests of the hardened daemon: panic containment, batcher
//! supervision, slow-client eviction, stale-socket probing, and retrying
//! clients driving a genuinely faulty transport.

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::oracle::Constraints;
use paradl_core::query::{Query, QueryMode};
use paradl_serve::client::Connection;
use paradl_serve::fault::FaultConfig;
use paradl_serve::proto::{ErrorKind, Request, Response};
use paradl_serve::retry::{RetryPolicy, RetryingClient};
use paradl_serve::server::{Bind, EvalStage, Server, ServerConfig};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_socket() -> (Bind, PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "paradl-chaos-test-{}-{}.sock",
        std::process::id(),
        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    (Bind::Unix(path.clone()), path)
}

fn query(mode: QueryMode, batch: usize) -> Query {
    Query::default()
        .with_model(paradl_models::alexnet())
        .with_config(TrainingConfig::imagenet(batch))
        .with_cluster(ClusterSpec::workstation(8))
        .with_constraints(Constraints { max_pes: 256, ..Constraints::default() })
        .with_mode(mode)
}

/// The marker batch size the injected hooks panic on.
const POISON_BATCH: usize = 333;

fn is_poison(q: &Query) -> bool {
    q.config.map(|c| c.batch_size) == Some(POISON_BATCH)
}

fn stat(server: &Response, key: &str) -> usize {
    match server {
        Response::ServerStats(json) => json.get(key).and_then(|j| j.usize()).unwrap_or(0),
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn poisoned_request_is_quarantined_and_the_batcher_survives() {
    let (bind, _path) = temp_socket();
    // Panic *inside* the per-query containment: the offending request gets
    // an Error response, everything else is untouched.
    let config = ServerConfig {
        eval_hook: Some(Arc::new(|q: &Query, stage: EvalStage| {
            if stage == EvalStage::Eval && is_poison(q) {
                panic!("injected evaluation panic");
            }
        })),
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).unwrap();
    let mut connection = Connection::connect(&bind).unwrap();

    match connection.query(&query(QueryMode::TopK(3), POISON_BATCH), None).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Internal, "a panic is the server's fault, not the bytes'");
            assert!(message.contains("quarantined"), "{message}");
        }
        other => panic!("poisoned request should error, got {other:?}"),
    }

    // The very next query on the same connection is answered, byte-exact.
    let q = query(QueryMode::TopK(3), 256);
    match connection.query(&q, None).unwrap() {
        Response::Answer { answer, .. } => {
            assert_eq!(answer.render(), q.run().unwrap().to_json().render());
        }
        other => panic!("expected an answer, got {other:?}"),
    }

    // Containment inside the catch_unwind never killed the batcher thread.
    let stats = connection.roundtrip(&Request::Stats).unwrap();
    assert!(stat(&stats, "panics_contained") >= 1);
    assert_eq!(stat(&stats, "batcher_restarts"), 0, "Eval-stage panics must not cost a restart");

    server.shutdown_and_join();
}

#[test]
fn batcher_panic_is_supervised_and_restarted() {
    let (bind, _path) = temp_socket();
    // Panic in the batching code, *outside* containment: the batcher thread
    // dies and the supervisor must bring it back.
    let config = ServerConfig {
        eval_hook: Some(Arc::new(|q: &Query, stage: EvalStage| {
            if stage == EvalStage::Batch && is_poison(q) {
                panic!("injected batcher panic");
            }
        })),
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).unwrap();
    let mut connection = Connection::connect(&bind).unwrap();

    // The poisoned request's reply channel is dropped by the dying batcher,
    // which the connection reports as an aborted (quarantined) evaluation.
    match connection.query(&query(QueryMode::TopK(3), POISON_BATCH), None).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Internal),
        other => panic!("poisoned request should error, got {other:?}"),
    }

    // The supervisor restarts the loop; subsequent queries are served.
    let q = query(QueryMode::TopK(3), 256);
    match connection.query(&q, None).unwrap() {
        Response::Answer { answer, .. } => {
            assert_eq!(answer.render(), q.run().unwrap().to_json().render());
        }
        other => panic!("expected an answer after the restart, got {other:?}"),
    }

    let stats = connection.roundtrip(&Request::Stats).unwrap();
    assert!(stat(&stats, "batcher_restarts") >= 1, "the supervisor should have restarted");

    server.shutdown_and_join();
}

#[test]
fn slow_clients_are_evicted_without_harming_the_daemon() {
    let (bind, path) = temp_socket();
    let config =
        ServerConfig { read_timeout: Duration::from_millis(100), ..ServerConfig::default() };
    let server = Server::start(bind.clone(), config).unwrap();

    // A slow-loris peer: open a frame (12-byte header promising 64 bytes),
    // then stall well past the read timeout.
    let mut loris = UnixStream::connect(&path).unwrap();
    loris.write_all(&64u32.to_be_bytes()).unwrap();
    loris.write_all(&0u64.to_be_bytes()).unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // Meanwhile the daemon keeps serving everyone else…
    let mut connection = Connection::connect(&bind).unwrap();
    assert_eq!(connection.roundtrip(&Request::Ping).unwrap(), Response::Pong);

    // …and the stalled connection was evicted, not waited on.
    let stats = connection.roundtrip(&Request::Stats).unwrap();
    assert!(stat(&stats, "evictions") >= 1, "the stalled mid-frame peer should be evicted");

    server.shutdown_and_join();
}

#[test]
fn stale_sockets_are_probed_before_unlinking() {
    let (bind, path) = temp_socket();
    let server = Server::start(bind.clone(), ServerConfig::default()).unwrap();

    // A second daemon on the same path must refuse — the probe finds a
    // live listener, so the socket file is NOT stolen out from under it.
    let err = Server::start(bind.clone(), ServerConfig::default())
        .err()
        .expect("binding over a live daemon must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    // The incumbent is unharmed.
    let mut connection = Connection::connect(&bind).unwrap();
    assert_eq!(connection.roundtrip(&Request::Ping).unwrap(), Response::Pong);
    drop(connection);
    server.shutdown_and_join();

    // A *stale* file — left by a dead daemon — is connect-probed, found
    // dead, unlinked, and rebound.
    {
        use std::os::unix::net::UnixListener;
        let _forgotten = UnixListener::bind(&path).unwrap();
        // Listener drops here; the socket file stays behind, stale.
    }
    assert!(path.exists(), "the stale socket file should still be on disk");
    let server = Server::start(bind.clone(), ServerConfig::default())
        .expect("a stale socket file must not block a new daemon");
    let mut connection = Connection::connect(&bind).unwrap();
    assert_eq!(connection.roundtrip(&Request::Ping).unwrap(), Response::Pong);
    drop(connection);
    server.shutdown_and_join();
}

#[test]
fn faulty_clients_eventually_get_byte_identical_answers() {
    let (bind, _path) = temp_socket();
    let config =
        ServerConfig { read_timeout: Duration::from_millis(200), ..ServerConfig::default() };
    let server = Server::start(bind.clone(), config).unwrap();

    let q = query(QueryMode::TopK(5), 256);
    let local = q.run().unwrap().to_json().render();

    // A client whose own connections randomly corrupt, truncate, stall and
    // reset — every request must still eventually yield the exact answer.
    let policy = RetryPolicy {
        max_attempts: 16,
        base_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(10),
    };
    let mut client =
        RetryingClient::new(bind, policy, 7).with_faults(FaultConfig::moderate(), 1234);
    for _ in 0..20 {
        match client.query(&q, None).expect("retries should absorb every injected fault") {
            Response::Answer { answer, .. } => assert_eq!(answer.render(), local),
            other => panic!("expected an answer, got {other:?}"),
        }
    }
    assert_eq!(client.stats().succeeded, 20);

    server.shutdown_and_join();
}
