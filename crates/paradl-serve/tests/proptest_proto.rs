//! Property tests of the wire codec.
//!
//! Three contracts:
//!
//! 1. any well-formed query request survives serialize → render → parse →
//!    deserialize → serialize byte-identically;
//! 2. any answer document renders *stably*: render → parse → render is a
//!    fixed point (the byte-identical-serving invariant depends on it);
//! 3. no byte-level mutation or truncation of a valid frame can panic the
//!    decoder stack — damage surfaces as `Err`, never as unwinding.

use paradl_core::cost::{CostEstimate, PhaseBreakdown};
use paradl_core::jsonio::Json;
use paradl_core::oracle::{Constraints, Projection};
use paradl_core::query::{Query, QueryAnswer, QueryMode};
use paradl_core::search::{BudgetWinner, RankedCandidate, SearchReport};
use paradl_core::strategy::{SpatialSplit, Strategy};
use paradl_serve::proto::{self, FrameRead, Request, Response, MAX_FRAME};
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;
use std::io::Cursor;

fn arb_mode() -> impl PropStrategy<Value = QueryMode> {
    prop_oneof![
        Just(QueryMode::Suggest),
        Just(QueryMode::FullRank),
        (1usize..32).prop_map(QueryMode::TopK),
        (1usize..512).prop_map(|pes| QueryMode::Survey { pes }),
    ]
}

fn arb_query() -> impl PropStrategy<Value = Query> {
    (arb_mode(), 3usize..12, 1usize..1024).prop_map(|(mode, logb, max_pes)| {
        Query::default()
            .with_model(paradl_models::alexnet())
            .with_config(paradl_core::config::TrainingConfig::imagenet(1 << logb))
            .with_cluster(paradl_core::cluster::ClusterSpec::workstation(8))
            .with_constraints(Constraints { max_pes, ..Constraints::default() })
            .with_mode(mode)
    })
}

fn arb_strategy() -> impl PropStrategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::Serial),
        (1usize..64).prop_map(|p| Strategy::Data { p }),
        (1usize..64).prop_map(|p| Strategy::Filter { p }),
        (1usize..64).prop_map(|p| Strategy::Channel { p }),
        (1usize..64).prop_map(|p| Strategy::Spatial { split: SpatialSplit::balanced_2d(p) }),
        (1usize..16, 1usize..16).prop_map(|(p, segments)| Strategy::Pipeline { p, segments }),
        (1usize..16, 1usize..16).prop_map(|(p1, p2)| Strategy::DataFilter { p1, p2 }),
        (1usize..16, 1usize..16)
            .prop_map(|(p1, p)| Strategy::DataSpatial { p1, split: SpatialSplit::width_only(p) }),
    ]
}

fn arb_projection() -> impl PropStrategy<Value = Projection> {
    (arb_strategy(), 0.0f64..1e6, 0.0f64..1e3, 1usize..100_000, 0.0f64..1e12, 0usize..4).prop_map(
        |(strategy, fw, comm, iterations, mem, flags)| Projection {
            cost: CostEstimate {
                strategy,
                per_epoch: PhaseBreakdown {
                    forward_backward: fw,
                    weight_update: fw * 0.01,
                    gradient_exchange: comm,
                    fb_collective: comm * 0.5,
                    halo_exchange: comm * 0.25,
                    pipeline_p2p: comm * 0.125,
                },
                iterations,
                memory_per_pe_bytes: mem,
            },
            fits_memory: flags & 1 != 0,
            within_scaling_limit: flags & 2 != 0,
        },
    )
}

fn arb_answer() -> impl PropStrategy<Value = QueryAnswer> {
    prop_oneof![
        Just(QueryAnswer::Suggestion(None)),
        arb_projection().prop_map(|p| QueryAnswer::Suggestion(Some(p))),
        (arb_projection(), arb_projection(), 0usize..4).prop_map(|(a, b, extra)| {
            QueryAnswer::Survey(std::iter::repeat_n(a, extra).chain([b]).collect())
        }),
        (arb_projection(), arb_projection(), 0usize..1000, 0usize..1000, 1usize..512).prop_map(
            |(a, b, enumerated, pruned, budget)| {
                QueryAnswer::Ranked(SearchReport {
                    enumerated,
                    pruned_by_memory: pruned,
                    pruned_by_bound: pruned / 2,
                    pruned_by_dominance: pruned / 3,
                    ranked: vec![
                        RankedCandidate { strategy: a.cost.strategy, projection: a },
                        RankedCandidate { strategy: b.cost.strategy, projection: b },
                    ],
                    best_per_budget: vec![BudgetWinner {
                        max_pes: budget,
                        candidate: RankedCandidate { strategy: a.cost.strategy, projection: a },
                    }],
                })
            }
        ),
    ]
}

/// Frames `payload` exactly as the daemon/client would put it on the wire.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    proto::write_frame(&mut bytes, payload, MAX_FRAME).expect("framing a small payload");
    bytes
}

/// Feeds raw bytes through the whole decoder stack: frame layer, UTF-8,
/// JSON, then both envelope parsers. Only the *outcome* is interesting to
/// the caller; the property is that this function returns at all.
fn decode_everything(bytes: &[u8]) {
    let mut cursor = Cursor::new(bytes);
    if let Ok(FrameRead::Frame(payload)) = proto::read_frame(&mut cursor, MAX_FRAME, || true) {
        if let Ok(text) = std::str::from_utf8(&payload) {
            if let Ok(json) = Json::parse(text) {
                let _ = Request::from_json(&json, &|name| {
                    (name == "AlexNet").then(paradl_models::alexnet)
                });
                let _ = Response::from_json(&json);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_requests_round_trip_byte_identically(
        query in arb_query(),
        deadline in prop_oneof![Just(None), (1usize..100_000).prop_map(|ms| Some(ms as u64))],
    ) {
        let request = Request::Query { query, deadline_ms: deadline };
        let rendered = request.to_json().expect("workload is complete").render();
        let parsed = Json::parse(&rendered).expect("own rendering parses");
        let reparsed = Request::from_json(&parsed, &|name| {
            (name == "AlexNet").then(paradl_models::alexnet)
        }).expect("own rendering deserializes");
        prop_assert!(
            reparsed.to_json().expect("still complete").render() == rendered,
            "request drifted across a wire round trip"
        );
    }

    #[test]
    fn answer_documents_render_stably(answer in arb_answer()) {
        // The serving invariant compares served bytes against a locally
        // rendered answer, so render → parse → render must be a fixed point.
        let rendered = answer.to_json().render();
        let reparsed = Json::parse(&rendered).expect("own rendering parses");
        prop_assert!(
            reparsed.render() == rendered,
            "answer rendering is not parse-stable"
        );
    }

    #[test]
    fn mutated_frames_never_panic_the_decoder(
        query in arb_query(),
        seed in 1u64..u64::MAX,
        flips in 1usize..6,
        truncate in 0usize..2,
    ) {
        let request = Request::Query { query, deadline_ms: None };
        let pristine = frame(request.to_json().expect("workload is complete").render().as_bytes());

        // Deterministically vandalize a copy: flip `flips` bytes at seeded
        // positions (any position: header, checksum, or payload), then
        // maybe truncate.
        let mut damaged = pristine.clone();
        let mut state = seed;
        for _ in 0..flips {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % damaged.len();
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            damaged[pos] ^= ((state >> 33) as u8) | 1;
        }
        if truncate == 1 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            damaged.truncate((state >> 33) as usize % (damaged.len() + 1));
        }

        // Must not panic, whatever the damage did.
        decode_everything(&damaged);
        // And the pristine frame still decodes after all that.
        let mut cursor = Cursor::new(pristine.as_slice());
        prop_assert!(matches!(
            proto::read_frame(&mut cursor, MAX_FRAME, || true),
            Ok(FrameRead::Frame(_))
        ));
    }
}
