//! End-to-end tests of the daemon over real unix sockets.
//!
//! The headline property: a served answer is **byte-identical** to
//! `Query::run()?.to_json().render()` computed locally — through the cache
//! miss path, the cache hit path, and the coalescing grid path alike. The
//! rest pins the robustness contract: malformed frames cost at most a
//! connection, never the daemon; full queues shed; expired deadlines are
//! refused; graceful shutdown drains.

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::jsonio::Json;
use paradl_core::oracle::Constraints;
use paradl_core::query::{Query, QueryMode};
use paradl_serve::client::Connection;
use paradl_serve::proto::{self, ErrorKind, FrameRead, Request, Response, MAX_FRAME};
use paradl_serve::server::{Bind, Server, ServerConfig};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_socket() -> (Bind, PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "paradl-serve-test-{}-{}.sock",
        std::process::id(),
        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    (Bind::Unix(path.clone()), path)
}

fn query(mode: QueryMode, batch: usize) -> Query {
    Query::default()
        .with_model(paradl_models::alexnet())
        .with_config(TrainingConfig::imagenet(batch))
        .with_cluster(ClusterSpec::workstation(8))
        .with_constraints(Constraints { max_pes: 256, ..Constraints::default() })
        .with_mode(mode)
}

fn answer_bytes(response: Response) -> (String, proto::AnswerStats) {
    match response {
        Response::Answer { answer, stats } => (answer.render(), stats),
        other => panic!("expected an answer, got {other:?}"),
    }
}

#[test]
fn served_answers_are_byte_identical_to_local_ones() {
    let (bind, _path) = temp_socket();
    let server = Server::start(bind.clone(), ServerConfig::default()).unwrap();

    // Modes covering all three answer shapes and both batcher paths
    // (ranked → grid coalescing, suggest/survey → single path).
    let queries: Vec<Query> = vec![
        query(QueryMode::TopK(5), 256),
        query(QueryMode::TopK(5), 512),
        query(QueryMode::FullRank, 256),
        query(QueryMode::Suggest, 256),
        query(QueryMode::Survey { pes: 16 }, 256),
    ];

    // Concurrent clients: every thread checks its own query against a
    // locally computed answer, bytewise. This exercises the cache-miss path
    // and (with luck and the linger window) actual coalescing.
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let bind = bind.clone();
            let q = queries[i % queries.len()].clone();
            std::thread::spawn(move || {
                let mut connection = Connection::connect(&bind).unwrap();
                let (served, _) = answer_bytes(connection.query(&q, None).unwrap());
                let local = q.run().unwrap().to_json().render();
                assert_eq!(served, local, "served answer drifted from the local oracle");
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // Second pass on one connection: the cache is warm now, so the ranked
    // query must report a core-cache hit — and stay byte-identical.
    let mut connection = Connection::connect(&bind).unwrap();
    let q = query(QueryMode::TopK(5), 256);
    let (served, stats) = answer_bytes(connection.query(&q, None).unwrap());
    assert_eq!(served, q.run().unwrap().to_json().render());
    assert!(stats.cache_hit, "second identical query should hit the engine-core cache");
    // A ranked answer carries the kernel work counters. The served path
    // answers through the coalesced grid sweep, whose batch-invariant
    // communication-coefficient columns let the static dominance cut use
    // exact epoch times — it prunes at least as hard as the local
    // per-query path's compute-only bound — so the individual counters
    // are path-dependent, but the accounting always closes over the same
    // path-invariant enumeration total.
    let local = match q.run().unwrap() {
        paradl_core::prelude::QueryAnswer::Ranked(report) => report,
        other => panic!("expected a ranked answer, got {other:?}"),
    };
    assert!(stats.candidates_evaluated > 0, "ranked answers report costed candidates");
    assert_eq!(
        stats.candidates_evaluated + stats.candidates_pruned,
        local.evaluated() + local.pruned(),
        "enumeration accounting diverged"
    );
    assert!(
        stats.candidates_evaluated <= local.evaluated(),
        "the coefficient-backed grid path should never cost more candidates \
         than the per-query path ({} > {})",
        stats.candidates_evaluated,
        local.evaluated()
    );

    server.shutdown_and_join();
}

#[test]
fn malformed_frames_do_not_kill_the_daemon() {
    let (bind, path) = temp_socket();
    let server = Server::start(bind.clone(), ServerConfig::default()).unwrap();

    let read_response = |stream: &mut UnixStream| -> Response {
        match proto::read_frame(stream, MAX_FRAME, || true).unwrap() {
            FrameRead::Frame(bytes) => {
                Response::from_json(&Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap())
                    .unwrap()
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    };

    // Garbage payload → retryable Protocol error (the bytes were bad, not
    // the request), connection lives.
    let mut stream = UnixStream::connect(&path).unwrap();
    proto::write_frame(&mut stream, b"certainly not json", MAX_FRAME).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("malformed JSON"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // Same connection: wrong schema, unknown op, unknown model — all
    // well-formed bytes carrying a bad request, so BadRequest (fatal; a
    // retry would fail identically).
    proto::write_frame(&mut stream, br#"{"no_op": 1}"#, MAX_FRAME).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Response::Error { kind: ErrorKind::BadRequest, .. }
    ));
    proto::write_frame(&mut stream, br#"{"op": "explode"}"#, MAX_FRAME).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Response::Error { kind: ErrorKind::BadRequest, .. }
    ));
    let mut unknown_model = query(QueryMode::Suggest, 256).to_json().unwrap();
    if let Json::Obj(fields) = &mut unknown_model {
        fields[0].1 = Json::obj([("name", Json::str("gpt-17"))]);
    }
    let request = format!(r#"{{"op":"query","query":{}}}"#, unknown_model.render());
    proto::write_frame(&mut stream, request.as_bytes(), MAX_FRAME).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::BadRequest);
            assert!(message.contains("unknown model"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // Oversized length prefix (a full 12-byte header: length + checksum) →
    // Protocol error response, then the server hangs up.
    let mut stream = UnixStream::connect(&path).unwrap();
    stream.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    stream.write_all(&0u64.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    match read_response(&mut stream) {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // Corrupted frame: valid length, checksum that cannot match. The server
    // answers with a Protocol error (retryable) before hanging up.
    let mut stream = UnixStream::connect(&path).unwrap();
    let payload = br#"{"op":"ping"}"#;
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(&(proto::checksum(payload) ^ 1).to_be_bytes()).unwrap();
    stream.write_all(payload).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // Truncated frame: claim 64 bytes, send 10, hang up mid-frame.
    let mut stream = UnixStream::connect(&path).unwrap();
    stream.write_all(&(64u32).to_be_bytes()).unwrap();
    stream.write_all(&0u64.to_be_bytes()).unwrap();
    stream.write_all(b"ten bytes!").unwrap();
    drop(stream);

    // After all of that, the daemon still answers real queries.
    let mut connection = Connection::connect(&bind).unwrap();
    assert_eq!(connection.roundtrip(&Request::Ping).unwrap(), Response::Pong);
    let q = query(QueryMode::TopK(3), 256);
    let (served, _) = answer_bytes(connection.query(&q, None).unwrap());
    assert_eq!(served, q.run().unwrap().to_json().render());

    server.shutdown_and_join();
}

#[test]
fn full_queues_shed_and_expired_deadlines_are_refused() {
    let (bind, _path) = temp_socket();
    // One-slot queue and a long linger: the batcher sleeps on the first
    // query, the second fills the queue, the third must be shed.
    let config = ServerConfig {
        queue_cap: 1,
        linger: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).unwrap();

    let spawn_query = |batch: usize| {
        let bind = bind.clone();
        std::thread::spawn(move || {
            let mut connection = Connection::connect(&bind).unwrap();
            connection.query(&query(QueryMode::TopK(3), batch), None).unwrap()
        })
    };
    let first = spawn_query(256);
    std::thread::sleep(Duration::from_millis(80)); // batcher holds it, lingering
    let second = spawn_query(512);
    std::thread::sleep(Duration::from_millis(80)); // queue slot now occupied
    let mut connection = Connection::connect(&bind).unwrap();
    let third = connection.query(&query(QueryMode::TopK(3), 1024), None).unwrap();
    assert_eq!(third, Response::Shed, "a full queue must shed, not block");
    assert!(matches!(first.join().unwrap(), Response::Answer { .. }));
    assert!(matches!(second.join().unwrap(), Response::Answer { .. }));

    // A deadline that is already over when the batcher wakes up.
    let expired = connection.query(&query(QueryMode::TopK(3), 256), Some(0)).unwrap();
    assert_eq!(expired, Response::DeadlineExpired);

    server.shutdown_and_join();
}

#[test]
fn overload_degrades_ranked_queries_instead_of_shedding() {
    let (bind, _path) = temp_socket();
    // queue_cap 8 puts the ladder thresholds at 2 (cap depth) and 4
    // (downgrade to suggestion); a long linger guarantees all four ranked
    // queries below land in one drained batch, crossing the second rung.
    let config = ServerConfig {
        queue_cap: 8,
        linger: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).unwrap();

    let workers: Vec<_> = [128usize, 256, 512, 1024]
        .into_iter()
        .map(|batch| {
            let bind = bind.clone();
            std::thread::spawn(move || {
                let mut connection = Connection::connect(&bind).unwrap();
                connection.query(&query(QueryMode::FullRank, batch), None).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let (answer, stats) = match worker.join().unwrap() {
            Response::Answer { answer, stats } => (answer, stats),
            other => panic!("degradation must still answer, got {other:?}"),
        };
        assert_eq!(stats.degraded, 2, "a 4-deep batch against queue_cap 8 hits rung 2");
        assert_eq!(
            answer.get("kind").and_then(Json::string),
            Some("suggestion"),
            "rung 2 downgrades FullRank to a suggestion"
        );
    }

    // The server-wide counters saw all four downgrades.
    let mut control = Connection::connect(&bind).unwrap();
    let stats = match control.roundtrip(&Request::Stats).unwrap() {
        Response::ServerStats(json) => json,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(stats.get("degraded").and_then(Json::usize).unwrap_or(0) >= 4, "{stats:?}");
    assert!(stats.get("degraded_to_suggest").and_then(Json::usize).unwrap_or(0) >= 4, "{stats:?}");

    server.shutdown_and_join();
}

#[test]
fn no_degrade_answers_exactly_as_asked_under_the_same_pressure() {
    let (bind, _path) = temp_socket();
    let config = ServerConfig {
        queue_cap: 8,
        linger: Duration::from_millis(300),
        degrade: false,
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).unwrap();

    let workers: Vec<_> = [128usize, 256, 512, 1024]
        .into_iter()
        .map(|batch| {
            let bind = bind.clone();
            std::thread::spawn(move || {
                let mut connection = Connection::connect(&bind).unwrap();
                connection.query(&query(QueryMode::FullRank, batch), None).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let (answer, stats) = match worker.join().unwrap() {
            Response::Answer { answer, stats } => (answer, stats),
            other => panic!("expected an answer, got {other:?}"),
        };
        assert_eq!(stats.degraded, 0, "--no-degrade must never touch the query");
        assert_eq!(answer.get("kind").and_then(Json::string), Some("ranked"));
    }

    server.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_queued_queries() {
    let (bind, path) = temp_socket();
    let config = ServerConfig { linger: Duration::from_millis(300), ..ServerConfig::default() };
    let server = Server::start(bind.clone(), config).unwrap();

    let spawn_query = |batch: usize| {
        let bind = bind.clone();
        std::thread::spawn(move || {
            let mut connection = Connection::connect(&bind).unwrap();
            connection.query(&query(QueryMode::TopK(3), batch), None).unwrap()
        })
    };
    // Two queries in flight while the batcher lingers…
    let first = spawn_query(256);
    std::thread::sleep(Duration::from_millis(60));
    let second = spawn_query(512);
    std::thread::sleep(Duration::from_millis(60));
    // …then a remote shutdown lands.
    let mut control = Connection::connect(&bind).unwrap();
    assert_eq!(control.roundtrip(&Request::Shutdown).unwrap(), Response::ShuttingDown);

    // New queries are refused. (The server may instead have torn the
    // connection down already — also a refusal, not an answer.)
    if let Ok(response) = control.query(&query(QueryMode::TopK(3), 256), None) {
        assert_eq!(response, Response::ShuttingDown);
    }

    // The in-flight queries still get real answers (drained, not dropped).
    assert!(matches!(first.join().unwrap(), Response::Answer { .. }));
    assert!(matches!(second.join().unwrap(), Response::Answer { .. }));

    server.join();
    assert!(!path.exists(), "the unix socket file should be removed on shutdown");
}
