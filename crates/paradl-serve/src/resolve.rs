//! Model-name resolution for the wire protocol.
//!
//! Queries travel with the model **by name** (shipping layer lists would
//! dwarf every other field), so the daemon maps names back to its bundled
//! model zoo here.

use paradl_core::model::Model;

/// Resolves a wire model name against the bundled zoo.
///
/// Accepts everything [`paradl_models::by_name`] accepts (the
/// case-insensitive aliases like `"resnet50"`), and additionally matches the
/// *exact* display names of the bundled models case-insensitively — e.g.
/// `"CosmoFlow-256"`, the name `Model::name` actually carries, which the
/// alias table does not spell.
pub fn resolve_model(name: &str) -> Option<Model> {
    paradl_models::by_name(name).or_else(|| {
        let mut zoo = paradl_models::paper_models();
        zoo.push(paradl_models::alexnet());
        zoo.into_iter().find(|m| m.name.eq_ignore_ascii_case(name))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_aliases_and_display_names() {
        assert_eq!(resolve_model("resnet50").unwrap().name, "ResNet-50");
        assert_eq!(resolve_model("cosmoflow").unwrap().name, "CosmoFlow-256");
        // The display name itself, which `by_name` alone cannot resolve.
        assert_eq!(resolve_model("CosmoFlow-256").unwrap().name, "CosmoFlow-256");
        assert_eq!(resolve_model("cosmoflow-256").unwrap().name, "CosmoFlow-256");
        assert!(resolve_model("gpt-17").is_none());
    }
}
