//! Client-side resilience: reconnecting, retrying, backing off.
//!
//! A [`RetryingClient`] wraps the raw [`Connection`] with the policy a
//! well-behaved production client should follow against a daemon that
//! sheds load and a network that drops bytes:
//!
//! * **retry only idempotent outcomes** — [`Response::Shed`],
//!   [`Response::DeadlineExpired`], transport-level I/O errors (reset,
//!   timeout, checksum damage, EOF mid-response), and
//!   [`ErrorKind::Protocol`] errors. All of these mean the query was never
//!   evaluated, or was evaluated and the answer lost — and since oracle
//!   queries are pure, resending is always safe. Fatal errors
//!   (`BadRequest`, `TooLarge`, `Internal`, `ShuttingDown`) are returned
//!   immediately: the request itself is the problem.
//! * **reconnect on transport failure** — the connection is dropped and
//!   re-established before the next attempt.
//! * **capped exponential backoff with seeded jitter** — attempt `n` sleeps
//!   `min(base * 2^n, max) * U(0.5, 1.0)`, with the jitter drawn from a
//!   SplitMix64 stream so a seeded run backs off reproducibly.

use crate::client::Connection;
use crate::fault::{FaultConfig, FaultPlan, FaultTrace};
use crate::proto::{Request, Response};
use crate::server::Bind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::time::Duration;

/// When and how hard to retry.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after that.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// Why a request ultimately failed after retries were exhausted.
#[derive(Debug)]
pub enum RetryError {
    /// A non-retryable response (fatal error, shutdown notice).
    Fatal(Response),
    /// Every attempt failed with a retryable outcome; the last one.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The final retryable outcome (`Ok` = a shed/expired/protocol
        /// response, `Err` = a transport error).
        last: Result<Response, io::Error>,
    },
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Fatal(response) => write!(f, "fatal response: {response:?}"),
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last outcome: {last:?}")
            }
        }
    }
}

/// Counters a retrying client accumulates across requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryStats {
    /// Requests that eventually succeeded.
    pub succeeded: u64,
    /// Requests that failed fatally (non-retryable response).
    pub fatal: u64,
    /// Requests that exhausted every attempt.
    pub exhausted: u64,
    /// Retries triggered by transport-level I/O errors.
    pub io_retries: u64,
    /// Retries triggered by `Shed` responses.
    pub shed_retries: u64,
    /// Retries triggered by `DeadlineExpired` responses.
    pub deadline_retries: u64,
    /// Retries triggered by retryable (`Protocol`) error responses.
    pub protocol_retries: u64,
    /// Reconnections performed.
    pub reconnects: u64,
    /// Total attempts across all requests.
    pub attempts: u64,
}

impl RetryStats {
    /// All retries, regardless of trigger.
    pub fn retries(&self) -> u64 {
        self.io_retries + self.shed_retries + self.deadline_retries + self.protocol_retries
    }
}

/// A client that reconnects and retries per a [`RetryPolicy`]. Optionally
/// injects a fresh seeded [`FaultPlan`] below each connection it opens
/// (client-side chaos): connection `n` uses `fault_seed + n`, so the whole
/// run is reproducible from the base seed.
#[derive(Debug)]
pub struct RetryingClient {
    target: Bind,
    policy: RetryPolicy,
    jitter: StdRng,
    connection: Option<Connection>,
    faults: Option<FaultConfig>,
    fault_seed: u64,
    connections_opened: u64,
    fault_trace: FaultTrace,
    stats: RetryStats,
}

impl RetryingClient {
    /// A client for `target` with `policy`; `jitter_seed` pins the backoff
    /// jitter stream.
    pub fn new(target: Bind, policy: RetryPolicy, jitter_seed: u64) -> Self {
        RetryingClient {
            target,
            policy,
            jitter: StdRng::seed_from_u64(jitter_seed),
            connection: None,
            faults: None,
            fault_seed: 0,
            connections_opened: 0,
            fault_trace: FaultTrace::default(),
            stats: RetryStats::default(),
        }
    }

    /// Injects client-side faults: every connection this client opens is
    /// wrapped in a [`FaultPlan`] seeded `seed + connection_index`.
    pub fn with_faults(mut self, config: FaultConfig, seed: u64) -> Self {
        self.faults = Some(config);
        self.fault_seed = seed;
        self
    }

    /// Replaces the fault config for connections opened from now on
    /// (used by escalating chaos schedules). `None` disables injection.
    pub fn set_faults(&mut self, config: Option<FaultConfig>) {
        self.faults = config;
        // Force a reconnect so the new config takes effect immediately.
        self.connection = None;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Aggregate fault trace over every connection this client has opened
    /// (including the live one).
    pub fn fault_trace(&self) -> FaultTrace {
        let mut total = self.fault_trace;
        if let Some(live) = self.connection.as_ref().and_then(|c| c.fault_trace()) {
            total.absorb(&live);
        }
        total
    }

    fn drop_connection(&mut self) {
        if let Some(connection) = self.connection.take() {
            if let Some(trace) = connection.fault_trace() {
                self.fault_trace.absorb(&trace);
            }
        }
    }

    fn ensure_connected(&mut self) -> io::Result<&mut Connection> {
        if self.connection.is_none() {
            let connection = match self.faults {
                Some(config) => {
                    let seed = self.fault_seed.wrapping_add(self.connections_opened);
                    Connection::connect_faulty(&self.target, FaultPlan::new(config, seed))?
                }
                None => Connection::connect(&self.target)?,
            };
            self.connections_opened += 1;
            if self.connections_opened > 1 {
                self.stats.reconnects += 1;
            }
            self.connection = Some(connection);
        }
        Ok(self.connection.as_mut().expect("just connected"))
    }

    fn backoff(&mut self, attempt: u32) {
        let exp = self.policy.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.policy.max_backoff);
        let jitter = self.jitter.gen_range(0.5f64..1.0);
        std::thread::sleep(Duration::from_micros((capped.as_micros() as f64 * jitter) as u64));
    }

    /// Sends `request` until it yields a non-retryable outcome or the
    /// policy's attempts are exhausted.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, RetryError> {
        let mut last: Option<Result<Response, io::Error>> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            self.stats.attempts += 1;
            let outcome = match self.ensure_connected() {
                Ok(connection) => connection.roundtrip(request),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(response) if response.retryable() => {
                    match &response {
                        Response::Shed => self.stats.shed_retries += 1,
                        Response::DeadlineExpired => self.stats.deadline_retries += 1,
                        _ => self.stats.protocol_retries += 1,
                    }
                    last = Some(Ok(response));
                }
                Ok(response) => {
                    if matches!(response, Response::Error { .. } | Response::ShuttingDown) {
                        self.stats.fatal += 1;
                        return Err(RetryError::Fatal(response));
                    }
                    self.stats.succeeded += 1;
                    return Ok(response);
                }
                Err(e) => {
                    // Transport damage: the connection is unusable. Drop it
                    // so the next attempt reconnects.
                    self.stats.io_retries += 1;
                    self.drop_connection();
                    last = Some(Err(e));
                }
            }
        }
        self.stats.exhausted += 1;
        Err(RetryError::Exhausted {
            attempts: self.policy.max_attempts,
            last: last.expect("at least one attempt ran"),
        })
    }

    /// Sends one query (no deadline unless given) with retries.
    pub fn query(
        &mut self,
        query: &paradl_core::query::Query,
        deadline_ms: Option<u64>,
    ) -> Result<Response, RetryError> {
        self.roundtrip(&Request::Query { query: query.clone(), deadline_ms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(40),
        };
        // Two clients with the same jitter seed draw the same sleeps.
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for attempt in 0u32..6 {
            let exp = policy.base_backoff.saturating_mul(1u32 << attempt.min(16));
            let capped = exp.min(policy.max_backoff);
            assert!(capped <= policy.max_backoff);
            let ja: f64 = a.gen_range(0.5f64..1.0);
            let jb: f64 = b.gen_range(0.5f64..1.0);
            assert_eq!(ja, jb);
            assert!((0.5..1.0).contains(&ja));
        }
    }

    #[test]
    fn connecting_to_a_dead_target_exhausts_with_io_errors() {
        let target = Bind::Unix(std::env::temp_dir().join("paradl-retry-nowhere.sock"));
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        };
        let mut client = RetryingClient::new(target, policy, 1);
        match client.roundtrip(&Request::Ping) {
            Err(RetryError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(last.is_err(), "expected a transport error, got {last:?}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(client.stats().io_retries, 3);
        assert_eq!(client.stats().exhausted, 1);
        assert_eq!(client.stats().succeeded, 0);
    }
}
