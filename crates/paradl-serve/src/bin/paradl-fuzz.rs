//! Seeded spec-fuzz harness for the query surface.
//!
//! Generates adversarial query JSON — mutations of valid wire payloads
//! (numbers zeroed, negated, inflated to 1e308, raw `1e999` splices, fields
//! dropped, types swapped) plus a hand-written corpus of degenerate specs —
//! and drives every case through **both** admission paths:
//!
//! * locally, via `Json::parse` → `Query::from_json` → [`Query::vet`] →
//!   [`Query::run_contained`];
//! * served, as a raw `{"op":"query","query":…}` frame against a live
//!   in-process daemon (degradation off, so accepted answers stay
//!   byte-comparable).
//!
//! The invariants checked, per case and in aggregate:
//!
//! * **No panic escapes.** The fuzz process never unwinds; the daemon's
//!   contained-panic counter stays zero across the whole seed set.
//! * **No non-finite cost.** Every number in an accepted answer is finite
//!   (checked on the JSON tree, before rendering can mask an `inf` as
//!   `null`).
//! * **Decision parity.** A case is accepted locally iff the daemon accepts
//!   it, and accepted answers are byte-identical.
//! * **Degenerate specs are refused with a diagnosis**, not evaluated.
//!
//! Results go to `BENCH_robust.json`; set `PARADL_ASSERT_ROBUST=1` to turn
//! any violation into a non-zero exit (the CI `robust` job does).

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::jsonio::Json;
use paradl_core::oracle::Constraints;
use paradl_core::query::{Query, QueryMode};
use paradl_serve::proto::{self, ErrorKind, FrameRead, Request, Response, MAX_FRAME};
use paradl_serve::resolve::resolve_model;
use paradl_serve::server::{Bind, Server, ServerConfig};
use std::collections::BTreeMap;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

const USAGE: &str = "\
paradl-fuzz: seeded spec-fuzzing of the paradl query surface

USAGE:
    paradl-fuzz [OPTIONS]

OPTIONS:
    --quick         smaller seed set (used by CI smoke; the full set is the
                    committed benchmark)
    --seed N        base seed for the mutation streams (default 7457721)
    --rounds N      mutation rounds per base payload (default 24, quick 8)
    --out PATH      output file (default BENCH_robust.json)
    --help          print this help

Every case is evaluated twice — locally and against a live in-process
daemon — and the two decisions must agree byte-for-byte on acceptance.
Set PARADL_ASSERT_ROBUST=1 to fail the run on any parity mismatch,
non-finite value in an accepted answer, contained panic, or accepted
degenerate spec.";

struct Args {
    seed: u64,
    rounds: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut seed = 7_457_721u64;
    let mut rounds = None;
    let mut out = "BENCH_robust.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--rounds" => {
                rounds = Some(
                    args.next()
                        .ok_or("--rounds needs a value")?
                        .parse()
                        .map_err(|_| "--rounds needs an integer".to_string())?,
                );
            }
            "--out" => out = args.next().ok_or("--out needs a value")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args { seed, rounds: rounds.unwrap_or(if quick { 8 } else { 24 }), out })
}

// ---------------------------------------------------------------------------
// Deterministic PRNG (xorshift64*), so the committed seed set reproduces.
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Case generation.
// ---------------------------------------------------------------------------

/// Valid wire payloads the mutators start from: every answer shape, both
/// bundled clusters, two models.
fn base_payloads() -> Vec<String> {
    let base = |model: paradl_core::model::Model,
                cluster: ClusterSpec,
                mode: QueryMode,
                batch: usize,
                max_pes: usize| {
        Query::default()
            .with_config(TrainingConfig::imagenet(batch))
            .with_model(model)
            .with_cluster(cluster)
            .with_constraints(Constraints { max_pes, ..Constraints::default() })
            .with_mode(mode)
            .to_json()
            .expect("complete query serializes")
            .render()
    };
    vec![
        base(paradl_models::alexnet(), ClusterSpec::workstation(8), QueryMode::TopK(5), 256, 256),
        base(paradl_models::alexnet(), ClusterSpec::workstation(8), QueryMode::FullRank, 512, 256),
        base(paradl_models::alexnet(), ClusterSpec::paper_system(), QueryMode::Suggest, 256, 1024),
        base(
            paradl_models::alexnet(),
            ClusterSpec::workstation(4),
            QueryMode::Survey { pes: 16 },
            128,
            256,
        ),
        base(paradl_models::resnet50(), ClusterSpec::workstation(8), QueryMode::TopK(3), 256, 128),
    ]
}

/// Hand-written degenerate specs. Every one of these must be **refused**
/// (at parse, decode, vet, or engine construction) with a structured error —
/// never evaluated into an answer.
fn degenerate_corpus() -> Vec<(&'static str, String)> {
    let patch = |json: &str, path: &[&str], with: Json| -> String {
        let mut tree = Json::parse(json).expect("base payload parses");
        let mut node = &mut tree;
        for key in &path[..path.len() - 1] {
            let Json::Obj(fields) = node else { panic!("path walks objects") };
            node = &mut fields.iter_mut().find(|(k, _)| k == key).expect("known key").1;
        }
        let Json::Obj(fields) = node else { panic!("path walks objects") };
        fields.iter_mut().find(|(k, _)| k == *path.last().unwrap()).expect("known key").1 = with;
        tree.render()
    };
    let valid = base_payloads().remove(0);
    vec![
        ("zero batch size", patch(&valid, &["config", "batch_size"], Json::count(0))),
        ("zero dataset", patch(&valid, &["config", "dataset_size"], Json::count(0))),
        ("batch exceeds dataset", patch(&valid, &["config", "batch_size"], Json::count(1 << 40))),
        ("negative bytes per item", patch(&valid, &["config", "bytes_per_item"], Json::Num(-1.0))),
        ("memory reuse above one", patch(&valid, &["config", "memory_reuse"], Json::Num(7.0))),
        ("zero-GPU nodes", patch(&valid, &["cluster", "gpus_per_node"], Json::count(0))),
        ("zero racks", patch(&valid, &["cluster", "racks"], Json::count(0))),
        ("dead device", patch(&valid, &["cluster", "device", "peak_flops"], Json::Num(0.0))),
        (
            "negative link latency",
            patch(&valid, &["cluster", "intra_node", "alpha"], Json::Num(-1.0e-6)),
        ),
        ("zero PE budget", patch(&valid, &["constraints", "max_pes"], Json::count(0))),
        (
            "negative memory capacity",
            patch(&valid, &["constraints", "memory_capacity_bytes"], Json::Num(-1.0)),
        ),
        (
            "zero-PE survey",
            patch(
                &valid,
                &["mode"],
                Json::obj([("kind", Json::str("survey")), ("pes", Json::count(0))]),
            ),
        ),
        ("unknown model", patch(&valid, &["model"], Json::obj([("name", Json::str("gpt-17"))]))),
        ("unknown mode", patch(&valid, &["mode"], Json::obj([("kind", Json::str("explode"))]))),
        ("infinite beta literal", {
            // Raw splice: `1e999` parses to +inf in a permissive reader; ours
            // must refuse it at the parser, as must the daemon's.
            let marker = patch(&valid, &["cluster", "inter_rack", "beta"], Json::Num(777.125));
            marker.replace("777.125", "1e999")
        }),
        ("enumeration blowup", {
            let big = patch(&valid, &["config", "dataset_size"], Json::count(1 << 42));
            let big = patch(&big, &["config", "batch_size"], Json::count(1 << 40));
            let big = patch(&big, &["constraints", "max_pes"], Json::count(1 << 50));
            let big = patch(&big, &["constraints", "sweep"], Json::str("exhaustive"));
            patch(&big, &["mode"], Json::obj([("kind", Json::str("full_rank"))]))
        }),
    ]
}

/// Hostile replacement values the numeric-leaf mutator draws from.
const HOSTILE_NUMBERS: [f64; 8] =
    [0.0, -1.0, 1.0e308, -1.0e308, 1.0e-300, 1.0e18, 0.5, 4294967296.0];

fn count_leaves(json: &Json) -> usize {
    match json {
        Json::Obj(fields) => fields.iter().map(|(_, v)| count_leaves(v)).sum(),
        Json::Arr(items) => items.iter().map(count_leaves).sum(),
        _ => 1,
    }
}

/// Replaces the `target`-th leaf (pre-order) with `with`; returns true once
/// the replacement lands.
fn replace_leaf(json: &mut Json, target: &mut usize, with: &Json) -> bool {
    match json {
        Json::Obj(fields) => fields.iter_mut().any(|(_, v)| replace_leaf(v, target, with)),
        Json::Arr(items) => items.iter_mut().any(|v| replace_leaf(v, target, with)),
        leaf => {
            if *target == 0 {
                *leaf = with.clone();
                true
            } else {
                *target -= 1;
                false
            }
        }
    }
}

fn count_fields(json: &Json) -> usize {
    match json {
        Json::Obj(fields) => {
            fields.len() + fields.iter().map(|(_, v)| count_fields(v)).sum::<usize>()
        }
        Json::Arr(items) => items.iter().map(count_fields).sum(),
        _ => 0,
    }
}

/// Removes the `target`-th object field (pre-order); returns true once the
/// removal lands.
fn drop_field(json: &mut Json, target: &mut usize) -> bool {
    match json {
        Json::Obj(fields) => {
            if *target < fields.len() {
                fields.remove(*target);
                return true;
            }
            *target -= fields.len();
            fields.iter_mut().any(|(_, v)| drop_field(v, target))
        }
        Json::Arr(items) => items.iter_mut().any(|v| drop_field(v, target)),
        _ => false,
    }
}

/// Replaces the `occurrence`-th numeric literal in rendered JSON text with a
/// raw splice the tree representation cannot express (e.g. `1e999`).
fn splice_number(text: &str, occurrence: usize, with: &str) -> String {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            // Skip string literals so we never splice inside a key.
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += if bytes[i] == b'\\' { 2 } else { 1 };
            }
            i += 1;
            continue;
        }
        if bytes[i].is_ascii_digit() || (bytes[i] == b'-' && i + 1 < bytes.len()) {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || matches!(bytes[i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                i += 1;
            }
            spans.push((start, i));
            continue;
        }
        i += 1;
    }
    if spans.is_empty() {
        return text.to_string();
    }
    let (start, end) = spans[occurrence % spans.len()];
    format!("{}{}{}", &text[..start], with, &text[end..])
}

/// One seeded mutation of a base payload.
fn mutate(base: &str, rng: &mut Rng) -> String {
    let tree = Json::parse(base).expect("base payload parses");
    match rng.below(5) {
        // Hostile number into a random leaf.
        0 => {
            let mut tree = tree;
            let n = HOSTILE_NUMBERS[rng.below(HOSTILE_NUMBERS.len())];
            let mut target = rng.below(count_leaves(&tree));
            replace_leaf(&mut tree, &mut target, &Json::Num(n));
            tree.render()
        }
        // Type confusion: a string, empty array, or null where a value was.
        1 => {
            let mut tree = tree;
            let with = match rng.below(3) {
                0 => Json::str("bogus"),
                1 => Json::Arr(Vec::new()),
                _ => Json::Null,
            };
            let mut target = rng.below(count_leaves(&tree));
            replace_leaf(&mut tree, &mut target, &with);
            tree.render()
        }
        // Drop a field anywhere in the tree.
        2 => {
            let mut tree = tree;
            let mut target = rng.below(count_fields(&tree));
            drop_field(&mut tree, &mut target);
            tree.render()
        }
        // Raw splice of an overflowing or malformed numeric literal.
        3 => {
            let with = ["1e999", "-1e999", "1e99999999", "0x10", "1.2.3"][rng.below(5)];
            splice_number(base, rng.below(64), with)
        }
        // Truncate the text mid-structure (wire-level garbage). Keep at
        // least two trailing characters off: a prefix missing exactly the
        // final `}` would be completed by the request envelope's own closing
        // brace into a *valid* served payload that the local parse refuses.
        _ => {
            let cut = 1 + rng.below(base.len().saturating_sub(2));
            base[..cut].to_string()
        }
    }
}

// ---------------------------------------------------------------------------
// Dual evaluation: local pipeline vs the live daemon.
// ---------------------------------------------------------------------------

/// Where a case ended up: evaluated to an answer, or refused at a stage.
enum Decision {
    /// Rendered answer JSON plus the count of non-finite numbers in its tree.
    Accepted {
        bytes: String,
        non_finite: usize,
    },
    Rejected {
        stage: &'static str,
        message: String,
    },
}

impl Decision {
    fn accepted(&self) -> bool {
        matches!(self, Decision::Accepted { .. })
    }

    fn stage(&self) -> &'static str {
        match self {
            Decision::Accepted { .. } => "accepted",
            Decision::Rejected { stage, .. } => stage,
        }
    }

    fn describe(&self) -> String {
        match self {
            Decision::Accepted { .. } => "accepted".to_string(),
            Decision::Rejected { stage, message } => format!("{stage} ({message})"),
        }
    }
}

fn count_non_finite(json: &Json) -> usize {
    match json {
        Json::Obj(fields) => fields.iter().map(|(_, v)| count_non_finite(v)).sum(),
        Json::Arr(items) => items.iter().map(count_non_finite).sum(),
        Json::Num(n) if !n.is_finite() => 1,
        _ => 0,
    }
}

/// The standalone admission pipeline, stage by stage. `run_contained` keeps
/// an evaluation panic (should the vet ever let one through) from unwinding
/// into the harness — it would surface as an `eval` rejection AND a parity
/// mismatch against the daemon's `internal` quarantine... unless the daemon
/// panicked identically, which its contained-panic counter would expose.
fn local_decision(case: &str) -> Decision {
    let json = match Json::parse(case) {
        Ok(json) => json,
        Err(e) => return Decision::Rejected { stage: "parse", message: e.to_string() },
    };
    let query = match Query::from_json(&json, &|name| resolve_model(name)) {
        Ok(query) => query,
        Err(message) => return Decision::Rejected { stage: "decode", message },
    };
    if let Err(e) = query.vet() {
        return Decision::Rejected { stage: "vet", message: e.to_string() };
    }
    match query.run_contained() {
        Ok(answer) => {
            let tree = answer.to_json();
            Decision::Accepted { non_finite: count_non_finite(&tree), bytes: tree.render() }
        }
        Err(message) => Decision::Rejected { stage: "eval", message },
    }
}

/// One raw framed round trip against the daemon. A fresh connection per
/// case: several rejection paths (oversized frames, protocol errors) end
/// with a hang-up, and reusing a torn-down stream would misattribute the
/// next case's outcome.
fn served_decision(path: &std::path::Path, case: &str) -> Result<Decision, String> {
    let mut stream = UnixStream::connect(path).map_err(|e| format!("connect: {e}"))?;
    let request = format!(r#"{{"op":"query","query":{case}}}"#);
    proto::write_frame(&mut stream, request.as_bytes(), MAX_FRAME)
        .map_err(|e| format!("write: {e}"))?;
    let bytes = match proto::read_frame(&mut stream, MAX_FRAME, || true) {
        Ok(FrameRead::Frame(bytes)) => bytes,
        Ok(other) => return Err(format!("expected a response frame, got {other:?}")),
        Err(e) => return Err(format!("read: {e}")),
    };
    let json = Json::parse(std::str::from_utf8(&bytes).map_err(|e| format!("utf8: {e}"))?)
        .map_err(|e| format!("response parse: {e}"))?;
    let response = Response::from_json(&json).map_err(|e| format!("response decode: {e}"))?;
    Ok(match response {
        Response::Answer { answer, .. } => {
            Decision::Accepted { non_finite: count_non_finite(&answer), bytes: answer.render() }
        }
        Response::Error { kind, message } => {
            let stage = match kind {
                ErrorKind::Protocol => "parse",
                ErrorKind::BadRequest => "rejected",
                ErrorKind::TooLarge => "too_large",
                ErrorKind::Internal => "internal",
            };
            Decision::Rejected { stage, message }
        }
        other => Decision::Rejected { stage: "refused", message: format!("{other:?}") },
    })
}

// ---------------------------------------------------------------------------
// The harness.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Tally {
    cases: u64,
    accepted: u64,
    parity_mismatches: u64,
    byte_mismatches: u64,
    non_finite_values: u64,
    degenerate_accepted: u64,
    transport_failures: u64,
    local_stages: BTreeMap<&'static str, u64>,
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let socket = std::env::temp_dir().join(format!("paradl-fuzz-{}.sock", std::process::id()));
    // Degradation off: the ladder rewrites query modes under pressure, which
    // would (correctly) break byte parity with the unpressured local run.
    let config = ServerConfig { degrade: false, ..ServerConfig::default() };
    let server = Server::start(Bind::Unix(socket.clone()), config)
        .map_err(|e| format!("start daemon: {e}"))?;

    let bases = base_payloads();
    let corpus = degenerate_corpus();
    let mut cases: Vec<(String, String, bool)> = Vec::new(); // (label, payload, degenerate)
    for (i, payload) in bases.iter().enumerate() {
        cases.push((format!("valid/{i}"), payload.clone(), false));
    }
    for (name, payload) in &corpus {
        cases.push((format!("degenerate/{name}"), payload.clone(), true));
    }
    for (i, base) in bases.iter().enumerate() {
        let mut rng = Rng::new(args.seed ^ ((i as u64 + 1) << 20));
        for round in 0..args.rounds {
            cases.push((format!("mutated/{i}/{round}"), mutate(base, &mut rng), false));
        }
    }

    let mut tally = Tally { cases: cases.len() as u64, ..Tally::default() };
    let mut first_failures: Vec<String> = Vec::new();
    let note = |list: &mut Vec<String>, message: String| {
        eprintln!("FAIL {message}");
        if list.len() < 16 {
            list.push(message);
        }
    };

    for (label, payload, degenerate) in &cases {
        let local = local_decision(payload);
        let served = match served_decision(&socket, payload) {
            Ok(decision) => decision,
            Err(e) => {
                tally.transport_failures += 1;
                note(&mut first_failures, format!("{label}: transport: {e}"));
                continue;
            }
        };
        *tally.local_stages.entry(local.stage()).or_default() += 1;

        if local.accepted() != served.accepted() {
            tally.parity_mismatches += 1;
            note(
                &mut first_failures,
                format!("{label}: local {} vs served {}", local.describe(), served.describe()),
            );
        }
        if let (
            Decision::Accepted { bytes: local_bytes, non_finite },
            Decision::Accepted { bytes: served_bytes, non_finite: served_non_finite },
        ) = (&local, &served)
        {
            tally.accepted += 1;
            tally.non_finite_values += (*non_finite + *served_non_finite) as u64;
            if *non_finite + *served_non_finite > 0 {
                note(&mut first_failures, format!("{label}: non-finite value in answer"));
            }
            if local_bytes != served_bytes {
                tally.byte_mismatches += 1;
                note(&mut first_failures, format!("{label}: answers differ bytewise"));
            }
        }
        if *degenerate && local.accepted() {
            tally.degenerate_accepted += 1;
            note(&mut first_failures, format!("{label}: degenerate spec was evaluated"));
        }
    }

    // The daemon must come through the whole set alive and panic-free.
    let mut survived = false;
    let mut panics_contained = u64::MAX;
    let mut server_stats = Json::Null;
    if let Ok(mut connection) = paradl_serve::client::Connection::connect(&Bind::Unix(socket)) {
        survived = matches!(connection.roundtrip(&Request::Ping), Ok(Response::Pong));
        if let Ok(Response::ServerStats(stats)) = connection.roundtrip(&Request::Stats) {
            panics_contained =
                stats.get("panics_contained").and_then(Json::usize).unwrap_or(usize::MAX) as u64;
            server_stats = stats;
        } else {
            survived = false;
        }
    }
    server.shutdown_and_join();

    println!(
        "fuzzed {} cases: {} accepted, parity mismatches {}, byte mismatches {}, \
         non-finite {}, degenerate accepted {}, daemon panics contained {}, survived={}",
        tally.cases,
        tally.accepted,
        tally.parity_mismatches,
        tally.byte_mismatches,
        tally.non_finite_values,
        tally.degenerate_accepted,
        panics_contained,
        survived,
    );

    let ok = survived
        && tally.parity_mismatches == 0
        && tally.byte_mismatches == 0
        && tally.non_finite_values == 0
        && tally.degenerate_accepted == 0
        && tally.transport_failures == 0
        && panics_contained == 0;

    let report = Json::obj([
        ("benchmark", Json::str("paradl-fuzz-robustness")),
        ("seed", Json::count(args.seed as usize)),
        ("rounds_per_base", Json::count(args.rounds)),
        ("cases", Json::count(tally.cases as usize)),
        ("accepted", Json::count(tally.accepted as usize)),
        (
            "local_stages",
            Json::obj(
                tally
                    .local_stages
                    .iter()
                    .map(|(stage, n)| (*stage, Json::count(*n as usize)))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("parity_mismatches", Json::count(tally.parity_mismatches as usize)),
        ("byte_mismatches", Json::count(tally.byte_mismatches as usize)),
        ("non_finite_values", Json::count(tally.non_finite_values as usize)),
        ("degenerate_accepted", Json::count(tally.degenerate_accepted as usize)),
        ("transport_failures", Json::count(tally.transport_failures as usize)),
        ("panics_contained", Json::count(panics_contained as usize)),
        ("survived", Json::Bool(survived)),
        ("ok", Json::Bool(ok)),
        ("first_failures", Json::Arr(first_failures.iter().map(Json::str).collect())),
        ("server", server_stats),
    ]);
    let mut rendered = report.render_pretty();
    rendered.push('\n');
    std::fs::write(&args.out, rendered).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("wrote {}", args.out);

    if std::env::var("PARADL_ASSERT_ROBUST").is_ok_and(|v| v != "0") && !ok {
        return Err("robustness invariants violated (see the report above)".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
