//! Closed-loop load generator for `paradl-serve`.
//!
//! Spawns a coalescing daemon and a no-coalescing baseline daemon on temp
//! unix sockets (or targets an external daemon via `--connect`), drives
//! them with concurrent ranked queries at several concurrency levels, and
//! writes sustained qps plus p50/p99 latency per level to
//! `BENCH_serve.json`.
//!
//! With `PARADL_ASSERT_SPEEDUP` set, the run fails unless coalescing
//! reaches the required qps multiple over the baseline at concurrency ≥ 8
//! (floor 2.0, or the env var's numeric value).

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::jsonio::Json;
use paradl_core::oracle::{Constraints, PeSweep};
use paradl_core::query::Query;
use paradl_serve::client::{parse_target, Connection};
use paradl_serve::proto::Response;
use paradl_serve::server::{Bind, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCHES: [usize; 2] = [256, 1024];
const TOP_K: usize = 10;
const MAX_PES: usize = 1024;

const USAGE: &str = "\
paradl-loadgen: benchmark a paradl-serve daemon

USAGE:
    paradl-loadgen [OPTIONS]

OPTIONS:
    --quick           short run (levels 2 and 8, ~0.6s each)
    --out PATH        output file (default BENCH_serve.json)
    --connect TARGET  benchmark an external daemon instead of spawning the
                      in-process coalesced/baseline pair (no speedup column)
    --duration-ms N   measurement window per level (default 1500, quick 600)
    --help            print this help

Set PARADL_ASSERT_SPEEDUP=1 (or a numeric floor) to fail the run unless
coalescing beats the baseline by that qps factor at concurrency >= 8.";

struct Args {
    quick: bool,
    out: String,
    connect: Option<String>,
    duration_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: "BENCH_serve.json".to_string(),
        connect: None,
        duration_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--out" => parsed.out = args.next().ok_or("--out needs a value")?,
            "--connect" => parsed.connect = Some(args.next().ok_or("--connect needs a value")?),
            "--duration-ms" => {
                parsed.duration_ms = Some(
                    args.next()
                        .ok_or("--duration-ms needs a value")?
                        .parse()
                        .map_err(|_| "--duration-ms needs an integer".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn workload_query(batch: usize) -> Query {
    // Exhaustive PE sweep: evaluation dominates the request round trip, as
    // it does for any serving workload worth putting a daemon in front of.
    Query::top_k(TOP_K)
        .with_model(paradl_models::resnet50())
        .with_config(TrainingConfig::imagenet(batch))
        .with_cluster(ClusterSpec::paper_system())
        .with_constraints(Constraints {
            max_pes: MAX_PES,
            sweep: PeSweep::Exhaustive,
            ..Constraints::default()
        })
}

/// Per-run aggregation of the `AnswerStats` the server attaches to every
/// answer — the observability that tells us whether coalescing engaged.
#[derive(Default)]
struct StatsAgg {
    answers: u64,
    coalesced_sum: u64,
    cells_sum: u64,
    eval_us_sum: u64,
    queue_us_sum: u64,
    cache_hits: u64,
    // Kernel work counters: how many candidates the server's evaluation
    // kernel costed vs pruned for the answers in this run — the serve-side
    // view of the analytic kernel's pruning rate.
    candidates_evaluated: u64,
    candidates_pruned: u64,
    // Degradation-ladder engagement: answers the server stepped down under
    // pressure instead of shedding. Visible next to shed/expired so the
    // ladder's engagement rate per concurrency level is in the report.
    degraded: u64,
    // Non-success outcomes. Counting these is what keeps shed requests from
    // silently inflating apparent health: a run that sheds half its load is
    // visible in BENCH_serve.json, not just slower.
    shed: u64,
    deadline_expired: u64,
    errors: u64,
}

impl StatsAgg {
    fn absorb(&mut self, stats: &paradl_serve::proto::AnswerStats) {
        self.answers += 1;
        self.coalesced_sum += stats.coalesced as u64;
        self.cells_sum += stats.batch_cells as u64;
        self.eval_us_sum += stats.eval_us;
        self.queue_us_sum += stats.queue_us;
        self.cache_hits += u64::from(stats.cache_hit);
        self.candidates_evaluated += stats.candidates_evaluated as u64;
        self.candidates_pruned += stats.candidates_pruned as u64;
        self.degraded += u64::from(stats.degraded > 0);
    }

    fn merge(&mut self, other: StatsAgg) {
        self.answers += other.answers;
        self.coalesced_sum += other.coalesced_sum;
        self.cells_sum += other.cells_sum;
        self.eval_us_sum += other.eval_us_sum;
        self.queue_us_sum += other.queue_us_sum;
        self.cache_hits += other.cache_hits;
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned += other.candidates_pruned;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.deadline_expired += other.deadline_expired;
        self.errors += other.errors;
    }

    fn mean(&self, sum: u64) -> f64 {
        if self.answers == 0 {
            return f64::NAN;
        }
        sum as f64 / self.answers as f64
    }
}

/// One measurement: `concurrency` closed-loop workers hammer `target` for
/// `window`, cycling through the batch sizes. Returns latencies in µs plus
/// the aggregated server-side stats.
fn drive(
    target: &Bind,
    concurrency: usize,
    window: Duration,
) -> Result<(Vec<u64>, StatsAgg), String> {
    let target = Arc::new(target.clone());
    let stop_at = Instant::now() + window;
    let workers: Vec<_> = (0..concurrency)
        .map(|worker| {
            let target = Arc::clone(&target);
            std::thread::spawn(move || -> Result<(Vec<u64>, StatsAgg), String> {
                let mut connection =
                    Connection::connect(&target).map_err(|e| format!("connect: {e}"))?;
                let mut latencies = Vec::new();
                let mut agg = StatsAgg::default();
                let mut iteration = worker; // stagger the batch cycle per worker
                while Instant::now() < stop_at {
                    let query = workload_query(BATCHES[iteration % BATCHES.len()]);
                    iteration += 1;
                    let start = Instant::now();
                    match connection.query(&query, None).map_err(|e| format!("query: {e}"))? {
                        Response::Answer { stats, .. } => {
                            latencies.push(start.elapsed().as_micros() as u64);
                            agg.absorb(&stats);
                        }
                        Response::Shed => {
                            // Backpressure: count it, brief pause, retry.
                            agg.shed += 1;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Response::DeadlineExpired => agg.deadline_expired += 1,
                        Response::Error { kind, message } => {
                            // An error response mid-benchmark is a real
                            // defect in the workload or the server; count
                            // it and keep driving so the report shows the
                            // rate rather than dying on the first one.
                            agg.errors += 1;
                            eprintln!("worker {worker}: server error ({kind:?}): {message}");
                        }
                        other => return Err(format!("unexpected response {other:?}")),
                    }
                }
                Ok((latencies, agg))
            })
        })
        .collect();
    let mut all = Vec::new();
    let mut agg = StatsAgg::default();
    for handle in workers {
        let (latencies, worker_agg) =
            handle.join().map_err(|_| "worker panicked".to_string())??;
        all.extend(latencies);
        agg.merge(worker_agg);
    }
    Ok((all, agg))
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

struct Measurement {
    requests: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_coalesced: f64,
    mean_eval_us: f64,
    cache_hit_rate: f64,
    candidates_evaluated: u64,
    candidates_pruned: u64,
    degraded: u64,
    shed: u64,
    deadline_expired: u64,
    errors: u64,
}

fn measure(target: &Bind, concurrency: usize, window: Duration) -> Result<Measurement, String> {
    let start = Instant::now();
    let (mut latencies, agg) = drive(target, concurrency, window)?;
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    Ok(Measurement {
        requests: latencies.len(),
        qps: latencies.len() as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
        mean_coalesced: agg.mean(agg.coalesced_sum),
        mean_eval_us: agg.mean(agg.eval_us_sum),
        cache_hit_rate: agg.mean(agg.cache_hits),
        candidates_evaluated: agg.candidates_evaluated,
        candidates_pruned: agg.candidates_pruned,
        degraded: agg.degraded,
        shed: agg.shed,
        deadline_expired: agg.deadline_expired,
        errors: agg.errors,
    })
}

fn measurement_json(m: &Measurement) -> Json {
    Json::obj([
        ("requests", Json::count(m.requests)),
        ("qps", Json::Num(m.qps)),
        ("p50_ms", Json::Num(m.p50_ms)),
        ("p99_ms", Json::Num(m.p99_ms)),
        ("mean_coalesced", Json::Num(m.mean_coalesced)),
        ("mean_eval_us", Json::Num(m.mean_eval_us)),
        ("cache_hit_rate", Json::Num(m.cache_hit_rate)),
        ("candidates_evaluated", Json::count(m.candidates_evaluated as usize)),
        ("candidates_pruned", Json::count(m.candidates_pruned as usize)),
        ("degraded", Json::count(m.degraded as usize)),
        ("shed", Json::count(m.shed as usize)),
        ("deadline_expired", Json::count(m.deadline_expired as usize)),
        ("errors", Json::count(m.errors as usize)),
    ])
}

/// Warm a server's cache so measurements compare steady states, not the
/// first engine build.
fn warm(target: &Bind) -> Result<(), String> {
    let mut connection = Connection::connect(target).map_err(|e| format!("connect: {e}"))?;
    for batch in BATCHES {
        match connection.query(&workload_query(batch), None).map_err(|e| format!("warmup: {e}"))? {
            Response::Answer { .. } => {}
            other => return Err(format!("warmup got {other:?}")),
        }
    }
    Ok(())
}

fn temp_socket(tag: &str) -> Bind {
    Bind::Unix(
        std::env::temp_dir().join(format!("paradl-loadgen-{}-{tag}.sock", std::process::id())),
    )
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let levels: &[usize] = if args.quick { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    let window =
        Duration::from_millis(args.duration_ms.unwrap_or(if args.quick { 600 } else { 1500 }));

    // Either an external target, or the in-process coalesced/baseline pair.
    let mut servers: Vec<Server> = Vec::new();
    let (coalesced_target, baseline_target) = match &args.connect {
        Some(text) => (parse_target(text)?, None),
        None => {
            let coalesced_bind = temp_socket("coalesced");
            let baseline_bind = temp_socket("baseline");
            servers.push(
                Server::start(coalesced_bind.clone(), ServerConfig::default())
                    .map_err(|e| format!("start coalesced server: {e}"))?,
            );
            servers.push(
                Server::start(
                    baseline_bind.clone(),
                    ServerConfig { coalesce: false, cache_entries: 0, ..ServerConfig::default() },
                )
                .map_err(|e| format!("start baseline server: {e}"))?,
            );
            (coalesced_bind, Some(baseline_bind))
        }
    };

    warm(&coalesced_target)?;
    if let Some(baseline) = &baseline_target {
        warm(baseline)?;
    }

    let mut level_rows = Vec::new();
    let mut speedup_at_8plus: f64 = 0.0;
    println!(
        "{:>11}  {:>21}  {:>21}  {:>7}",
        "concurrency", "coalesced qps/p50/p99", "baseline qps/p50/p99", "speedup"
    );
    for &concurrency in levels {
        let coalesced = measure(&coalesced_target, concurrency, window)?;
        let mut fields = vec![
            ("concurrency".to_string(), Json::count(concurrency)),
            ("coalesced".to_string(), measurement_json(&coalesced)),
        ];
        match &baseline_target {
            Some(target) => {
                let baseline = measure(target, concurrency, window)?;
                let speedup = coalesced.qps / baseline.qps;
                if concurrency >= 8 {
                    speedup_at_8plus = speedup_at_8plus.max(speedup);
                }
                println!(
                    "{concurrency:>11}  {:>8.1} {:>5.1} {:>6.1}  {:>8.1} {:>5.1} {:>6.1}  {speedup:>6.2}x  [group {:.1}, eval {:.0}µs vs {:.0}µs, hit {:.0}%]",
                    coalesced.qps, coalesced.p50_ms, coalesced.p99_ms,
                    baseline.qps, baseline.p50_ms, baseline.p99_ms,
                    coalesced.mean_coalesced, coalesced.mean_eval_us,
                    baseline.mean_eval_us, coalesced.cache_hit_rate * 100.0,
                );
                fields.push(("baseline".to_string(), measurement_json(&baseline)));
                fields.push(("speedup".to_string(), Json::Num(speedup)));
            }
            None => {
                println!(
                    "{concurrency:>11}  {:>8.1} {:>5.1} {:>6.1}  {:>21}  {:>7}",
                    coalesced.qps, coalesced.p50_ms, coalesced.p99_ms, "-", "-",
                );
            }
        }
        if coalesced.degraded + coalesced.shed + coalesced.deadline_expired + coalesced.errors > 0 {
            println!(
                "{:>11}  pressure: degraded {} shed {} expired {} errors {}",
                "",
                coalesced.degraded,
                coalesced.shed,
                coalesced.deadline_expired,
                coalesced.errors
            );
        }
        level_rows.push(Json::Obj(fields));
    }

    for server in servers {
        server.shutdown_and_join();
    }

    let report = Json::obj([
        ("benchmark", Json::str("paradl-serve-loadgen")),
        (
            "workload",
            Json::obj([
                ("model", Json::str("ResNet-50")),
                ("batches", Json::Arr(BATCHES.iter().map(|&b| Json::count(b)).collect())),
                ("mode", Json::str("top_k")),
                ("k", Json::count(TOP_K)),
                ("max_pes", Json::count(MAX_PES)),
                ("sweep", Json::str("exhaustive")),
                ("cluster", Json::str("paper")),
            ]),
        ),
        ("duration_ms_per_level", Json::count(window.as_millis() as usize)),
        ("levels", Json::Arr(level_rows)),
    ]);
    let mut rendered = report.render_pretty();
    rendered.push('\n');
    std::fs::write(&args.out, rendered).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("wrote {}", args.out);

    if let Ok(value) = std::env::var("PARADL_ASSERT_SPEEDUP") {
        let floor = value.parse::<f64>().ok().filter(|f| *f > 1.0).unwrap_or(2.0);
        if baseline_target.is_none() {
            return Err("PARADL_ASSERT_SPEEDUP needs the in-process pair (omit --connect)".into());
        }
        if speedup_at_8plus < floor {
            return Err(format!(
                "coalescing speedup {speedup_at_8plus:.2}x at concurrency >= 8 is below the {floor:.1}x floor"
            ));
        }
        println!("speedup floor satisfied: {speedup_at_8plus:.2}x >= {floor:.1}x");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
