//! The `paradl-serve` daemon binary: bind, serve, wait for shutdown.

use paradl_serve::server::{Bind, Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
paradl-serve: serve the ParaDL oracle over a socket

USAGE:
    paradl-serve (--unix PATH | --tcp ADDR) [OPTIONS]

OPTIONS:
    --unix PATH       listen on a unix-domain socket at PATH
    --tcp ADDR        listen on a TCP address (e.g. 127.0.0.1:7700; port 0 picks one)
    --no-coalesce     disable request coalescing and engine caching (baseline mode)
    --no-degrade      answer every query exactly as asked — disable the overload
                      degradation ladder (FullRank -> TopK(10) -> Suggest)
    --queue-cap N     bounded queue depth before shedding (default 1024)
    --cache-cap N     engine-core LRU capacity (default 32; 0 disables)
    --linger-ms N     batching linger in milliseconds (default 1)
    --read-timeout-ms N
                      evict a connection stalled mid-frame for N ms (default 2000)
    --write-timeout-ms N
                      evict a peer that won't drain its socket for N ms (default 5000)
    --help            print this help

Stop the daemon with `paradl-client --connect <target> --shutdown`: queued
queries drain, then the process exits.";

fn parse_args() -> Result<(Bind, ServerConfig), String> {
    let mut bind = None;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--unix" => bind = Some(Bind::Unix(value(&mut args, "--unix")?.into())),
            "--tcp" => bind = Some(Bind::Tcp(value(&mut args, "--tcp")?)),
            "--no-coalesce" => {
                config.coalesce = false;
                config.cache_entries = 0;
            }
            "--no-degrade" => config.degrade = false,
            "--queue-cap" => {
                config.queue_cap = value(&mut args, "--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer".to_string())?;
            }
            "--cache-cap" => {
                config.cache_entries = value(&mut args, "--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap needs an integer".to_string())?;
            }
            "--linger-ms" => {
                let ms: u64 = value(&mut args, "--linger-ms")?
                    .parse()
                    .map_err(|_| "--linger-ms needs an integer".to_string())?;
                config.linger = Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let ms: u64 = value(&mut args, "--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms needs an integer".to_string())?;
                config.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value(&mut args, "--write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms needs an integer".to_string())?;
                config.write_timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let bind = bind.ok_or("one of --unix or --tcp is required")?;
    Ok((bind, config))
}

fn main() -> ExitCode {
    let (bind, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(bind, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("paradl-serve listening on {}", server.bound());
    server.join();
    eprintln!("paradl-serve: shut down cleanly");
    ExitCode::SUCCESS
}
