//! One-shot CLI client for the `paradl-serve` daemon.

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::jsonio::Json;
use paradl_core::oracle::Constraints;
use paradl_core::query::{Query, QueryMode};
use paradl_serve::client::{parse_target, Connection};
use paradl_serve::proto::{Request, Response};
use paradl_serve::resolve::resolve_model;
use paradl_serve::retry::{RetryError, RetryPolicy, RetryingClient};
use std::process::ExitCode;

const USAGE: &str = "\
paradl-client: query a running paradl-serve daemon

USAGE:
    paradl-client --connect TARGET [OPTIONS]
    paradl-client --vet-only [QUERY OPTIONS]

TARGET:
    unix:/path/to.sock | tcp:host:port

OPERATIONS (default: send one query):
    --ping            liveness probe
    --stats           print server counters
    --shutdown        ask the daemon to drain and exit
    --vet-only        validate the query locally (no daemon, no evaluation);
                      prints the rejected field path and reason on failure

QUERY OPTIONS:
    --model NAME      model name (default resnet-50)
    --batch N         global mini-batch (default 256)
    --cluster NAME    paper | workstation (default paper)
    --gpus N          workstation GPU count (default 8)
    --mode MODE       suggest | top-k | full-rank | survey (default top-k)
    --k N             ranking depth for top-k (default 10)
    --pes N           PE count for survey mode (default 64)
    --max-pes N       PE budget constraint (default 1024)
    --deadline-ms N   abandon the query after N ms of queueing
    --attempts N      retry budget for shed/expired/transport outcomes
                      (default 8; 1 disables retrying)
    --json            print the raw response JSON instead of a summary";

enum Op {
    Query,
    Ping,
    Stats,
    Shutdown,
}

struct Args {
    target: String,
    op: Op,
    model: String,
    batch: usize,
    cluster: String,
    gpus: usize,
    mode: String,
    k: usize,
    pes: usize,
    max_pes: usize,
    deadline_ms: Option<u64>,
    attempts: u32,
    json: bool,
    vet_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        target: String::new(),
        op: Op::Query,
        model: "resnet-50".to_string(),
        batch: 256,
        cluster: "paper".to_string(),
        gpus: 8,
        mode: "top-k".to_string(),
        k: 10,
        pes: 64,
        max_pes: 1024,
        deadline_ms: None,
        attempts: 8,
        json: false,
        vet_only: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, String> {
        value(args, flag)?.parse().map_err(|_| format!("{flag} needs an integer"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => parsed.target = value(&mut args, "--connect")?,
            "--ping" => parsed.op = Op::Ping,
            "--stats" => parsed.op = Op::Stats,
            "--shutdown" => parsed.op = Op::Shutdown,
            "--model" => parsed.model = value(&mut args, "--model")?,
            "--batch" => parsed.batch = number(&mut args, "--batch")?,
            "--cluster" => parsed.cluster = value(&mut args, "--cluster")?,
            "--gpus" => parsed.gpus = number(&mut args, "--gpus")?,
            "--mode" => parsed.mode = value(&mut args, "--mode")?,
            "--k" => parsed.k = number(&mut args, "--k")?,
            "--pes" => parsed.pes = number(&mut args, "--pes")?,
            "--max-pes" => parsed.max_pes = number(&mut args, "--max-pes")?,
            "--deadline-ms" => {
                parsed.deadline_ms = Some(number(&mut args, "--deadline-ms")? as u64)
            }
            "--attempts" => parsed.attempts = (number(&mut args, "--attempts")? as u32).max(1),
            "--json" => parsed.json = true,
            "--vet-only" => parsed.vet_only = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if parsed.target.is_empty() && !parsed.vet_only {
        return Err("--connect is required".to_string());
    }
    Ok(parsed)
}

fn build_query(args: &Args) -> Result<Query, String> {
    let model =
        resolve_model(&args.model).ok_or_else(|| format!("unknown model {:?}", args.model))?;
    let config = if model.name.starts_with("CosmoFlow") {
        TrainingConfig::cosmoflow(args.batch)
    } else {
        TrainingConfig::imagenet(args.batch)
    };
    let cluster = match args.cluster.as_str() {
        "paper" => ClusterSpec::paper_system(),
        "workstation" => ClusterSpec::workstation(args.gpus),
        other => return Err(format!("unknown cluster {other:?} (use paper or workstation)")),
    };
    let mode = match args.mode.as_str() {
        "suggest" => QueryMode::Suggest,
        "top-k" | "top_k" => QueryMode::TopK(args.k),
        "full-rank" | "full_rank" => QueryMode::FullRank,
        "survey" => QueryMode::Survey { pes: args.pes },
        other => return Err(format!("unknown mode {other:?}")),
    };
    Ok(Query::default()
        .with_model(model)
        .with_config(config)
        .with_cluster(cluster)
        .with_constraints(Constraints { max_pes: args.max_pes, ..Constraints::default() })
        .with_mode(mode))
}

fn first_line(p: &Json) -> String {
    let strategy = p.get("strategy").and_then(Json::string).unwrap_or("?");
    let time = p.get("epoch_time").and_then(Json::number).unwrap_or(f64::NAN);
    let mem = p.get("memory_per_pe").and_then(Json::number).unwrap_or(f64::NAN);
    format!("{strategy}  epoch {time:.3}s  mem/PE {:.2} GiB", mem / (1u64 << 30) as f64)
}

fn summarize(answer: &Json) {
    match answer.get("kind").and_then(Json::string) {
        Some("suggestion") => match answer.get("best") {
            Some(best) if !best.is_null() => println!("suggestion: {}", first_line(best)),
            _ => println!("suggestion: no feasible strategy"),
        },
        Some("ranked") => {
            let ranked = answer.get("ranked").and_then(Json::array).unwrap_or(&[]);
            let enumerated = answer.get("enumerated").and_then(Json::usize).unwrap_or(0);
            println!("ranked {} candidates (enumerated {enumerated}):", ranked.len());
            for (i, p) in ranked.iter().take(10).enumerate() {
                println!("  {:>2}. {}", i + 1, first_line(p));
            }
        }
        Some("survey") => {
            let projections = answer.get("projections").and_then(Json::array).unwrap_or(&[]);
            println!("survey ({} families):", projections.len());
            for p in projections {
                let feasible = p.get("fits_memory").and_then(Json::boolean).unwrap_or(false)
                    && p.get("within_scaling_limit").and_then(Json::boolean).unwrap_or(false);
                let marker = if feasible { " " } else { "!" };
                println!("  {marker} {}", first_line(p));
            }
        }
        _ => println!("{}", answer.render_pretty()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.vet_only {
        // Local validation only: build the query and run the same vet pass
        // the daemon applies at enqueue, without connecting or evaluating.
        let query = match build_query(&args) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match query.vet() {
            Ok(()) => {
                println!("vet ok: the daemon would accept this query");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "vet rejected: field={} reason={} (retryable={})",
                    e.field, e.reason, e.retryable
                );
                ExitCode::FAILURE
            }
        };
    }
    let target = match parse_target(&args.target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = match args.op {
        Op::Ping => Request::Ping,
        Op::Stats => Request::Stats,
        Op::Shutdown => Request::Shutdown,
        Op::Query => match build_query(&args) {
            Ok(query) => Request::Query { query, deadline_ms: args.deadline_ms },
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Queries go through the retrying client (shed/expired/transport
    // outcomes are idempotent and worth resending); control operations stay
    // on a raw connection — retrying a shutdown against a daemon that is
    // already draining would just be noise.
    let response = if matches!(args.op, Op::Query) {
        let policy = RetryPolicy { max_attempts: args.attempts, ..RetryPolicy::default() };
        let mut client = RetryingClient::new(target, policy, 0x9a7ad1);
        match client.roundtrip(&request) {
            Ok(r) => r,
            Err(RetryError::Fatal(r)) => r,
            Err(e @ RetryError::Exhausted { .. }) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut connection = match Connection::connect(&target) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to {}: {e}", args.target);
                return ExitCode::FAILURE;
            }
        };
        match connection.roundtrip(&request) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if args.json {
        println!("{}", response.to_json().render_pretty());
        return ExitCode::SUCCESS;
    }
    match response {
        Response::Answer { answer, stats } => {
            summarize(&answer);
            println!(
                "[cache_hit={} coalesced={} cells={} queue={}µs eval={}µs degraded={}]",
                stats.cache_hit,
                stats.coalesced,
                stats.batch_cells,
                stats.queue_us,
                stats.eval_us,
                stats.degraded
            );
            ExitCode::SUCCESS
        }
        Response::Pong => {
            println!("pong");
            ExitCode::SUCCESS
        }
        Response::ServerStats(stats) => {
            println!("{}", stats.render_pretty());
            ExitCode::SUCCESS
        }
        Response::ShuttingDown => {
            println!("daemon is shutting down");
            ExitCode::SUCCESS
        }
        Response::Shed => {
            eprintln!("request shed: server queue is full, retry later");
            ExitCode::FAILURE
        }
        Response::DeadlineExpired => {
            eprintln!("deadline expired before the query was evaluated");
            ExitCode::FAILURE
        }
        Response::Error { kind, message } => {
            eprintln!("server error ({kind:?}): {message}");
            ExitCode::FAILURE
        }
    }
}
