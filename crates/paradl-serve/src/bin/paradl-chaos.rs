//! Chaos soak for `paradl-serve`: retrying clients vs a fault-injected
//! daemon.
//!
//! Spawns one daemon whose accepted connections pass through a seeded
//! server-side [`FaultSchedule`], drives it with N retrying clients whose
//! *own* connections carry seeded client-side fault plans, and escalates
//! the fault mix phase by phase (mild → moderate → severe). Throughout:
//!
//! * the daemon must survive the entire schedule (final ping and clean
//!   queries answered after the faults are switched off);
//! * every *successful* answer must be byte-identical to the local
//!   `Query::run` result — the frame checksum turns in-flight corruption
//!   into a retryable transport error, so nothing silently wrong gets
//!   through;
//! * eventual-success availability must clear a floor once retries are
//!   spent (`PARADL_ASSERT_CHAOS=1`, default floor 0.99);
//! * the fault schedule must be reproducible: the same seed yields the
//!   same decision digest ([`fault::schedule_digest`]).
//!
//! Results go to `BENCH_chaos.json`.

use paradl_core::cluster::ClusterSpec;
use paradl_core::config::TrainingConfig;
use paradl_core::jsonio::Json;
use paradl_core::oracle::Constraints;
use paradl_core::query::{Query, QueryMode};
use paradl_serve::client::Connection;
use paradl_serve::fault::{self, FaultConfig, FaultSchedule, FaultTrace};
use paradl_serve::proto::{Request, Response};
use paradl_serve::retry::{RetryPolicy, RetryingClient};
use paradl_serve::server::{Bind, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
paradl-chaos: soak a paradl-serve daemon under deterministic fault injection

USAGE:
    paradl-chaos [OPTIONS]

OPTIONS:
    --quick         short soak (fewer clients and requests; used by CI)
    --seed N        base seed for every fault plan (default 804869)
    --clients N     retrying clients per phase (default 4, quick 3)
    --requests N    requests per client per phase (default 40, quick 12)
    --out PATH      output file (default BENCH_chaos.json)
    --help          print this help

Set PARADL_ASSERT_CHAOS=1 (or a numeric availability floor in [0,1]) to
fail the run unless the daemon survives, zero corrupted answers reach a
client, the fault schedule reproduces from its seed, and eventual-success
availability clears the floor (default 0.99).";

struct Args {
    seed: u64,
    clients: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut seed = 804869u64;
    let mut clients = None;
    let mut requests = None;
    let mut out = "BENCH_chaos.json".to_string();
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, String> {
        args.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} needs an integer"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => seed = number(&mut args, "--seed")? as u64,
            "--clients" => clients = Some(number(&mut args, "--clients")?),
            "--requests" => requests = Some(number(&mut args, "--requests")?),
            "--out" => out = args.next().ok_or("--out needs a value")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        seed,
        clients: clients.unwrap_or(if quick { 3 } else { 4 }),
        requests: requests.unwrap_or(if quick { 12 } else { 40 }),
        out,
    })
}

/// The soak workload: cheap queries covering all three answer shapes and
/// both batcher paths (ranked → coalescing grid, suggest/survey → single).
fn workload() -> Vec<Query> {
    let base = |mode: QueryMode, batch: usize| {
        Query::suggest()
            .with_mode(mode)
            .with_model(paradl_models::alexnet())
            .with_config(TrainingConfig::imagenet(batch))
            .with_cluster(ClusterSpec::workstation(8))
            .with_constraints(Constraints { max_pes: 256, ..Constraints::default() })
    };
    vec![
        base(QueryMode::TopK(5), 256),
        base(QueryMode::TopK(5), 512),
        base(QueryMode::Suggest, 256),
        base(QueryMode::Survey { pes: 16 }, 512),
    ]
}

struct PhaseOutcome {
    name: &'static str,
    requests: u64,
    succeeded: u64,
    failed: u64,
    corrupted: u64,
    retries: u64,
    reconnects: u64,
    client_trace: FaultTrace,
    digest: u64,
    digest_reproduced: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &'static str,
    config: FaultConfig,
    bind: &Bind,
    schedule: &FaultSchedule,
    queries: &[Query],
    local: &[String],
    args: &Args,
    phase_index: u64,
) -> PhaseOutcome {
    schedule.set(config);
    // Reproducibility proof: the decision stream a plan makes is a pure
    // function of (config, seed, ops) — computing the digest twice from the
    // same inputs must agree.
    let digest = fault::schedule_digest(config, args.seed ^ phase_index, 512);
    let digest_reproduced = digest == fault::schedule_digest(config, args.seed ^ phase_index, 512);

    let workers: Vec<_> = (0..args.clients)
        .map(|worker| {
            let bind = bind.clone();
            let queries = queries.to_vec();
            let local = local.to_vec();
            let requests = args.requests;
            // Generous attempts: under the severe mix one request can burn
            // several connections before a round trip survives intact.
            let policy = RetryPolicy {
                max_attempts: 16,
                base_backoff: Duration::from_micros(500),
                max_backoff: Duration::from_millis(20),
            };
            let client_seed = args.seed ^ (phase_index << 32) ^ (worker as u64 * 7919);
            std::thread::spawn(move || {
                let mut client = RetryingClient::new(bind, policy, client_seed)
                    .with_faults(config, client_seed.wrapping_add(1));
                let mut succeeded = 0u64;
                let mut failed = 0u64;
                let mut corrupted = 0u64;
                for i in 0..requests {
                    let pick = (worker + i) % queries.len();
                    match client.query(&queries[pick], None) {
                        Ok(Response::Answer { answer, .. }) => {
                            if answer.render() == local[pick] {
                                succeeded += 1;
                            } else {
                                corrupted += 1;
                            }
                        }
                        Ok(_) | Err(_) => failed += 1,
                    }
                }
                (succeeded, failed, corrupted, client.stats(), client.fault_trace())
            })
        })
        .collect();

    let mut outcome = PhaseOutcome {
        name,
        requests: (args.clients * args.requests) as u64,
        succeeded: 0,
        failed: 0,
        corrupted: 0,
        retries: 0,
        reconnects: 0,
        client_trace: FaultTrace::default(),
        digest,
        digest_reproduced,
    };
    for worker in workers {
        let (succeeded, failed, corrupted, stats, trace) =
            worker.join().expect("chaos worker panicked");
        outcome.succeeded += succeeded;
        outcome.failed += failed;
        outcome.corrupted += corrupted;
        outcome.retries += stats.retries();
        outcome.reconnects += stats.reconnects;
        outcome.client_trace.absorb(&trace);
    }
    outcome
}

fn trace_json(t: &FaultTrace) -> Json {
    Json::obj([
        ("reads", Json::count(t.reads as usize)),
        ("writes", Json::count(t.writes as usize)),
        ("resets", Json::count(t.resets as usize)),
        ("truncated", Json::count(t.truncated as usize)),
        ("corrupted_bytes", Json::count(t.corrupted as usize)),
        ("stalls", Json::count(t.stalls as usize)),
        ("delays", Json::count(t.delays as usize)),
    ])
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let queries = workload();
    println!("precomputing {} local reference answers…", queries.len());
    let local: Vec<String> = queries
        .iter()
        .map(|q| q.run().map(|a| a.to_json().render()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("local oracle: {e}"))?;

    let bind =
        Bind::Unix(std::env::temp_dir().join(format!("paradl-chaos-{}.sock", std::process::id())));
    let schedule = Arc::new(FaultSchedule::new(args.seed));
    let config = ServerConfig {
        // Short eviction clock: client-side truncated requests leave the
        // server parked mid-frame, and the soak should actually exercise
        // eviction rather than hold threads for the production default.
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        faults: Some(Arc::clone(&schedule)),
        ..ServerConfig::default()
    };
    let server = Server::start(bind.clone(), config).map_err(|e| format!("start daemon: {e}"))?;

    let phases = [
        ("mild", FaultConfig::mild()),
        ("moderate", FaultConfig::moderate()),
        ("severe", FaultConfig::severe()),
    ];
    let mut outcomes = Vec::new();
    for (index, (name, fault_config)) in phases.iter().enumerate() {
        println!("phase {name}: {} clients x {} requests…", args.clients, args.requests);
        let outcome = run_phase(
            name,
            *fault_config,
            &bind,
            &schedule,
            &queries,
            &local,
            &args,
            index as u64 + 1,
        );
        println!(
            "  {}/{} eventually succeeded, {} corrupted, {} retries, {} reconnects, {} faults injected client-side",
            outcome.succeeded,
            outcome.requests,
            outcome.corrupted,
            outcome.retries,
            outcome.reconnects,
            outcome.client_trace.injected(),
        );
        outcomes.push(outcome);
    }

    // Calm the storm, then verify the daemon came through: alive, stats
    // reachable, and still byte-exact on every workload query.
    schedule.set(FaultConfig::off());
    let mut survived = true;
    let mut final_corrupted = 0u64;
    let mut server_stats = Json::obj([] as [(&str, Json); 0]);
    match Connection::connect(&bind) {
        Ok(mut connection) => {
            survived &= matches!(connection.roundtrip(&Request::Ping), Ok(Response::Pong));
            for (q, expected) in queries.iter().zip(&local) {
                match connection.query(q, None) {
                    Ok(Response::Answer { answer, .. }) => {
                        if answer.render() != *expected {
                            final_corrupted += 1;
                        }
                    }
                    _ => survived = false,
                }
            }
            if let Ok(Response::ServerStats(stats)) = connection.roundtrip(&Request::Stats) {
                server_stats = stats;
            } else {
                survived = false;
            }
        }
        Err(_) => survived = false,
    }

    let requests: u64 = outcomes.iter().map(|o| o.requests).sum();
    let succeeded: u64 = outcomes.iter().map(|o| o.succeeded).sum();
    let corrupted: u64 = outcomes.iter().map(|o| o.corrupted).sum::<u64>() + final_corrupted;
    let retries: u64 = outcomes.iter().map(|o| o.retries).sum();
    let availability = if requests == 0 { 1.0 } else { succeeded as f64 / requests as f64 };
    let reproducible = outcomes.iter().all(|o| o.digest_reproduced);

    let evictions = server_stats.get("evictions").and_then(Json::usize).unwrap_or(0);
    let panics_contained = server_stats.get("panics_contained").and_then(Json::usize).unwrap_or(0);
    let batcher_restarts = server_stats.get("batcher_restarts").and_then(Json::usize).unwrap_or(0);

    println!(
        "soak done: availability {availability:.4} ({succeeded}/{requests}), {corrupted} corrupted, \
         {retries} retries, server evicted {evictions}, contained {panics_contained} panics, \
         restarted batcher {batcher_restarts}x, survived={survived}"
    );

    let report = Json::obj([
        ("benchmark", Json::str("paradl-serve-chaos")),
        ("seed", Json::count(args.seed as usize)),
        (
            "workload",
            Json::obj([
                ("model", Json::str("AlexNet")),
                ("cluster", Json::str("workstation-8")),
                ("max_pes", Json::count(256)),
                ("distinct_queries", Json::count(queries.len())),
            ]),
        ),
        ("clients", Json::count(args.clients)),
        ("requests_per_client_per_phase", Json::count(args.requests)),
        (
            "phases",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("name", Json::str(o.name)),
                            ("requests", Json::count(o.requests as usize)),
                            ("succeeded", Json::count(o.succeeded as usize)),
                            ("failed", Json::count(o.failed as usize)),
                            ("corrupted", Json::count(o.corrupted as usize)),
                            ("retries", Json::count(o.retries as usize)),
                            ("reconnects", Json::count(o.reconnects as usize)),
                            ("client_faults", trace_json(&o.client_trace)),
                            ("schedule_digest", Json::str(format!("{:016x}", o.digest))),
                            ("digest_reproduced", Json::Bool(o.digest_reproduced)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("availability", Json::Num(availability)),
        ("corrupted_answers", Json::count(corrupted as usize)),
        ("total_retries", Json::count(retries as usize)),
        ("survived", Json::Bool(survived)),
        ("reproducible", Json::Bool(reproducible)),
        ("server", server_stats),
    ]);
    let mut rendered = report.render_pretty();
    rendered.push('\n');
    std::fs::write(&args.out, rendered).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("wrote {}", args.out);

    server.shutdown_and_join();

    if let Ok(value) = std::env::var("PARADL_ASSERT_CHAOS") {
        // "1" means "on, default floor"; any other value in [0,1] IS the floor.
        let floor = match value.as_str() {
            "1" | "true" | "yes" | "on" => 0.99,
            other => other.parse::<f64>().ok().filter(|f| (0.0..=1.0).contains(f)).unwrap_or(0.99),
        };
        if !survived {
            return Err("daemon did not survive the fault schedule".into());
        }
        if corrupted > 0 {
            return Err(format!("{corrupted} corrupted answers reached a client"));
        }
        if !reproducible {
            return Err("fault schedule digest failed to reproduce under the same seed".into());
        }
        if availability < floor {
            return Err(format!("availability {availability:.4} is below the {floor:.2} floor"));
        }
        println!(
            "chaos floor satisfied: availability {availability:.4} >= {floor:.2}, zero corruption, reproducible"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
