//! The wire protocol: length-prefixed, checksummed JSON frames carrying
//! unified queries.
//!
//! A frame is a 12-byte header — a 4-byte big-endian `u32` payload length
//! followed by an 8-byte big-endian FNV-1a checksum of the payload — then
//! that many bytes of UTF-8 JSON (rendered compactly by
//! `paradl_core::jsonio`). The checksum is what turns in-flight byte
//! corruption into a *detected* transport error (connection dropped, client
//! retries) instead of a silently different answer; the chaos suite's
//! zero-corruption floor rests on it. The request schema is a thin envelope
//! around [`Query::to_json`]; the response envelope carries the
//! [`paradl_core::query::QueryAnswer`] JSON verbatim, which is what makes
//! served answers byte-comparable to local ones.
//!
//! Everything on the daemon's input path returns `Result` rather than
//! panicking: a malformed frame costs the sender an error response (or, for
//! framing-level damage, the connection), never the daemon. Error responses
//! carry an [`ErrorKind`] so clients can tell retryable transport damage
//! from fatal request problems.

use paradl_core::jsonio::Json;
use paradl_core::model::Model;
use paradl_core::query::Query;
use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload, in bytes (16 MiB). A full-rank
/// answer over a large budget can be big, but nothing legitimate approaches
/// this; length prefixes above it are treated as protocol damage.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Size of the frame header: 4-byte length + 8-byte payload checksum.
pub const HEADER_LEN: usize = 12;

/// FNV-1a 64-bit hash of `bytes` — the frame payload checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The outcome of one [`read_frame`] attempt on a polled stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timed out before the first byte of a frame — nothing was
    /// consumed, the stream is still synchronized. Poll again.
    Idle,
    /// The peer closed the connection cleanly between frames.
    Eof,
}

enum ReadFull {
    Done,
    IdleAtStart,
    EofAtStart,
}

fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    idle_ok: bool,
    keep_going: &mut impl FnMut() -> bool,
) -> io::Result<ReadFull> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && idle_ok {
                    return Ok(ReadFull::EofAtStart);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if filled == 0 && idle_ok {
                    return Ok(ReadFull::IdleAtStart);
                }
                // Mid-frame: keep polling while the caller wants to live.
                if !keep_going() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "shutdown while reading a frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFull::Done)
}

/// Reads one frame from `r`, tolerating read timeouts.
///
/// A timeout before the first header byte returns [`FrameRead::Idle`] (the
/// stream is untouched); a timeout *mid-frame* retries as long as
/// `keep_going()` holds, then errors. A length prefix above `max`, or a
/// payload whose checksum does not match the header, is an `InvalidData`
/// error — the stream cannot be resynchronized after either.
pub fn read_frame(
    r: &mut impl Read,
    max: usize,
    mut keep_going: impl FnMut() -> bool,
) -> io::Result<FrameRead> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header, true, &mut keep_going)? {
        ReadFull::Done => {}
        ReadFull::IdleAtStart => return Ok(FrameRead::Idle),
        ReadFull::EofAtStart => return Ok(FrameRead::Eof),
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
    let expected = u64::from_be_bytes(header[4..].try_into().expect("8-byte slice"));
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false, &mut keep_going)?;
    let actual = checksum(&payload);
    if actual != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch (header {expected:#018x}, payload {actual:#018x})"),
        ));
    }
    Ok(FrameRead::Frame(payload))
}

/// Writes one frame (header + payload) and flushes. Refuses payloads above
/// `max` so an oversized response surfaces as an error on the producing
/// side instead of protocol damage on the consuming one.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> io::Result<()> {
    if payload.len() > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {max}-byte cap", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[4..].copy_from_slice(&checksum(payload).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Request / response envelopes.
// ---------------------------------------------------------------------------

/// A client request: one oracle query, or a control operation.
// A Request exists only for the instant between frame decode and dispatch,
// so the query variant's size is not worth a Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer a unified query, optionally abandoning it after `deadline_ms`
    /// milliseconds of queueing (measured from receipt).
    Query {
        /// The query (model by name, config and cluster inline).
        query: Query,
        /// Relative deadline in milliseconds; `None` waits indefinitely.
        deadline_ms: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Fetch server-side counters and cache statistics.
    Stats,
    /// Begin a graceful shutdown: queued queries drain, new ones are
    /// refused.
    Shutdown,
}

impl Request {
    /// Serializes the request envelope. Errors when a query is missing its
    /// workload (model/config/cluster), mirroring [`Query::to_json`].
    pub fn to_json(&self) -> Result<Json, String> {
        Ok(match self {
            Request::Query { query, deadline_ms } => {
                let mut fields = vec![
                    ("op".to_string(), Json::str("query")),
                    ("query".to_string(), query.to_json()?),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_string(), Json::count(*ms as usize)));
                }
                Json::Obj(fields)
            }
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        })
    }

    /// Parses a request envelope; `resolve` maps model names to models
    /// (the daemon passes [`crate::resolve::resolve_model`]). Never panics.
    pub fn from_json(
        json: &Json,
        resolve: &dyn Fn(&str) -> Option<Model>,
    ) -> Result<Request, String> {
        match json.get("op").and_then(Json::string) {
            Some("query") => {
                let body = json.get("query").ok_or("query op missing query body")?;
                let query = Query::from_json(body, resolve)?;
                let deadline_ms = match json.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        Some(v.usize().ok_or("deadline_ms must be a non-negative integer")? as u64)
                    }
                };
                Ok(Request::Query { query, deadline_ms })
            }
            Some("ping") => Ok(Request::Ping),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown op {other:?}")),
            None => Err("request missing op".to_string()),
        }
    }
}

/// Per-answer serving statistics, reported alongside every `ok` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnswerStats {
    /// Whether the engine core for this query's validity class was already
    /// cached when the batch was dispatched.
    pub cache_hit: bool,
    /// How many in-flight requests shared the batch this answer came from
    /// (1 = no coalescing happened).
    pub coalesced: usize,
    /// How many distinct grid cells the shared sweep evaluated.
    pub batch_cells: usize,
    /// Time the request spent queued before evaluation began, in µs.
    pub queue_us: u64,
    /// Time the (possibly shared) evaluation took, in µs.
    pub eval_us: u64,
    /// How many rungs of the degradation ladder the server stepped this
    /// query down under overload (0 = answered at the requested depth,
    /// 1 = ranked depth capped at top-10, 2 = downgraded to a suggestion).
    pub degraded: usize,
    /// How many candidates the evaluation kernel actually costed for this
    /// answer's cell (enumerated minus every pruning class). Zero for
    /// answer kinds that carry no search report.
    pub candidates_evaluated: usize,
    /// How many enumerated candidates were pruned before costing (memory +
    /// static dominance + dynamic bound). Zero for answer kinds that carry
    /// no search report.
    pub candidates_pruned: usize,
}

impl AnswerStats {
    fn to_json(self) -> Json {
        Json::obj([
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("coalesced", Json::count(self.coalesced)),
            ("batch_cells", Json::count(self.batch_cells)),
            ("queue_us", Json::count(self.queue_us as usize)),
            ("eval_us", Json::count(self.eval_us as usize)),
            ("degraded", Json::count(self.degraded)),
            ("candidates_evaluated", Json::count(self.candidates_evaluated)),
            ("candidates_pruned", Json::count(self.candidates_pruned)),
        ])
    }

    fn from_json(json: &Json) -> Result<AnswerStats, String> {
        let field =
            |k: &str| json.get(k).and_then(Json::usize).ok_or_else(|| format!("stats missing {k}"));
        Ok(AnswerStats {
            cache_hit: json
                .get("cache_hit")
                .and_then(Json::boolean)
                .ok_or("stats missing cache_hit")?,
            coalesced: field("coalesced")?,
            batch_cells: field("batch_cells")?,
            queue_us: field("queue_us")? as u64,
            eval_us: field("eval_us")? as u64,
            degraded: field("degraded")?,
            candidates_evaluated: field("candidates_evaluated")?,
            candidates_pruned: field("candidates_pruned")?,
        })
    }
}

/// What class of failure an error response describes. The split that
/// matters operationally is [`ErrorKind::retryable`]: `Protocol` means the
/// *bytes* were damaged (the transport likely mangled an otherwise-fine
/// request, and nothing was evaluated), so resending is safe and likely to
/// succeed; everything else means the request itself is the problem and a
/// retry would only repeat the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame payload didn't decode (non-UTF-8, malformed JSON, bad
    /// envelope). Nothing was evaluated; a resend is idempotent.
    Protocol,
    /// The request decoded but is unanswerable (unknown op or model,
    /// invalid config or cluster). Retrying the same request cannot help.
    BadRequest,
    /// The answer exceeded the frame cap. Deterministic; not retryable.
    TooLarge,
    /// Evaluation failed inside the server (a contained panic, a dropped
    /// reply channel). The request is quarantined; not retryable, because
    /// the same input would panic again.
    Internal,
}

impl ErrorKind {
    /// Whether a client may safely resend the identical request.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorKind::Protocol)
    }

    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Result<ErrorKind, String> {
        match s {
            "protocol" => Ok(ErrorKind::Protocol),
            "bad_request" => Ok(ErrorKind::BadRequest),
            "too_large" => Ok(ErrorKind::TooLarge),
            "internal" => Ok(ErrorKind::Internal),
            other => Err(format!("unknown error kind {other:?}")),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query's answer (`QueryAnswer::to_json` verbatim) plus serving
    /// statistics.
    Answer {
        /// The answer document, byte-identical to a local
        /// `QueryAnswer::to_json()` for the same query.
        answer: Json,
        /// How the answer was produced.
        stats: AnswerStats,
    },
    /// The request could not be answered; `kind` says whether the fault was
    /// in the bytes (retryable) or the request (fatal).
    Error {
        /// Failure class — drives the client's retry decision.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The bounded queue was full; the request was not evaluated. Back off
    /// and retry.
    Shed,
    /// The request's deadline expired while it was queued; it was not
    /// evaluated.
    DeadlineExpired,
    /// The daemon is shutting down and no longer accepts queries.
    ShuttingDown,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Stats`]: the server's counter document.
    ServerStats(Json),
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error { kind, message: message.into() }
    }

    /// Whether a client may safely resend the identical request after this
    /// response: queue shed and deadline expiry never evaluated anything,
    /// and protocol errors mean the bytes (not the request) were bad.
    pub fn retryable(&self) -> bool {
        match self {
            Response::Shed | Response::DeadlineExpired => true,
            Response::Error { kind, .. } => kind.retryable(),
            _ => false,
        }
    }

    /// Serializes the response envelope.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Answer { answer, stats } => Json::obj([
                ("status", Json::str("ok")),
                ("answer", answer.clone()),
                ("stats", stats.to_json()),
            ]),
            Response::Error { kind, message } => Json::obj([
                ("status", Json::str("error")),
                ("kind", Json::str(kind.as_str())),
                ("message", Json::str(message)),
            ]),
            Response::Shed => Json::obj([("status", Json::str("shed"))]),
            Response::DeadlineExpired => Json::obj([("status", Json::str("deadline"))]),
            Response::ShuttingDown => Json::obj([("status", Json::str("shutting_down"))]),
            Response::Pong => Json::obj([("status", Json::str("pong"))]),
            Response::ServerStats(stats) => {
                Json::obj([("status", Json::str("stats")), ("stats", stats.clone())])
            }
        }
    }

    /// Parses a response envelope. Never panics.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        match json.get("status").and_then(Json::string) {
            Some("ok") => Ok(Response::Answer {
                answer: json.get("answer").ok_or("ok response missing answer")?.clone(),
                stats: AnswerStats::from_json(
                    json.get("stats").ok_or("ok response missing stats")?,
                )?,
            }),
            Some("error") => Ok(Response::Error {
                kind: ErrorKind::parse(
                    json.get("kind").and_then(Json::string).ok_or("error response missing kind")?,
                )?,
                message: json
                    .get("message")
                    .and_then(Json::string)
                    .ok_or("error response missing message")?
                    .to_string(),
            }),
            Some("shed") => Ok(Response::Shed),
            Some("deadline") => Ok(Response::DeadlineExpired),
            Some("shutting_down") => Ok(Response::ShuttingDown),
            Some("pong") => Ok(Response::Pong),
            Some("stats") => Ok(Response::ServerStats(
                json.get("stats").ok_or("stats response missing stats")?.clone(),
            )),
            Some(other) => Err(format!("unknown status {other:?}")),
            None => Err("response missing status".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::cluster::ClusterSpec;
    use paradl_core::config::TrainingConfig;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, MAX_FRAME, || true).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_FRAME, || true).unwrap() {
            FrameRead::Frame(p) => assert!(p.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_FRAME, || true).unwrap() {
            FrameRead::Eof => {}
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        // Oversized length prefix (full 12-byte header).
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1024u32).to_be_bytes());
        buf.extend_from_slice(&0u64.to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut r = Cursor::new(buf.clone());
        let err = read_frame(&mut r, 16, || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated payload.
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r, MAX_FRAME, || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Oversized write is refused on the sending side too.
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &[0u8; 32], 16).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn corrupted_frames_fail_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"an important payload", MAX_FRAME).unwrap();
        // Flip one payload byte: the checksum in the header no longer
        // matches, so the read must fail with InvalidData — this is the
        // property that turns in-flight corruption into a retryable
        // transport error instead of a silently different answer.
        for at in HEADER_LEN..buf.len() {
            let mut damaged = buf.clone();
            damaged[at] ^= 0x01;
            let err = read_frame(&mut Cursor::new(damaged), MAX_FRAME, || true).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {at}");
        }
        // A flipped checksum byte is equally fatal.
        let mut damaged = buf.clone();
        damaged[7] ^= 0x80;
        let err = read_frame(&mut Cursor::new(damaged), MAX_FRAME, || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The pristine frame still reads fine.
        match read_frame(&mut Cursor::new(buf), MAX_FRAME, || true).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"an important payload"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    fn sample_query() -> Query {
        Query::top_k(5)
            .with_model(paradl_models::alexnet())
            .with_config(TrainingConfig::imagenet(256))
            .with_cluster(ClusterSpec::workstation(8))
    }

    #[test]
    fn request_envelopes_round_trip() {
        let resolve = |name: &str| crate::resolve::resolve_model(name);
        for request in [
            Request::Query { query: sample_query(), deadline_ms: Some(250) },
            Request::Query { query: sample_query(), deadline_ms: None },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
        ] {
            let rendered = request.to_json().unwrap().render();
            let back = Request::from_json(&Json::parse(&rendered).unwrap(), &resolve).unwrap();
            assert_eq!(back, request);
        }
        assert!(Request::from_json(&Json::parse("{}").unwrap(), &resolve).is_err());
        assert!(Request::from_json(&Json::parse(r#"{"op":"explode"}"#).unwrap(), &resolve).is_err());
    }

    #[test]
    fn response_envelopes_round_trip() {
        let stats = AnswerStats {
            cache_hit: true,
            coalesced: 4,
            batch_cells: 2,
            queue_us: 120,
            eval_us: 4500,
            degraded: 1,
            candidates_evaluated: 1234,
            candidates_pruned: 567,
        };
        for response in [
            Response::Answer { answer: Json::obj([("kind", Json::str("ranked"))]), stats },
            Response::error(ErrorKind::Protocol, "mangled"),
            Response::error(ErrorKind::BadRequest, "nope"),
            Response::error(ErrorKind::TooLarge, "answer over the frame cap"),
            Response::error(ErrorKind::Internal, "evaluation panicked"),
            Response::Shed,
            Response::DeadlineExpired,
            Response::ShuttingDown,
            Response::Pong,
            Response::ServerStats(Json::obj([("served", Json::count(7))])),
        ] {
            let rendered = response.to_json().render();
            let back = Response::from_json(&Json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(back, response);
        }
        assert!(Response::from_json(&Json::parse(r#"{"status":"??"}"#).unwrap()).is_err());
    }

    #[test]
    fn only_transport_level_outcomes_are_retryable() {
        assert!(Response::Shed.retryable());
        assert!(Response::DeadlineExpired.retryable());
        assert!(Response::error(ErrorKind::Protocol, "x").retryable());
        assert!(!Response::error(ErrorKind::BadRequest, "x").retryable());
        assert!(!Response::error(ErrorKind::TooLarge, "x").retryable());
        assert!(!Response::error(ErrorKind::Internal, "x").retryable());
        assert!(!Response::ShuttingDown.retryable());
        assert!(!Response::Pong.retryable());
    }
}
