//! Oracle-as-a-service: the ParaDL oracle behind a socket.
//!
//! This crate turns the in-process oracle into a long-lived daemon so that
//! sweeps, notebooks and CI jobs stop paying the model-build + engine-build
//! cost per question. Three binaries share the library:
//!
//! * **`paradl-serve`** — the daemon. Listens on a unix socket or TCP
//!   address, answers unified [`paradl_core::query::Query`] requests, and
//!   amortizes work two ways: an LRU cache of engine cores keyed by the
//!   (model, cluster, δ·γ) validity class, and a *coalescing queue* that
//!   merges concurrent ranked queries into one grid sweep (see
//!   [`server`] for the batching invariant).
//! * **`paradl-client`** — a one-shot CLI client: build a query from flags,
//!   print the ranked answer (or ping / stats / shutdown the daemon).
//! * **`paradl-loadgen`** — a closed-loop load generator that measures
//!   sustained qps and p50/p99 latency at several concurrency levels,
//!   against both a coalescing and a non-coalescing daemon, and writes the
//!   comparison to `BENCH_serve.json`.
//! * **`paradl-chaos`** — a chaos soak: N retrying clients against a
//!   daemon under an escalating, seeded fault schedule ([`fault`]),
//!   asserting the daemon survives, every success stays byte-identical to
//!   the local oracle, and availability clears a floor. Results go to
//!   `BENCH_chaos.json`.
//!
//! The wire protocol ([`proto`]) is deliberately boring: 12-byte header
//! (4-byte big-endian length + 8-byte FNV-1a payload checksum), JSON
//! payload rendered by `paradl_core::jsonio` — the same emitter the golden
//! fixtures use, so a served answer is *byte-identical* to
//! `QueryAnswer::to_json().render()` computed locally. That property is
//! what the integration tests pin, and the checksum keeps it true even on
//! a byte-flipping transport: corruption becomes a detected, retryable
//! transport error ([`retry`]), never a silently different answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod proto;
pub mod resolve;
pub mod retry;
pub mod server;
