//! Deterministic fault injection for the serve stack.
//!
//! A [`FaultPlan`] is a seeded decision stream (SplitMix64, the same
//! fixed-draw discipline as the simulator's `OverheadSampler`): every
//! [`FaultPlan::decide_read`] consumes exactly [`READ_DRAWS`] uniform draws
//! and every [`FaultPlan::decide_write`] exactly [`WRITE_DRAWS`], no matter
//! which fault (if any) triggers. Two plans with the same seed therefore
//! produce the *same decision sequence* even under different
//! [`FaultConfig`]s with shared fault classes — and the same seed always
//! reproduces the same fault trace, which is what lets the chaos soak
//! (`paradl-chaos`) assert reproducibility via [`schedule_digest`].
//!
//! [`FaultyStream`] wraps any `Read + Write` byte stream and injects the
//! planned faults at the I/O boundary:
//!
//! * **corrupt** — one byte of an outgoing chunk is flipped (the frame
//!   checksum in [`crate::proto`] is what turns this into a detected error
//!   instead of a silently wrong answer);
//! * **truncate** — only a prefix of an outgoing chunk is written, then the
//!   stream is poisoned (the peer sees a frame that never completes);
//! * **reset** — the stream errors with `ConnectionReset` and stays dead;
//! * **stall** — a read sleeps first (a slow-loris-ish pause that trips the
//!   server's slow-client eviction when long enough);
//! * **delay** — a write sleeps first (a delayed request or response).
//!
//! Faults are injected *below* every protocol layer, so exercising a stack
//! through a `FaultyStream` tests exactly what a flaky network would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Draws consumed by one [`FaultPlan::decide_read`].
pub const READ_DRAWS: usize = 3;
/// Draws consumed by one [`FaultPlan::decide_write`].
pub const WRITE_DRAWS: usize = 5;

/// Per-I/O-operation fault probabilities. All probabilities are independent
/// per operation; at most one fault triggers per operation (priority:
/// reset > truncate > corrupt > stall/delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that an operation hits an abrupt connection reset.
    pub reset: f64,
    /// Probability that a write delivers only a prefix, then dies.
    pub truncate_write: f64,
    /// Probability that one byte of a written chunk is flipped.
    pub corrupt_write: f64,
    /// Probability that a read stalls (sleeps) before reading.
    pub stall_read: f64,
    /// Probability that a write is delayed (sleeps) before writing.
    pub delay_write: f64,
    /// Maximum stall/delay duration; the actual duration is a uniform draw
    /// in `[0, max_delay]`.
    pub max_delay: Duration,
}

impl FaultConfig {
    /// No faults at all (a `FaultyStream` with this config is transparent).
    pub fn off() -> Self {
        FaultConfig {
            reset: 0.0,
            truncate_write: 0.0,
            corrupt_write: 0.0,
            stall_read: 0.0,
            delay_write: 0.0,
            max_delay: Duration::ZERO,
        }
    }

    /// Mild chaos: rare faults, short delays (~1% of operations affected).
    pub fn mild() -> Self {
        FaultConfig {
            reset: 0.002,
            truncate_write: 0.002,
            corrupt_write: 0.004,
            stall_read: 0.004,
            delay_write: 0.004,
            max_delay: Duration::from_millis(5),
        }
    }

    /// Moderate chaos (~4% of operations affected).
    pub fn moderate() -> Self {
        FaultConfig {
            reset: 0.008,
            truncate_write: 0.008,
            corrupt_write: 0.012,
            stall_read: 0.012,
            delay_write: 0.012,
            max_delay: Duration::from_millis(10),
        }
    }

    /// Severe chaos (~10% of operations affected, longer delays).
    pub fn severe() -> Self {
        FaultConfig {
            reset: 0.02,
            truncate_write: 0.02,
            corrupt_write: 0.03,
            stall_read: 0.03,
            delay_write: 0.03,
            max_delay: Duration::from_millis(20),
        }
    }
}

/// The decision for one read operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Read normally.
    None,
    /// Sleep for the given duration, then read.
    Stall(Duration),
    /// Fail with `ConnectionReset` and poison the stream.
    Reset,
}

/// The decision for one write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Sleep for the given duration, then write.
    Delay(Duration),
    /// Flip the byte at this offset (modulo the chunk length).
    Corrupt(usize),
    /// Write only this many bytes (modulo the chunk length), then poison
    /// the stream.
    Truncate(usize),
    /// Fail with `ConnectionReset` and poison the stream.
    Reset,
}

/// Cumulative record of what a plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTrace {
    /// Read operations decided.
    pub reads: u64,
    /// Write operations decided.
    pub writes: u64,
    /// Connection resets injected.
    pub resets: u64,
    /// Writes truncated.
    pub truncated: u64,
    /// Writes with a corrupted byte.
    pub corrupted: u64,
    /// Reads stalled.
    pub stalls: u64,
    /// Writes delayed.
    pub delays: u64,
}

impl FaultTrace {
    /// Total faults injected (excluding clean operations).
    pub fn injected(&self) -> u64 {
        self.resets + self.truncated + self.corrupted + self.stalls + self.delays
    }

    /// Adds another trace into this one (for aggregating across plans).
    pub fn absorb(&mut self, other: &FaultTrace) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.resets += other.resets;
        self.truncated += other.truncated;
        self.corrupted += other.corrupted;
        self.stalls += other.stalls;
        self.delays += other.delays;
    }
}

/// A seeded, reproducible fault schedule. See the module docs for the
/// fixed-draw discipline that makes traces seed-deterministic.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: StdRng,
    trace: FaultTrace,
}

impl FaultPlan {
    /// A plan drawing its schedule from `seed` under `config`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan { config, rng: StdRng::seed_from_u64(seed), trace: FaultTrace::default() }
    }

    /// What this plan has injected so far.
    pub fn trace(&self) -> FaultTrace {
        self.trace
    }

    fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0f64..1.0)
    }

    fn severity(&mut self, u: f64) -> Duration {
        Duration::from_micros((self.config.max_delay.as_micros() as f64 * u) as u64)
    }

    /// Decides the fault (if any) for the next read. Always consumes exactly
    /// [`READ_DRAWS`] draws.
    pub fn decide_read(&mut self) -> ReadFault {
        let u_reset = self.uniform();
        let u_stall = self.uniform();
        let u_sev = self.uniform();
        self.trace.reads += 1;
        if u_reset < self.config.reset {
            self.trace.resets += 1;
            ReadFault::Reset
        } else if u_stall < self.config.stall_read {
            self.trace.stalls += 1;
            ReadFault::Stall(self.severity(u_sev))
        } else {
            ReadFault::None
        }
    }

    /// Decides the fault (if any) for the next write of `len` bytes. Always
    /// consumes exactly [`WRITE_DRAWS`] draws.
    pub fn decide_write(&mut self, len: usize) -> WriteFault {
        let u_reset = self.uniform();
        let u_trunc = self.uniform();
        let u_corrupt = self.uniform();
        let u_delay = self.uniform();
        let u_sev = self.uniform();
        self.trace.writes += 1;
        let span = len.max(1);
        if u_reset < self.config.reset {
            self.trace.resets += 1;
            WriteFault::Reset
        } else if u_trunc < self.config.truncate_write {
            self.trace.truncated += 1;
            WriteFault::Truncate((u_sev * span as f64) as usize % span)
        } else if u_corrupt < self.config.corrupt_write {
            self.trace.corrupted += 1;
            WriteFault::Corrupt((u_sev * span as f64) as usize % span)
        } else if u_delay < self.config.delay_write {
            self.trace.delays += 1;
            WriteFault::Delay(self.severity(u_sev))
        } else {
            WriteFault::None
        }
    }
}

/// A stable digest of the first `ops` decisions a plan with this seed and
/// config would make (alternating read/write with a fixed chunk length, the
/// canonical schedule shape). Purely a function of `(config, seed, ops)` —
/// the chaos soak computes it twice and asserts equality to prove that a
/// seed pins its fault trace.
pub fn schedule_digest(config: FaultConfig, seed: u64, ops: usize) -> u64 {
    let mut plan = FaultPlan::new(config, seed);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for op in 0..ops {
        if op % 2 == 0 {
            mix(match plan.decide_read() {
                ReadFault::None => 1,
                ReadFault::Stall(d) => 2 ^ (d.as_micros() as u64) << 8,
                ReadFault::Reset => 3,
            });
        } else {
            mix(match plan.decide_write(4096) {
                WriteFault::None => 11,
                WriteFault::Delay(d) => 12 ^ (d.as_micros() as u64) << 8,
                WriteFault::Corrupt(at) => 13 ^ (at as u64) << 8,
                WriteFault::Truncate(keep) => 14 ^ (keep as u64) << 8,
                WriteFault::Reset => 15,
            });
        }
    }
    digest
}

/// A shared, adjustable fault source for the *server* side: each accepted
/// connection draws a fresh plan seeded `seed + connection_index` under the
/// schedule's current config, so an escalating chaos run can turn the dial
/// (`set`) between phases while the whole sequence stays reproducible from
/// the base seed.
#[derive(Debug)]
pub struct FaultSchedule {
    config: std::sync::Mutex<FaultConfig>,
    seed: u64,
    counter: std::sync::atomic::AtomicU64,
}

impl FaultSchedule {
    /// A schedule starting with no faults.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            config: std::sync::Mutex::new(FaultConfig::off()),
            seed,
            counter: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Replaces the config used for connections accepted from now on.
    pub fn set(&self, config: FaultConfig) {
        *self.config.lock().unwrap_or_else(|p| p.into_inner()) = config;
    }

    /// The plan for the next accepted connection.
    pub fn next_plan(&self) -> FaultPlan {
        let config = *self.config.lock().unwrap_or_else(|p| p.into_inner());
        let n = self.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        FaultPlan::new(config, self.seed.wrapping_add(n))
    }
}

/// A `Read + Write` stream with a [`FaultPlan`] injected at the byte level.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    poisoned: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, injecting faults according to `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStream { inner, plan, poisoned: false }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// What the plan has injected so far.
    pub fn trace(&self) -> FaultTrace {
        self.plan.trace()
    }

    fn reset_err(&mut self) -> io::Error {
        self.poisoned = true;
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "stream poisoned"));
        }
        match self.plan.decide_read() {
            ReadFault::None => self.inner.read(buf),
            ReadFault::Stall(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            ReadFault::Reset => Err(self.reset_err()),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "stream poisoned"));
        }
        match self.plan.decide_write(buf.len()) {
            WriteFault::None => self.inner.write(buf),
            WriteFault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            WriteFault::Corrupt(at) if !buf.is_empty() => {
                // Flip one byte of a copy; the caller's `write_all` resumes
                // from the original buffer, so exactly the delivered prefix
                // carries the damage.
                let mut mutated = buf.to_vec();
                mutated[at % buf.len()] ^= 0x40;
                self.inner.write(&mutated)
            }
            WriteFault::Corrupt(_) => self.inner.write(buf),
            WriteFault::Truncate(keep) if !buf.is_empty() => {
                let _ = self.inner.write(&buf[..keep % buf.len()]);
                let _ = self.inner.flush();
                Err(self.reset_err())
            }
            WriteFault::Truncate(_) => self.inner.write(buf),
            WriteFault::Reset => Err(self.reset_err()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "stream poisoned"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn decisions(config: FaultConfig, seed: u64, n: usize) -> Vec<(ReadFault, WriteFault)> {
        let mut plan = FaultPlan::new(config, seed);
        (0..n).map(|_| (plan.decide_read(), plan.decide_write(1024))).collect()
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_trace() {
        let a = decisions(FaultConfig::severe(), 42, 500);
        let b = decisions(FaultConfig::severe(), 42, 500);
        assert_eq!(a, b, "a seed must pin the decision sequence");
        let c = decisions(FaultConfig::severe(), 43, 500);
        assert_ne!(a, c, "different seeds must diverge");
        assert_eq!(
            schedule_digest(FaultConfig::severe(), 42, 1000),
            schedule_digest(FaultConfig::severe(), 42, 1000),
        );
        assert_ne!(
            schedule_digest(FaultConfig::severe(), 42, 1000),
            schedule_digest(FaultConfig::severe(), 43, 1000),
        );
    }

    #[test]
    fn off_config_is_transparent() {
        let plan = FaultPlan::new(FaultConfig::off(), 7);
        let mut stream = FaultyStream::new(Cursor::new(Vec::new()), plan);
        stream.write_all(b"hello").unwrap();
        stream.flush().unwrap();
        assert_eq!(stream.get_ref().get_ref(), b"hello");
        assert_eq!(stream.trace().injected(), 0);
        assert_eq!(stream.trace().writes, 1);
    }

    #[test]
    fn severe_config_injects_every_fault_class() {
        let mut plan = FaultPlan::new(FaultConfig::severe(), 9);
        for _ in 0..2000 {
            plan.decide_read();
            plan.decide_write(1024);
        }
        let t = plan.trace();
        assert!(t.resets > 0, "{t:?}");
        assert!(t.truncated > 0, "{t:?}");
        assert!(t.corrupted > 0, "{t:?}");
        assert!(t.stalls > 0, "{t:?}");
        assert!(t.delays > 0, "{t:?}");
        // Severe ≈ 10% of ops: sanity-bound the injection rate.
        let rate = t.injected() as f64 / (t.reads + t.writes) as f64;
        assert!((0.03..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn poisoned_streams_stay_dead() {
        // A config that always resets.
        let config = FaultConfig { reset: 1.0, ..FaultConfig::off() };
        let mut stream = FaultyStream::new(Cursor::new(Vec::new()), FaultPlan::new(config, 1));
        assert_eq!(
            stream.write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset,
            "first op resets"
        );
        assert_eq!(
            stream.write(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe,
            "later ops see the poisoned stream"
        );
        let mut buf = [0u8; 4];
        assert_eq!(stream.read(&mut buf).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let config = FaultConfig { corrupt_write: 1.0, ..FaultConfig::off() };
        let mut stream = FaultyStream::new(Cursor::new(Vec::new()), FaultPlan::new(config, 5));
        stream.write_all(b"abcdef").unwrap();
        let written = stream.get_ref().get_ref();
        let diffs = written.iter().zip(b"abcdef").filter(|(a, b)| a != b).count();
        assert_eq!(written.len(), 6);
        assert_eq!(diffs, 1, "exactly one byte flipped, got {written:?}");
    }
}
