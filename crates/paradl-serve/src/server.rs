//! The daemon: listener, per-connection threads, and the coalescing queue.
//!
//! ## Architecture
//!
//! ```text
//! accept thread ──▶ connection threads ──try_send──▶ bounded queue
//!                        ▲                                │
//!                        └────── per-request reply ◀── batcher thread
//! ```
//!
//! Every connection gets a thread that reads frames, decodes requests, and
//! enqueues queries onto one bounded channel; a single **batcher** thread
//! drains the channel and answers. Control operations (ping/stats/shutdown)
//! are answered inline on the connection thread.
//!
//! ## The coalescing invariant
//!
//! The batcher lingers briefly after the first dequeue, drains everything
//! else that arrived, and groups the ranked queries (top-k / full-rank) by
//! their *problem class*: same model name, same cluster fingerprint, same
//! non-batch config fields (dataset, epochs, δ, γ) and same effective
//! constraints. Each group becomes one [`QueryGrid`] whose batch axis is
//! the group's distinct batch sizes, answered by a single
//! [`GridSweep::run_cached`] pass — so `n` concurrent requests over `k ≤ n`
//! distinct batches cost `k` cell evaluations plus one (usually cached)
//! engine-core build, instead of `n` full evaluations.
//!
//! This is sound because a grid sweep is defined to produce, cell for cell,
//! the same `SearchReport` a standalone search would (the conformance tests
//! in `paradl-core` pin that), and because `QueryAnswer::to_json` excludes
//! the one order-dependent counter (`pruned_by_bound`). Served answers are
//! therefore **byte-identical** to local `Oracle::answer` results — the
//! integration tests assert exactly that.
//!
//! Suggest and survey queries are cheap and are answered per-request, still
//! sharing the engine-core LRU.
//!
//! ## Robustness
//!
//! * Malformed JSON, unknown ops, unknown models, invalid configs: error
//!   *response* (with an [`ErrorKind`] saying whether a retry can help),
//!   connection lives, daemon lives.
//! * Oversized, truncated, or checksum-damaged frames: the connection is
//!   dropped (the stream cannot be resynchronized), the daemon lives.
//! * Hostile payloads: every query passes [`Query::vet`] at enqueue —
//!   degenerate models, non-finite cluster rates, overflowing batch sizes
//!   and enumeration blow-ups are refused as [`ErrorKind::BadRequest`]
//!   (with the offending field named) before they cost queue space or an
//!   engine build. A spec that slips past vet and still defeats engine
//!   construction surfaces the typed `EngineError` the same way.
//! * Overload: before shedding, the batcher walks the **degradation
//!   ladder** — under queue or deadline pressure a ranked query steps down
//!   `FullRank → TopK(10) → Suggest` (the answer says so via
//!   `AnswerStats::degraded`), and only a full queue sheds outright.
//!   `ServerConfig::degrade = false` (`--no-degrade`) restores the strict
//!   answer-as-asked behavior.
//! * Full queue: [`Response::Shed`] without evaluation (backpressure).
//! * Expired deadline at dequeue: [`Response::DeadlineExpired`] without
//!   evaluation.
//! * Slow clients: a connection that stalls mid-frame past
//!   [`ServerConfig::read_timeout`], or whose socket refuses writes past
//!   [`ServerConfig::write_timeout`], is **evicted** — its thread exits and
//!   the `evictions` counter ticks. A slow-loris peer costs one thread for
//!   one timeout, not forever.
//! * Panics during query evaluation are **contained** with `catch_unwind`:
//!   the offending request is quarantined to an [`ErrorKind::Internal`]
//!   error response and the batcher keeps serving. Should a panic escape
//!   the containment (e.g. in batching code itself), a supervisor restarts
//!   the batcher thread (`batcher_restarts` counter) and the in-flight
//!   requests whose replies were dropped surface as `Internal` errors on
//!   their connections — never as hangs.
//! * Graceful shutdown (local call or remote `shutdown` op): new queries
//!   are refused with [`Response::ShuttingDown`], everything already queued
//!   is drained and answered, then threads exit and the socket is removed.
//! * Stale unix sockets: the bind path is connect-probed first, so a
//!   leftover socket file from a dead daemon is reclaimed but a *live*
//!   daemon's socket is never stolen (`AddrInUse` instead).

use crate::client::Stream;
use crate::fault::FaultSchedule;
use crate::proto::{self, AnswerStats, ErrorKind, FrameRead, Request, Response, MAX_FRAME};
use crate::resolve::resolve_model;
use paradl_core::cluster::ClusterCache;
use paradl_core::engine::{
    cluster_fingerprint, engine_fingerprint, CostEngine, EngineCache, EngineError,
};
use paradl_core::grid::{GridSweep, QueryGrid};
use paradl_core::jsonio::Json;
use paradl_core::oracle::Oracle;
use paradl_core::query::{Query, QueryAnswer, QueryMode};
use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where the daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl std::fmt::Display for Bind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bind::Unix(path) => write!(f, "unix:{}", path.display()),
            Bind::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Where in the batcher an [`EvalHook`] is being invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStage {
    /// In batching code, *outside* the per-query panic containment — a
    /// panic here exercises the batcher supervisor.
    Batch,
    /// Inside the per-query `catch_unwind` — a panic here exercises
    /// quarantine-to-`Error` containment.
    Eval,
}

/// A test hook called for every query the batcher touches. Chaos tests use
/// it to inject panics at a chosen stage; production servers leave it
/// unset.
pub type EvalHook = Arc<dyn Fn(&Query, EvalStage) + Send + Sync>;

/// Tunables for a [`Server`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Merge concurrent ranked queries into shared grid sweeps and reuse
    /// cached engine cores. Off = the per-request baseline the load
    /// generator compares against.
    pub coalesce: bool,
    /// Capacity of the engine-core/cluster LRU (0 disables caching).
    pub cache_entries: usize,
    /// Bounded queue depth; requests beyond it are shed.
    pub queue_cap: usize,
    /// How long the batcher lingers after the first dequeue to let
    /// concurrent requests join the batch.
    pub linger: Duration,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// How long a connection may stall *mid-frame* before it is evicted.
    /// (Idle time between frames is unlimited; only a half-sent frame
    /// holds protocol state hostage.)
    pub read_timeout: Duration,
    /// Socket-level write timeout; a peer that won't drain its receive
    /// buffer for this long is evicted.
    pub write_timeout: Duration,
    /// Walk the degradation ladder under overload: ranked queries step
    /// down `FullRank → TopK(10) → Suggest` under queue or deadline
    /// pressure instead of being answered late or shed. `false` answers
    /// every query exactly as asked (and sheds under pressure as before).
    pub degrade: bool,
    /// Server-side fault injection: every accepted connection is wrapped
    /// in a plan drawn from this schedule. `None` (production) leaves the
    /// streams untouched.
    pub faults: Option<Arc<FaultSchedule>>,
    /// Test hook invoked per query at each [`EvalStage`].
    pub eval_hook: Option<EvalHook>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("coalesce", &self.coalesce)
            .field("cache_entries", &self.cache_entries)
            .field("queue_cap", &self.queue_cap)
            .field("linger", &self.linger)
            .field("max_frame", &self.max_frame)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("degrade", &self.degrade)
            .field("faults", &self.faults)
            .field("eval_hook", &self.eval_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            coalesce: true,
            cache_entries: 32,
            queue_cap: 1024,
            linger: Duration::from_millis(1),
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            degrade: true,
            faults: None,
            eval_hook: None,
        }
    }
}

/// Monotonic serving counters, surfaced by the `stats` op.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    connections: AtomicU64,
    coalesced_groups: AtomicU64,
    evictions: AtomicU64,
    panics_contained: AtomicU64,
    batcher_restarts: AtomicU64,
    degraded: AtomicU64,
    degraded_to_suggest: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    counters: Counters,
    cache: EngineCache,
    /// EWMA of recent evaluation times in µs (`(3·old + sample) / 4`),
    /// the deadline-pressure signal for the degradation ladder.
    eval_ewma_us: AtomicU64,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn stats_json(&self) -> Json {
        let c = &self.counters;
        let cache = self.cache.stats();
        Json::obj([
            ("served", Json::count(c.served.load(Ordering::Relaxed) as usize)),
            ("errors", Json::count(c.errors.load(Ordering::Relaxed) as usize)),
            ("shed", Json::count(c.shed.load(Ordering::Relaxed) as usize)),
            ("deadline_expired", Json::count(c.deadline_expired.load(Ordering::Relaxed) as usize)),
            ("connections", Json::count(c.connections.load(Ordering::Relaxed) as usize)),
            ("coalesced_groups", Json::count(c.coalesced_groups.load(Ordering::Relaxed) as usize)),
            ("evictions", Json::count(c.evictions.load(Ordering::Relaxed) as usize)),
            ("panics_contained", Json::count(c.panics_contained.load(Ordering::Relaxed) as usize)),
            ("batcher_restarts", Json::count(c.batcher_restarts.load(Ordering::Relaxed) as usize)),
            ("degraded", Json::count(c.degraded.load(Ordering::Relaxed) as usize)),
            (
                "degraded_to_suggest",
                Json::count(c.degraded_to_suggest.load(Ordering::Relaxed) as usize),
            ),
            (
                "engine_cache",
                Json::obj([
                    ("hits", Json::count(cache.hits as usize)),
                    ("misses", Json::count(cache.misses as usize)),
                ]),
            ),
        ])
    }
}

/// One queued query awaiting the batcher.
struct Pending {
    query: Query,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
    /// Degradation-ladder rungs applied to `query.mode` (0 = as asked).
    degraded: usize,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// A running daemon. Dropping it without [`Server::shutdown_and_join`]
/// leaves the threads running until a remote `shutdown` op arrives.
pub struct Server {
    bound: Bind,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    queue: Option<SyncSender<Pending>>,
}

impl Server {
    /// Binds and starts the daemon: an accept thread, per-connection
    /// threads as clients arrive, and one batcher thread.
    pub fn start(bind: Bind, config: ServerConfig) -> io::Result<Server> {
        let (listener, bound) = match &bind {
            Bind::Unix(path) => {
                // A stale socket file from a dead daemon would fail the
                // bind — but only reclaim the path after a connect-probe
                // proves nothing is listening, so two daemons can't
                // silently steal each other's socket.
                if path.exists() {
                    match UnixStream::connect(path) {
                        Ok(_) => {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("a daemon is already listening on {}", path.display()),
                            ));
                        }
                        Err(_) => {
                            // Dead socket (refused/ENOENT race): reclaim it.
                            let _ = std::fs::remove_file(path);
                        }
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), bind.clone())
            }
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                // Report the resolved address so `port 0` binds are usable.
                let actual = l.local_addr()?.to_string();
                (Listener::Tcp(l), Bind::Tcp(actual))
            }
        };
        let queue_cap = config.queue_cap.max(1);
        let shared = Arc::new(Shared {
            cache: EngineCache::new(config.cache_entries),
            config,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            eval_ewma_us: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::sync_channel::<Pending>(queue_cap);

        // The batcher runs under a supervisor: a panic that escapes the
        // per-query containment (injected via the Batch-stage hook, or a
        // genuine bug in batching code) restarts the loop instead of
        // leaving every future query to hang on a dead channel. Requests
        // whose replies died with the old incarnation surface as Internal
        // errors on their connection threads.
        let batcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || loop {
                match catch_unwind(AssertUnwindSafe(|| batcher_loop(&rx, &shared))) {
                    Ok(()) => break,
                    Err(_) => {
                        shared.counters.batcher_restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let socket_path = match &bind {
                Bind::Unix(path) => Some(path.clone()),
                Bind::Tcp(_) => None,
            };
            thread::spawn(move || accept_loop(listener, tx, &shared, socket_path))
        };

        Ok(Server { bound, shared, accept: Some(accept), batcher: Some(batcher), queue: Some(tx) })
    }

    /// The resolved listen address (useful after binding TCP port 0).
    pub fn bound(&self) -> &Bind {
        &self.bound
    }

    /// Engine-cache statistics (hits/misses so far).
    pub fn cache_stats(&self) -> paradl_core::engine::EngineCacheStats {
        self.shared.cache.stats()
    }

    /// Flags the daemon to shut down: stop accepting, refuse new queries,
    /// drain everything queued. Does not wait — pair with [`Server::join`].
    pub fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits until the daemon has fully shut down (triggered locally via
    /// [`Server::trigger_shutdown`] or remotely via the `shutdown` op).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Dropping our queue sender lets the batcher's channel disconnect
        // once every connection thread has exited too.
        drop(self.queue.take());
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }

    /// [`Server::trigger_shutdown`] + [`Server::join`].
    pub fn shutdown_and_join(self) {
        self.trigger_shutdown();
        self.join();
    }
}

fn accept_loop(
    listener: Listener,
    tx: SyncSender<Pending>,
    shared: &Arc<Shared>,
    socket_path: Option<PathBuf>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok(stream) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                // Connection reads poll at this granularity so the thread
                // notices shutdown (and mid-frame stalls) without a wakeup
                // mechanism.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                // Server-side chaos: wrap the accepted stream in the next
                // plan off the schedule.
                let stream = match &shared.config.faults {
                    Some(schedule) => stream.with_faults(schedule.next_plan()),
                    None => stream,
                };
                let tx = tx.clone();
                let shared = Arc::clone(shared);
                connections.push(thread::spawn(move || connection_loop(stream, tx, &shared)));
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
}

fn connection_loop(mut stream: Stream, tx: SyncSender<Pending>, shared: &Arc<Shared>) {
    loop {
        // Mid-frame stall tracking: `read_frame` calls `keep_going` every
        // time a read times out *inside* a frame. The first such callback
        // starts the eviction clock; exceeding `read_timeout` evicts the
        // connection (a slow-loris peer holds protocol state hostage, idle
        // peers between frames cost nothing and are never evicted).
        let mut stall_started: Option<Instant> = None;
        let mut evicted = false;
        let keep_going = || {
            if shared.is_shutdown() {
                return false;
            }
            let started = *stall_started.get_or_insert_with(Instant::now);
            if started.elapsed() >= shared.config.read_timeout {
                evicted = true;
                return false;
            }
            true
        };
        match proto::read_frame(&mut stream, shared.config.max_frame, keep_going) {
            Ok(FrameRead::Idle) => {
                if shared.is_shutdown() {
                    return;
                }
            }
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Frame(payload)) => {
                let response = handle_frame(&payload, &tx, shared);
                let frame = response.to_json().render();
                match proto::write_frame(&mut stream, frame.as_bytes(), shared.config.max_frame) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        // The answer exceeded the frame cap. Nothing was
                        // written (the cap is checked up front), so the
                        // stream is still synchronized: substitute an error
                        // response and keep the connection.
                        let fallback = Response::error(
                            ErrorKind::TooLarge,
                            "response exceeds the frame size cap",
                        );
                        if proto::write_frame(
                            &mut stream,
                            fallback.to_json().render().as_bytes(),
                            shared.config.max_frame,
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                    Err(e) => {
                        // A peer that won't drain its receive buffer hits
                        // the socket write timeout: that's an eviction, not
                        // a clean hangup.
                        if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                            shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix or checksum-damaged payload: the
                // stream cannot be resynced. Tell the peer why (the error
                // is retryable — the *bytes* were bad, not the request),
                // then hang up. The daemon lives on.
                let response = Response::error(ErrorKind::Protocol, format!("protocol error: {e}"));
                let _ = proto::write_frame(
                    &mut stream,
                    response.to_json().render().as_bytes(),
                    shared.config.max_frame,
                );
                return;
            }
            Err(_) => {
                if evicted {
                    shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

fn handle_frame(payload: &[u8], tx: &SyncSender<Pending>, shared: &Arc<Shared>) -> Response {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Response::error(ErrorKind::Protocol, "frame payload is not UTF-8");
        }
    };
    let json = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Response::error(ErrorKind::Protocol, format!("malformed JSON: {e}"));
        }
    };
    // Past this point the bytes decoded fine (the checksum already vouched
    // for them in transit), so remaining failures are the *request's* fault.
    let request = match Request::from_json(&json, &resolve_model) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Response::error(ErrorKind::BadRequest, e);
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::ServerStats(shared.stats_json()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Query { query, deadline_ms } => enqueue_query(query, deadline_ms, tx, shared),
    }
}

fn enqueue_query(
    query: Query,
    deadline_ms: Option<u64>,
    tx: &SyncSender<Pending>,
    shared: &Arc<Shared>,
) -> Response {
    // Reject what the oracle would reject, before it costs queue space:
    // the full vet pass (workload presence, model/config validity,
    // finite cluster rates, enumeration admission cap) names the bad
    // field in the refusal.
    if let Err(e) = query.vet() {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        return Response::error(ErrorKind::BadRequest, e.to_string());
    }
    if shared.is_shutdown() {
        return Response::ShuttingDown;
    }
    let now = Instant::now();
    let (reply_tx, reply_rx) = mpsc::channel();
    let pending = Pending {
        query,
        deadline: deadline_ms.map(|ms| now + Duration::from_millis(ms)),
        enqueued: now,
        reply: reply_tx,
        degraded: 0,
    };
    match tx.try_send(pending) {
        Ok(()) => match reply_rx.recv() {
            Ok(response) => response,
            // The reply sender died without answering: either a graceful
            // shutdown, or the batcher incarnation holding our Pending
            // panicked and the supervisor restarted it. Report which.
            Err(_) if shared.is_shutdown() => Response::ShuttingDown,
            Err(_) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    ErrorKind::Internal,
                    "evaluation aborted by a server fault; the request was quarantined",
                )
            }
        },
        Err(TrySendError::Full(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            Response::Shed
        }
        Err(TrySendError::Disconnected(_)) => Response::ShuttingDown,
    }
}

// ---------------------------------------------------------------------------
// The batcher.
// ---------------------------------------------------------------------------

fn batcher_loop(rx: &Receiver<Pending>, shared: &Arc<Shared>) {
    let sweep = GridSweep::new();
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_shutdown() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Linger so concurrent requests can join this batch, then drain.
        if shared.config.coalesce && !shared.config.linger.is_zero() {
            thread::sleep(shared.config.linger);
        }
        let mut batch = vec![first];
        while let Ok(p) = rx.try_recv() {
            batch.push(p);
        }
        process_batch(batch, &sweep, shared);
    }
    // Stragglers that raced the shutdown check get a refusal, not silence.
    while let Ok(p) = rx.try_recv() {
        let _ = p.reply.send(Response::ShuttingDown);
    }
}

/// The ranked depth the first ladder rung caps queries at.
const DEGRADE_TOP_K: usize = 10;

/// Queue-pressure rung for a drained batch of `len` queries: past a quarter
/// of the queue capacity ranked depth is capped (rung 1), past half every
/// ranked query becomes a suggestion (rung 2). The thresholds have small
/// floors so tiny test queues behave proportionally.
fn queue_rung(len: usize, queue_cap: usize) -> usize {
    if len >= (queue_cap / 2).max(4) {
        2
    } else if len >= (queue_cap / 4).max(2) {
        1
    } else {
        0
    }
}

/// Deadline-pressure rung: how the query's remaining budget compares with
/// the recent evaluation-time EWMA. No history yet (or no deadline) means
/// no pressure.
fn deadline_rung(deadline: Option<Instant>, ewma_us: u64) -> usize {
    let Some(deadline) = deadline else { return 0 };
    if ewma_us == 0 {
        return 0;
    }
    let remaining = deadline.saturating_duration_since(Instant::now()).as_micros() as u64;
    if remaining < ewma_us {
        2
    } else if remaining < ewma_us.saturating_mul(2) {
        1
    } else {
        0
    }
}

/// Steps a ranked query down `rung` ladder rungs (rung 1 caps the ranking
/// depth at [`DEGRADE_TOP_K`], rung 2 downgrades to a suggestion), returning
/// how many rungs actually changed the answer mode. Non-ranked modes are
/// already at the bottom of the ladder and never change.
fn apply_degradation(query: &mut Query, rung: usize) -> usize {
    match (query.mode, rung) {
        (QueryMode::Suggest | QueryMode::Survey { .. }, _) | (_, 0) => 0,
        (QueryMode::TopK(_) | QueryMode::FullRank, 2..) => {
            query.mode = QueryMode::Suggest;
            2
        }
        (QueryMode::FullRank, 1) => {
            query.mode = QueryMode::TopK(DEGRADE_TOP_K);
            1
        }
        (QueryMode::TopK(k), 1) if k > DEGRADE_TOP_K => {
            query.mode = QueryMode::TopK(DEGRADE_TOP_K);
            1
        }
        (QueryMode::TopK(_), 1) => 0,
    }
}

fn process_batch(batch: Vec<Pending>, sweep: &GridSweep, shared: &Arc<Shared>) {
    // BTreeMap for deterministic group order (stable stats/telemetry).
    let mut groups: BTreeMap<String, Vec<Pending>> = BTreeMap::new();
    let mut singles = Vec::new();
    let pressure = queue_rung(batch.len(), shared.config.queue_cap.max(1));
    let ewma_us = shared.eval_ewma_us.load(Ordering::Relaxed);
    for mut p in batch {
        if let Some(deadline) = p.deadline {
            if Instant::now() >= deadline {
                shared.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(Response::DeadlineExpired);
                continue;
            }
        }
        // The degradation ladder: answer shallower instead of late (or not
        // at all). Shedding still happens — but only at enqueue when the
        // queue itself is full, past the last rung.
        if shared.config.degrade {
            let rung = pressure.max(deadline_rung(p.deadline, ewma_us));
            p.degraded = apply_degradation(&mut p.query, rung);
            if p.degraded > 0 {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                if p.degraded >= 2 {
                    shared.counters.degraded_to_suggest.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Batch-stage hook: deliberately OUTSIDE the per-query containment,
        // so a panic injected here escapes to the batcher supervisor.
        if let Some(hook) = &shared.config.eval_hook {
            hook(&p.query, EvalStage::Batch);
        }
        if !shared.config.coalesce {
            answer_uncoalesced(p, shared);
            continue;
        }
        match p.query.mode {
            QueryMode::TopK(_) | QueryMode::FullRank => {
                groups.entry(group_key(&p.query)).or_default().push(p);
            }
            QueryMode::Suggest | QueryMode::Survey { .. } => singles.push(p),
        }
    }
    for p in singles {
        answer_single(p, shared);
    }
    for (_, group) in groups {
        answer_ranked_group(group, sweep, shared);
    }
}

/// Feeds one evaluation-time sample into the deadline-pressure EWMA.
fn record_eval_time(shared: &Arc<Shared>, eval_us: u64) {
    let old = shared.eval_ewma_us.load(Ordering::Relaxed);
    let next = if old == 0 { eval_us } else { (3 * old + eval_us) / 4 };
    shared.eval_ewma_us.store(next, Ordering::Relaxed);
}

/// The problem class a ranked query belongs to. Queries in the same class
/// differ at most in batch size and can share one grid sweep. Models travel
/// by name on the wire, so equal names imply equal models here.
fn group_key(query: &Query) -> String {
    let model = query.model.as_ref().expect("validated at enqueue");
    let cluster = query.cluster.as_ref().expect("validated at enqueue");
    let config = query.config.expect("validated at enqueue");
    format!(
        "{}|{:016x}|{}|{}|{:016x}|{:016x}|{:?}",
        model.name,
        cluster_fingerprint(cluster),
        config.dataset_size,
        config.epochs,
        config.bytes_per_item.to_bits(),
        config.memory_reuse.to_bits(),
        query.effective_constraints(),
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `eval` (preceded by the Eval-stage hook) under `catch_unwind`: a
/// panicking query is quarantined to an `Internal` error response instead
/// of killing the batcher. Sound under `forbid(unsafe_code)` — the only
/// state shared across the boundary is the engine cache, whose mutexes are
/// poison-recovered.
fn run_contained<T>(
    query: &Query,
    shared: &Arc<Shared>,
    eval: impl FnOnce() -> T,
) -> Result<T, Response> {
    let hook = shared.config.eval_hook.clone();
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(hook) = &hook {
            hook(query, EvalStage::Eval);
        }
        eval()
    }))
    .map_err(|payload| {
        shared.counters.panics_contained.fetch_add(1, Ordering::Relaxed);
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        Response::error(
            ErrorKind::Internal,
            format!("evaluation panicked (quarantined): {}", panic_message(payload)),
        )
    })
}

/// Evaluation-kernel work counters for one answer: (candidates costed,
/// candidates pruned before costing) from the search report when the
/// answer carries one, zero for suggestion/survey answers. Deterministic
/// on the analytic kernel path (the static dominance count is fixed by
/// the pre-scan bounds).
fn kernel_counters(answer: &QueryAnswer) -> (usize, usize) {
    match answer {
        QueryAnswer::Ranked(report) => (report.evaluated(), report.pruned()),
        _ => (0, 0),
    }
}

/// Baseline path (coalescing off): evaluate the query from scratch, exactly
/// like a standalone `Query::run`.
fn answer_uncoalesced(p: Pending, shared: &Arc<Shared>) {
    let queue_us = p.enqueued.elapsed().as_micros() as u64;
    let start = Instant::now();
    let response = match run_contained(&p.query, shared, || p.query.run()) {
        Ok(Ok(answer)) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            let eval_us = start.elapsed().as_micros() as u64;
            record_eval_time(shared, eval_us);
            let (candidates_evaluated, candidates_pruned) = kernel_counters(&answer);
            Response::Answer {
                answer: answer.to_json(),
                stats: AnswerStats {
                    cache_hit: false,
                    coalesced: 1,
                    batch_cells: 1,
                    queue_us,
                    eval_us,
                    degraded: p.degraded,
                    candidates_evaluated,
                    candidates_pruned,
                },
            }
        }
        Ok(Err(e)) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            Response::error(ErrorKind::BadRequest, e)
        }
        Err(quarantined) => quarantined,
    };
    let _ = p.reply.send(response);
}

/// Suggest/survey path: per-request evaluation on a (usually cached) engine
/// core.
fn answer_single(p: Pending, shared: &Arc<Shared>) {
    let queue_us = p.enqueued.elapsed().as_micros() as u64;
    let start = Instant::now();
    let query = &p.query;

    let outcome = run_contained(query, shared, || {
        let model = query.model.as_ref().expect("validated at enqueue");
        let cluster = query.cluster.as_ref().expect("validated at enqueue");
        let config = query.config.expect("validated at enqueue");
        let key = engine_fingerprint(model, cluster, &config);
        let cache_hit = shared.cache.contains_core(key);
        let topology = shared
            .cache
            .cluster(cluster_fingerprint(cluster), || Arc::new(ClusterCache::new(cluster)));
        // A spec that passed vet but still defeats engine construction
        // (non-finite tables) comes back as a typed EngineError — never
        // cached, so the cache holds only buildable cores.
        let (core, _) = shared.cache.try_core(key, || {
            Ok(CostEngine::with_cache(model, &cluster.device, cluster, config, &topology)?
                .core_handle())
        })?;
        let engine = CostEngine::from_core(model, cluster, config, core)?;
        let oracle = Oracle::new(model, &cluster.device, cluster, config);
        Ok::<_, EngineError>((oracle.answer_with_engine(&engine, query), cache_hit))
    });

    let response = match outcome {
        Ok(Ok((answer, cache_hit))) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            let eval_us = start.elapsed().as_micros() as u64;
            record_eval_time(shared, eval_us);
            let (candidates_evaluated, candidates_pruned) = kernel_counters(&answer);
            Response::Answer {
                answer: answer.to_json(),
                stats: AnswerStats {
                    cache_hit,
                    coalesced: 1,
                    batch_cells: 1,
                    queue_us,
                    eval_us,
                    degraded: p.degraded,
                    candidates_evaluated,
                    candidates_pruned,
                },
            }
        }
        Ok(Err(e)) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            Response::error(ErrorKind::BadRequest, e.to_string())
        }
        Err(quarantined) => quarantined,
    };
    let _ = p.reply.send(response);
}

/// Ranked path: one shared grid sweep answers the whole group.
fn answer_ranked_group(group: Vec<Pending>, sweep: &GridSweep, shared: &Arc<Shared>) {
    let coalesced = group.len();
    if coalesced > 1 {
        shared.counters.coalesced_groups.fetch_add(1, Ordering::Relaxed);
    }
    let lead = &group[0];
    let model = lead.query.model.clone().expect("validated at enqueue");
    let cluster = lead.query.cluster.clone().expect("validated at enqueue");
    let base = lead.query.config.expect("validated at enqueue");
    let constraints = lead.query.effective_constraints();

    let mut batches: Vec<usize> =
        group.iter().map(|p| p.query.config.expect("validated at enqueue").batch_size).collect();
    batches.sort_unstable();
    batches.dedup();

    let cache_hit = shared.cache.contains_core(engine_fingerprint(&model, &cluster, &base));

    // Pre-flight the group's shared engine core fallibly: a spec that passed
    // vet can still defeat construction (finite inputs whose derived tables
    // overflow to non-finite). The grid's internals assume buildable
    // engines, so refuse the whole group with a typed error here instead of
    // letting the sweep panic into quarantine. On success the core is
    // cached, so the sweep below pays nothing extra.
    let topology = shared
        .cache
        .cluster(cluster_fingerprint(&cluster), || Arc::new(ClusterCache::new(&cluster)));
    let preflight = run_contained(&lead.query, shared, || {
        shared.cache.try_core(engine_fingerprint(&model, &cluster, &base), || {
            Ok(CostEngine::with_cache(&model, &cluster.device, &cluster, base, &topology)?
                .core_handle())
        })
    });
    match preflight {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => {
            for p in group {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(Response::error(ErrorKind::BadRequest, e.to_string()));
            }
            return;
        }
        Err(quarantined) => {
            for p in group {
                let _ = p.reply.send(quarantined.clone());
            }
            return;
        }
    }

    let grid = QueryGrid::new(constraints)
        .with_model(model, base)
        .with_batches(batches.iter().copied())
        .with_cluster(cluster);
    let batch_cells = grid.num_queries();

    let start = Instant::now();
    let report = match run_contained(&lead.query, shared, || sweep.run_cached(&grid, &shared.cache))
    {
        Ok(report) => report,
        Err(quarantined) => {
            // The shared sweep panicked: every query in the group is
            // quarantined (they share the poisoned evaluation).
            for p in group {
                let _ = p.reply.send(quarantined.clone());
            }
            return;
        }
    };
    let eval_us = start.elapsed().as_micros() as u64;
    record_eval_time(shared, eval_us);

    for p in group {
        let batch = p.query.config.expect("validated at enqueue").batch_size;
        let cell = report.get(0, batch, 0).expect("sweep covers every requested cell");
        let candidates_evaluated = cell.report.evaluated();
        let candidates_pruned = cell.report.pruned();
        let mut answer = QueryAnswer::Ranked(cell.report.clone());
        // Calibration is per-query, applied after the shared sweep: queries
        // differing only in calibration still coalesce onto one sweep.
        if let Some(calibration) = &p.query.calibration {
            answer = answer.recalibrated(calibration);
        }
        shared.counters.served.fetch_add(1, Ordering::Relaxed);
        let _ = p.reply.send(Response::Answer {
            answer: answer.to_json(),
            stats: AnswerStats {
                cache_hit,
                coalesced,
                batch_cells,
                queue_us: start.duration_since(p.enqueued).as_micros() as u64,
                eval_us,
                degraded: p.degraded,
                candidates_evaluated,
                candidates_pruned,
            },
        });
    }
}
