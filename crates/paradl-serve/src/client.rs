//! Client-side plumbing: connecting to a daemon and exchanging frames.

use crate::fault::{FaultPlan, FaultyStream};
use crate::proto::{self, FrameRead, Request, Response, MAX_FRAME};
use crate::server::Bind;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// A connected byte stream over either transport, optionally with a
/// deterministic fault plan injected below the frame layer.
#[derive(Debug)]
pub enum Stream {
    /// A unix-domain socket.
    Unix(UnixStream),
    /// A TCP socket.
    Tcp(TcpStream),
    /// A stream wrapped in a [`FaultyStream`] (chaos testing).
    Faulty(Box<FaultyStream<Stream>>),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
            Stream::Faulty(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
            Stream::Faulty(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
            Stream::Faulty(s) => s.flush(),
        }
    }
}

impl Stream {
    /// Sets the read timeout on the underlying socket.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Faulty(s) => s.get_ref().set_read_timeout(timeout),
        }
    }

    /// Sets the write timeout on the underlying socket.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            Stream::Faulty(s) => s.get_ref().set_write_timeout(timeout),
        }
    }

    /// Wraps this stream in a fault injector driven by `plan`.
    pub fn with_faults(self, plan: FaultPlan) -> Stream {
        Stream::Faulty(Box::new(FaultyStream::new(self, plan)))
    }
}

/// Parses a `unix:/path/to.sock` or `tcp:host:port` connect target.
pub fn parse_target(text: &str) -> Result<Bind, String> {
    if let Some(path) = text.strip_prefix("unix:") {
        Ok(Bind::Unix(PathBuf::from(path)))
    } else if let Some(addr) = text.strip_prefix("tcp:") {
        Ok(Bind::Tcp(addr.to_string()))
    } else {
        Err(format!("target {text:?} must start with \"unix:\" or \"tcp:\""))
    }
}

/// One client connection to a daemon. Requests are answered in order on the
/// same connection, so a `Connection` is also a unit of serialization.
#[derive(Debug)]
pub struct Connection {
    stream: Stream,
}

impl Connection {
    /// Connects to a daemon.
    pub fn connect(target: &Bind) -> io::Result<Connection> {
        let stream = match target {
            Bind::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Bind::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr)?),
        };
        Ok(Connection { stream })
    }

    /// Connects to a daemon with a fault plan injected below the frame
    /// layer (chaos testing): every byte this connection sends or receives
    /// passes through the plan's schedule.
    pub fn connect_faulty(target: &Bind, plan: FaultPlan) -> io::Result<Connection> {
        let connection = Connection::connect(target)?;
        Ok(Connection { stream: connection.stream.with_faults(plan) })
    }

    /// Sends one request and waits for its response.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        let payload =
            request.to_json().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?.render();
        proto::write_frame(&mut self.stream, payload.as_bytes(), MAX_FRAME)?;
        loop {
            match proto::read_frame(&mut self.stream, MAX_FRAME, || true)? {
                FrameRead::Frame(bytes) => {
                    let text = std::str::from_utf8(&bytes).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8")
                    })?;
                    let json = paradl_core::jsonio::Json::parse(text).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
                    })?;
                    return Response::from_json(&json)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                FrameRead::Idle => continue,
                FrameRead::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before responding",
                    ));
                }
            }
        }
    }

    /// Convenience wrapper: send one query, optionally with a deadline.
    pub fn query(
        &mut self,
        query: &paradl_core::query::Query,
        deadline_ms: Option<u64>,
    ) -> io::Result<Response> {
        self.roundtrip(&Request::Query { query: query.clone(), deadline_ms })
    }

    /// What this connection's fault plan has injected so far (`None` when
    /// the connection carries no fault injector).
    pub fn fault_trace(&self) -> Option<crate::fault::FaultTrace> {
        match &self.stream {
            Stream::Faulty(s) => Some(s.trace()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_parse() {
        assert_eq!(parse_target("unix:/tmp/x.sock").unwrap(), Bind::Unix("/tmp/x.sock".into()));
        assert_eq!(parse_target("tcp:127.0.0.1:7777").unwrap(), Bind::Tcp("127.0.0.1:7777".into()));
        assert!(parse_target("http://nope").is_err());
    }
}
