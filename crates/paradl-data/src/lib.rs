//! # paradl-data
//!
//! Synthetic dataset substrate. The paper trains on ImageNet (1.28 M samples
//! of 3×226²) and CosmoFlow (1584 samples of 4×256³); neither the oracle nor
//! the simulator depends on pixel values — only on sample *shapes* and
//! counts — so this crate provides shape-correct synthetic generators, batch
//! iterators and the weak/strong scaling batch policies used in the paper's
//! sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use paradl_core::config::TrainingConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of a dataset: how many samples it holds and their shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of samples `D`.
    pub samples: usize,
    /// Channels per sample.
    pub channels: usize,
    /// Spatial extents per sample.
    pub spatial: Vec<usize>,
    /// Number of label classes (0 for regression datasets).
    pub classes: usize,
}

impl DatasetSpec {
    /// ImageNet-1k as used in the paper (Table 5): 1.28 M samples of 3×226².
    pub fn imagenet() -> Self {
        DatasetSpec {
            name: "ImageNet".into(),
            samples: 1_281_167,
            channels: 3,
            spatial: vec![226, 226],
            classes: 1000,
        }
    }

    /// CosmoFlow (Table 5): 1584 samples of 4×256³, 4 regression targets.
    pub fn cosmoflow() -> Self {
        DatasetSpec {
            name: "CosmoFlow".into(),
            samples: 1584,
            channels: 4,
            spatial: vec![256, 256, 256],
            classes: 0,
        }
    }

    /// A tiny dataset for unit tests and examples.
    pub fn tiny(samples: usize, side: usize, classes: usize) -> Self {
        DatasetSpec {
            name: "Tiny".into(),
            samples,
            channels: 3,
            spatial: vec![side, side],
            classes,
        }
    }

    /// Elements per sample (`channels × Π spatial`).
    pub fn sample_elements(&self) -> usize {
        self.channels * self.spatial.iter().product::<usize>()
    }

    /// Sample size in bytes at `bytes_per_item` precision.
    pub fn sample_bytes(&self, bytes_per_item: f64) -> f64 {
        self.sample_elements() as f64 * bytes_per_item
    }

    /// A [`TrainingConfig`] for this dataset with the given global batch.
    pub fn training_config(&self, batch_size: usize) -> TrainingConfig {
        TrainingConfig {
            dataset_size: self.samples,
            batch_size,
            epochs: 1,
            bytes_per_item: 4.0,
            memory_reuse: 0.7,
        }
    }
}

/// One synthetic labelled sample: flattened row-major values plus a label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Row-major `channels × spatial` values.
    pub values: Vec<f32>,
    /// Class label (0 when the dataset is a regression task).
    pub label: usize,
}

/// A deterministic synthetic sample generator: sample `i` is always the same
/// values for the same spec and seed, so distributed readers can shard the
/// dataset without exchanging data.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The dataset description.
    pub spec: DatasetSpec,
    seed: u64,
}

impl SyntheticDataset {
    /// Creates a generator for `spec` with the given seed.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        SyntheticDataset { spec, seed }
    }

    /// Generates sample `index` (must be `< spec.samples`).
    pub fn sample(&self, index: usize) -> Sample {
        assert!(index < self.spec.samples, "sample index out of range");
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let n = self.spec.sample_elements();
        let values = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let label = if self.spec.classes > 0 { rng.gen_range(0..self.spec.classes) } else { 0 };
        Sample { values, label }
    }

    /// Iterates mini-batches of `batch` sample indices for one epoch, in
    /// shuffled order (seeded by `epoch` so every PE draws the same order).
    pub fn epoch_batches(&self, batch: usize, epoch: u64) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.spec.samples).collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(epoch));
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order.chunks(batch).map(|c| c.to_vec()).collect()
    }

    /// The shard of a batch owned by `rank` among `world` data-parallel PEs
    /// (contiguous split of the batch, as the paper's micro-batch `B' = B/p`).
    pub fn shard(batch: &[usize], rank: usize, world: usize) -> &[usize] {
        assert!(rank < world, "rank out of range");
        let per = batch.len() / world;
        let start = rank * per;
        let end = if rank + 1 == world { batch.len() } else { start + per };
        &batch[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table5() {
        let i = DatasetSpec::imagenet();
        assert_eq!(i.samples, 1_281_167);
        assert_eq!(i.sample_elements(), 3 * 226 * 226);
        let c = DatasetSpec::cosmoflow();
        assert_eq!(c.samples, 1584);
        assert_eq!(c.sample_elements(), 4 * 256 * 256 * 256);
        // One FP32 CosmoFlow sample is exactly 256 MiB.
        assert_eq!(c.sample_bytes(4.0), 256.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn samples_are_deterministic_per_index() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(100, 8, 10), 7);
        let a = ds.sample(3);
        let b = ds.sample(3);
        assert_eq!(a, b);
        let c = ds.sample(4);
        assert_ne!(a.values, c.values);
        assert_eq!(a.values.len(), 3 * 8 * 8);
        assert!(a.label < 10);
    }

    #[test]
    fn epoch_batches_cover_the_dataset_exactly_once() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(97, 4, 3), 1);
        let batches = ds.epoch_batches(10, 0);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..97).collect::<Vec<_>>());
        // Shuffle differs between epochs.
        let other = ds.epoch_batches(10, 1);
        assert_ne!(batches[0], other[0]);
    }

    #[test]
    fn sharding_partitions_a_batch() {
        let batch: Vec<usize> = (0..16).collect();
        let mut seen = Vec::new();
        for rank in 0..4 {
            seen.extend_from_slice(SyntheticDataset::shard(&batch, rank, 4));
        }
        assert_eq!(seen, batch);
        // Remainder goes to the last rank.
        let odd: Vec<usize> = (0..10).collect();
        assert_eq!(SyntheticDataset::shard(&odd, 3, 4).len(), 4);
    }

    #[test]
    fn training_config_uses_dataset_size() {
        let cfg = DatasetSpec::imagenet().training_config(1024);
        assert_eq!(cfg.dataset_size, 1_281_167);
        assert_eq!(cfg.iterations_per_epoch(), 1_281_167 / 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_index_is_bounds_checked() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(5, 4, 2), 0);
        let _ = ds.sample(5);
    }
}
