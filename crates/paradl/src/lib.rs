//! # ParaDL-rs
//!
//! A Rust reproduction of *"An Oracle for Guiding Large-Scale Model/Hybrid
//! Parallel Training of Convolutional Neural Networks"* (HPDC 2021): an
//! analytical oracle projecting the performance, communication and memory of
//! CNN distributed training under data, spatial, filter, channel, pipeline
//! and hybrid parallelism, plus everything needed to evaluate it —
//! a model zoo, a link-level network model, a distributed-training simulator
//! (the "measured" side), and threaded reference implementations of every
//! strategy verified against a sequential tensor engine.
//!
//! This umbrella crate re-exports the public API of each component:
//!
//! * [`oracle`] (`paradl-core`) — the analytical model and the ParaDL oracle,
//!   including the precomputed `engine::CostEngine` search hot path (with
//!   incremental `rebatch`) and the amortized `grid::QueryGrid` /
//!   `grid::GridSweep` multi-query path,
//! * [`models`] (`paradl-models`) — ResNet-50/152, VGG16, CosmoFlow, AlexNet,
//! * [`net`] (`paradl-net`) — fat-tree topology, collective schedules,
//!   contention,
//! * [`data`] (`paradl-data`) — synthetic shape-correct datasets,
//! * [`sim`] (`paradl-sim`) — the distributed-training simulator,
//! * [`tensor`] (`paradl-tensor`) — the CPU tensor engine,
//! * [`parallel`] (`paradl-parallel`) — threaded strategy implementations.
//!
//! ```
//! use paradl::prelude::*;
//!
//! let model = paradl::models::resnet50();
//! let device = DeviceProfile::v100();
//! let cluster = ClusterSpec::paper_system();
//! let config = TrainingConfig::imagenet(32 * 64);
//! let oracle = Oracle::new(&model, &device, &cluster, config);
//! let projection = oracle.project(Strategy::Data { p: 64 });
//! assert!(projection.cost.epoch_time() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use paradl_core as oracle;
pub use paradl_data as data;
pub use paradl_models as models;
pub use paradl_net as net;
pub use paradl_parallel as parallel;
pub use paradl_sim as sim;
pub use paradl_tensor as tensor;

/// The most commonly used types from every component crate.
pub mod prelude {
    pub use paradl_core::prelude::*;
    pub use paradl_data::{DatasetSpec, SyntheticDataset};
    pub use paradl_models::{alexnet, cosmoflow, resnet152, resnet50, vgg16, SyntheticCnn};
    pub use paradl_net::{FatTree, Schedule, Transfer};
    pub use paradl_sim::{Conformance, MeasuredResult, OverheadModel, Simulator};
    pub use paradl_tensor::{SmallCnn, SmallCnnConfig, Tensor};
}
