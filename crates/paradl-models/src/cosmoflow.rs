//! CosmoFlow (Mathuriya et al., SC'18): a 3-D CNN regressing cosmological
//! parameters from 4-channel volumetric dark-matter density histograms.
//!
//! The paper (Table 5) uses the 4 × 256³ dataset variant with ≈2 M parameters
//! and ~20 layers; §5.3.2 notes the first convolution produces >10 GB of
//! activations for 4 × 512³ samples, which is why only the Data+Spatial
//! hybrid is feasible at that scale.

use paradl_core::layer::Layer;
use paradl_core::model::Model;

/// Builds CosmoFlow for a cubic input of `side³` voxels with 4 channels.
/// `side` is typically 128, 256 or 512.
pub fn cosmoflow_with_input(side: usize) -> Model {
    let mut layers = Vec::new();
    let mut s = side;
    let mut in_ch = 4usize;
    // Conv(3³) + leaky-ReLU + max-pool(2³) stages with channel widths
    // 16, 32, 64, 128, 256 (the published architecture), repeating the final
    // 256-wide stage until the volume is reduced to 4³ so the flattened
    // feature vector — and therefore the parameter count (≈2 M, Table 5) —
    // stays independent of the input resolution.
    let base_widths = [16usize, 32, 64, 128, 256];
    let mut i = 0usize;
    while s > 4 {
        let out_ch = *base_widths.get(i).unwrap_or(&256);
        layers.push(Layer::conv3d(format!("conv{}", i + 1), in_ch, out_ch, (s, s, s), 3, 1, 1));
        layers.push(Layer::relu(format!("lrelu{}", i + 1), out_ch, &[s, s, s]));
        layers.push(Layer::pool3d(format!("pool{}", i + 1), out_ch, (s, s, s), 2, 2));
        s /= 2;
        in_ch = out_ch;
        i += 1;
    }
    // Flatten and regress through three FC layers to 4 target parameters.
    let flat = in_ch * s * s * s;
    layers.push(Layer::fully_connected("fc1", flat, 128));
    layers.push(Layer::relu("fc1_relu", 128, &[1]));
    layers.push(Layer::fully_connected("fc2", 128, 64));
    layers.push(Layer::relu("fc2_relu", 64, &[1]));
    layers.push(Layer::fully_connected("fc3", 64, 4));

    Model::new(format!("CosmoFlow-{side}"), 4, vec![side, side, side], layers)
}

/// CosmoFlow at the paper's 256³ evaluation size.
pub fn cosmoflow() -> Model {
    cosmoflow_with_input(256)
}

/// CosmoFlow at the 128³ size (fits single-GPU memory; used for the
/// layer-time calibration the paper describes in §5.1).
pub fn cosmoflow_small() -> Model {
    cosmoflow_with_input(128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::layer::LayerKind;
    use paradl_core::prelude::*;

    #[test]
    fn parameter_count_is_a_few_million() {
        // Paper Table 5 lists ≈2 M parameters.
        let m = cosmoflow();
        let p = m.total_params();
        assert!((1_000_000..6_000_000).contains(&p), "CosmoFlow params = {p}");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn about_twenty_layers() {
        let m = cosmoflow();
        assert!((18..=26).contains(&m.num_layers()), "layers = {}", m.num_layers());
    }

    #[test]
    fn input_is_3d_4_channel() {
        let m = cosmoflow();
        assert_eq!(m.input_channels, 4);
        assert_eq!(m.input_spatial.len(), 3);
        let first = &m.layers[0];
        assert_eq!(first.kind, LayerKind::Conv);
        assert_eq!(first.spatial_dims(), 3);
    }

    #[test]
    fn first_conv_activation_is_gigabytes_at_512() {
        // Paper §5.3.2: the first conv layer generates on the order of 10 GB
        // of activation for a 4×512³ input sample.
        let m = cosmoflow_with_input(512);
        let first = &m.layers[0];
        let bytes = first.output_size() as f64 * 4.0;
        assert!(bytes > 5.0e9, "activation = {bytes} bytes");
    }

    #[test]
    fn data_parallel_memory_exceeds_v100_at_512() {
        // The motivation for spatial parallelism: even one 512³ sample per
        // GPU blows the 16 GB V100 memory, while spatial splitting fits.
        let m = cosmoflow_with_input(512);
        let cfg = TrainingConfig { memory_reuse: 0.7, ..TrainingConfig::cosmoflow(4) };
        let data = memory_per_pe(&m, &cfg, Strategy::Data { p: 4 });
        assert!(data > V100_MEMORY_BYTES);
        let spatial =
            memory_per_pe(&m, &cfg, Strategy::Spatial { split: SpatialSplit::balanced_3d(64) });
        assert!(spatial < data);
    }

    #[test]
    fn activations_dominate_weights() {
        // CosmoFlow is activation-heavy (large 3-D volumes, tiny weight count),
        // the opposite of VGG16.
        let m = cosmoflow();
        assert!(m.total_activations() > 50 * m.total_params());
    }
}
