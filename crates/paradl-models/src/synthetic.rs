//! Configurable synthetic CNNs for tests, examples and ablation benches:
//! a parameterized conv/pool pyramid whose size, depth and channel widths can
//! be dialed to produce activation-heavy or weight-heavy models on demand.

use paradl_core::layer::Layer;
use paradl_core::model::Model;

/// Builder for a synthetic 2-D CNN.
#[derive(Debug, Clone)]
pub struct SyntheticCnn {
    /// Input spatial side length.
    pub input_side: usize,
    /// Input channels.
    pub input_channels: usize,
    /// Channel width of the first stage; each stage doubles it.
    pub base_channels: usize,
    /// Number of conv/pool stages.
    pub stages: usize,
    /// Convolutions per stage.
    pub convs_per_stage: usize,
    /// Whether to append batch-norm after every convolution.
    pub batch_norm: bool,
    /// Hidden width of the fully-connected head (0 disables the hidden FC).
    pub fc_hidden: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for SyntheticCnn {
    fn default() -> Self {
        SyntheticCnn {
            input_side: 64,
            input_channels: 3,
            base_channels: 32,
            stages: 3,
            convs_per_stage: 2,
            batch_norm: false,
            fc_hidden: 256,
            classes: 10,
        }
    }
}

impl SyntheticCnn {
    /// A small model suitable for fast unit tests.
    pub fn tiny() -> Self {
        SyntheticCnn {
            input_side: 32,
            base_channels: 8,
            stages: 2,
            convs_per_stage: 1,
            fc_hidden: 0,
            ..Default::default()
        }
    }

    /// A weight-heavy model (large FC head) exercising the gradient-exchange
    /// bottleneck.
    pub fn weight_heavy() -> Self {
        SyntheticCnn { fc_hidden: 4096, classes: 1000, ..Default::default() }
    }

    /// An activation-heavy model (large input, few channels) exercising the
    /// memory-capacity and spatial-parallelism paths.
    pub fn activation_heavy() -> Self {
        SyntheticCnn {
            input_side: 512,
            base_channels: 16,
            stages: 2,
            convs_per_stage: 1,
            fc_hidden: 0,
            ..Default::default()
        }
    }

    /// Builds the model.
    pub fn build(&self) -> Model {
        let mut layers = Vec::new();
        let mut hw = self.input_side;
        let mut in_ch = self.input_channels;
        for s in 0..self.stages {
            let out_ch = self.base_channels << s;
            for c in 0..self.convs_per_stage {
                layers.push(Layer::conv2d(
                    format!("s{s}_conv{c}"),
                    in_ch,
                    out_ch,
                    (hw, hw),
                    3,
                    1,
                    1,
                ));
                if self.batch_norm {
                    layers.push(Layer::batch_norm(format!("s{s}_bn{c}"), out_ch, &[hw, hw]));
                }
                layers.push(Layer::relu(format!("s{s}_relu{c}"), out_ch, &[hw, hw]));
                in_ch = out_ch;
            }
            if hw >= 2 {
                layers.push(Layer::pool2d(format!("s{s}_pool"), in_ch, (hw, hw), 2, 2));
                hw /= 2;
            }
        }
        layers.push(Layer::global_pool("gpool", in_ch, &[hw, hw]));
        let mut feat = in_ch;
        if self.fc_hidden > 0 {
            layers.push(Layer::fully_connected("fc_hidden", feat, self.fc_hidden));
            layers.push(Layer::relu("fc_hidden_relu", self.fc_hidden, &[1]));
            feat = self.fc_hidden;
        }
        layers.push(Layer::fully_connected("fc_out", feat, self.classes));
        Model::new(
            format!(
                "Synthetic({}x{}x{},{} stages)",
                self.input_channels, self.input_side, self.input_side, self.stages
            ),
            self.input_channels,
            vec![self.input_side, self.input_side],
            layers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::layer::LayerKind;

    #[test]
    fn default_build_is_valid() {
        let m = SyntheticCnn::default().build();
        assert!(m.validate().is_ok());
        assert!(m.total_params() > 0);
    }

    #[test]
    fn stages_control_depth() {
        let shallow = SyntheticCnn { stages: 1, ..Default::default() }.build();
        let deep = SyntheticCnn { stages: 4, ..Default::default() }.build();
        assert!(deep.num_layers() > shallow.num_layers());
        assert!(deep.total_params() > shallow.total_params());
    }

    #[test]
    fn batch_norm_flag_adds_bn_layers() {
        let without = SyntheticCnn::default().build();
        let with = SyntheticCnn { batch_norm: true, ..Default::default() }.build();
        let bn = with.layers.iter().filter(|l| l.kind == LayerKind::BatchNorm).count();
        assert!(bn > 0);
        assert!(without.layers.iter().all(|l| l.kind != LayerKind::BatchNorm));
    }

    #[test]
    fn weight_heavy_vs_activation_heavy() {
        let wh = SyntheticCnn::weight_heavy().build();
        let ah = SyntheticCnn::activation_heavy().build();
        let wh_ratio = wh.total_params() as f64 / wh.total_activations() as f64;
        let ah_ratio = ah.total_params() as f64 / ah.total_activations() as f64;
        assert!(wh_ratio > 10.0 * ah_ratio);
    }

    #[test]
    fn tiny_model_is_small() {
        let m = SyntheticCnn::tiny().build();
        assert!(m.total_params() < 100_000);
        assert!(m.num_layers() < 12);
    }
}
