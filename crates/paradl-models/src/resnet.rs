//! ResNet-50 and ResNet-152 (He et al., 2016) for 224×224 ImageNet-like
//! inputs, built from bottleneck blocks (1×1 reduce, 3×3, 1×1 expand) with
//! batch-normalization and ReLU after every convolution and a residual `Add`
//! at the end of each block.

use paradl_core::layer::Layer;
use paradl_core::model::Model;

/// Stage configuration: number of bottleneck blocks per stage.
#[derive(Debug, Clone, Copy)]
struct ResNetConfig {
    name: &'static str,
    blocks: [usize; 4],
}

const RESNET50: ResNetConfig = ResNetConfig { name: "ResNet-50", blocks: [3, 4, 6, 3] };
const RESNET152: ResNetConfig = ResNetConfig { name: "ResNet-152", blocks: [3, 8, 36, 3] };

fn bottleneck(
    layers: &mut Vec<Layer>,
    prefix: &str,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    hw: usize,
    stride: usize,
) -> usize {
    let out_hw = if stride == 1 { hw } else { hw / stride };
    // 1x1 reduce
    layers.push(Layer::conv2d(format!("{prefix}_conv1"), in_ch, mid_ch, (hw, hw), 1, 1, 0));
    layers.push(Layer::batch_norm(format!("{prefix}_bn1"), mid_ch, &[hw, hw]));
    layers.push(Layer::relu(format!("{prefix}_relu1"), mid_ch, &[hw, hw]));
    // 3x3 (stride may reduce spatial size)
    layers.push(Layer::conv2d(format!("{prefix}_conv2"), mid_ch, mid_ch, (hw, hw), 3, stride, 1));
    layers.push(Layer::batch_norm(format!("{prefix}_bn2"), mid_ch, &[out_hw, out_hw]));
    layers.push(Layer::relu(format!("{prefix}_relu2"), mid_ch, &[out_hw, out_hw]));
    // 1x1 expand
    layers.push(Layer::conv2d(
        format!("{prefix}_conv3"),
        mid_ch,
        out_ch,
        (out_hw, out_hw),
        1,
        1,
        0,
    ));
    layers.push(Layer::batch_norm(format!("{prefix}_bn3"), out_ch, &[out_hw, out_hw]));
    // Projection shortcut when the shape changes.
    if in_ch != out_ch || stride != 1 {
        layers.push(Layer::conv2d(
            format!("{prefix}_downsample"),
            in_ch,
            out_ch,
            (hw, hw),
            1,
            stride,
            0,
        ));
        layers.push(Layer::batch_norm(
            format!("{prefix}_downsample_bn"),
            out_ch,
            &[out_hw, out_hw],
        ));
    }
    layers.push(Layer::add(format!("{prefix}_add"), out_ch, &[out_hw, out_hw]));
    layers.push(Layer::relu(format!("{prefix}_relu3"), out_ch, &[out_hw, out_hw]));
    out_hw
}

fn build(config: ResNetConfig, side: usize) -> Model {
    let mut layers = Vec::new();
    let mut hw = side;
    // Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max-pool.
    layers.push(Layer::conv2d("conv1", 3, 64, (hw, hw), 7, 2, 3));
    hw = (hw + 2 * 3 - 7) / 2 + 1;
    layers.push(Layer::batch_norm("bn1", 64, &[hw, hw]));
    layers.push(Layer::relu("relu1", 64, &[hw, hw]));
    layers.push(Layer::pool2d("maxpool", 64, (hw, hw), 2, 2));
    hw /= 2;

    let mut in_ch = 64usize;
    let stage_mid = [64usize, 128, 256, 512];
    for (si, &nblocks) in config.blocks.iter().enumerate() {
        let mid = stage_mid[si];
        let out = mid * 4;
        for b in 0..nblocks {
            let stride = if b == 0 && si > 0 { 2 } else { 1 };
            hw = bottleneck(
                &mut layers,
                &format!("layer{}_{}", si + 1, b),
                in_ch,
                mid,
                out,
                hw,
                stride,
            );
            in_ch = out;
        }
    }
    layers.push(Layer::global_pool("avgpool", in_ch, &[hw, hw]));
    layers.push(Layer::fully_connected("fc", in_ch, 1000));
    Model::new(config.name, 3, vec![side, side], layers)
}

/// ResNet-50 at the standard 224×224 resolution (≈25.6 M parameters).
pub fn resnet50() -> Model {
    build(RESNET50, 224)
}

/// ResNet-152 at the standard 224×224 resolution (≈60 M parameters).
pub fn resnet152() -> Model {
    build(RESNET152, 224)
}

/// ResNet-50 at a custom input resolution (the paper uses 226²; the exact
/// value only shifts activation sizes slightly).
pub fn resnet50_with_input(side: usize) -> Model {
    build(RESNET50, side)
}

/// ResNet-152 at a custom input resolution.
pub fn resnet152_with_input(side: usize) -> Model {
    build(RESNET152, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_core::layer::LayerKind;

    #[test]
    fn resnet50_parameter_count_is_about_25m() {
        let m = resnet50();
        let p = m.total_params();
        assert!((24_000_000..28_000_000).contains(&p), "ResNet-50 params = {p}");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn resnet152_parameter_count_is_about_60m() {
        let m = resnet152();
        let p = m.total_params();
        assert!((55_000_000..65_000_000).contains(&p), "ResNet-152 params = {p}");
    }

    #[test]
    fn resnet50_has_53_convolutions() {
        // 1 stem + 16 blocks × 3 + 4 downsample projections = 53.
        let m = resnet50();
        let convs = m.layers.iter().filter(|l| l.kind == LayerKind::Conv).count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn resnet152_is_deeper_than_resnet50() {
        assert!(resnet152().num_layers() > 3 * resnet50().num_layers() / 2);
        assert!(resnet152().total_flops_forward() > 2 * resnet50().total_flops_forward());
    }

    #[test]
    fn min_filters_is_64() {
        // Paper §5.3.4: filter parallelism of ResNet-50 is limited to 64.
        assert_eq!(resnet50().min_filters(), 64);
        assert_eq!(resnet152().min_filters(), 64);
    }

    #[test]
    fn final_spatial_size_is_7x7() {
        let m = resnet50();
        let gpool = m.layers.iter().find(|l| l.kind == LayerKind::GlobalPool).unwrap();
        assert_eq!(gpool.in_spatial, vec![7, 7]);
    }

    #[test]
    fn resnet50_flops_are_in_the_published_ballpark() {
        // ~4.1 GFLOPs (MAC-counted ×2) for a 224² forward pass.
        let m = resnet50();
        let gflops = m.total_flops_forward() as f64 / 1e9;
        assert!((6.0..12.0).contains(&gflops), "forward GFLOPs = {gflops}");
    }
}
