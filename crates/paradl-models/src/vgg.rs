//! VGG-16 (Simonyan & Zisserman, 2015) for 224×224 ImageNet-like inputs.
//!
//! The paper (Table 5) lists VGG16 with ≈169 M parameters and 38 layers; the
//! canonical VGG-16 has ≈138 M parameters in 13 conv + 3 FC weighted layers —
//! the difference comes from counting auxiliary layers. We build the
//! canonical architecture (conv/ReLU/pool chain plus the three FC layers) and
//! expose every ReLU/pool explicitly so the layer count matches the paper's
//! accounting.

use paradl_core::layer::Layer;
use paradl_core::model::Model;

/// Builds VGG-16 for a `3 × side × side` input (224 for ImageNet).
pub fn vgg16_with_input(side: usize) -> Model {
    let mut layers = Vec::new();
    let mut hw = side;
    let mut in_ch = 3usize;
    // (output channels, convs in the block)
    let blocks = [(64usize, 2usize), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (bi, &(out_ch, convs)) in blocks.iter().enumerate() {
        for ci in 0..convs {
            layers.push(Layer::conv2d(
                format!("conv{}_{}", bi + 1, ci + 1),
                in_ch,
                out_ch,
                (hw, hw),
                3,
                1,
                1,
            ));
            layers.push(Layer::relu(format!("relu{}_{}", bi + 1, ci + 1), out_ch, &[hw, hw]));
            in_ch = out_ch;
        }
        layers.push(Layer::pool2d(format!("pool{}", bi + 1), out_ch, (hw, hw), 2, 2));
        hw /= 2;
    }
    // Classifier: flatten 512×7×7 then three FC layers.
    let flat = in_ch * hw * hw;
    layers.push(Layer::fully_connected("fc6", flat, 4096));
    layers.push(Layer::relu("relu6", 4096, &[1]));
    layers.push(Layer::fully_connected("fc7", 4096, 4096));
    layers.push(Layer::relu("relu7", 4096, &[1]));
    layers.push(Layer::fully_connected("fc8", 4096, 1000));

    Model::new("VGG16", 3, vec![side, side], layers)
}

/// VGG-16 at the standard 224×224 ImageNet resolution.
pub fn vgg16() -> Model {
    vgg16_with_input(224)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_about_138m() {
        let m = vgg16();
        let p = m.total_params();
        assert!((130_000_000..150_000_000).contains(&p), "VGG16 params = {p}");
    }

    #[test]
    fn has_13_convolutions_and_3_fc() {
        let m = vgg16();
        let convs =
            m.layers.iter().filter(|l| l.kind == paradl_core::layer::LayerKind::Conv).count();
        let fcs = m
            .layers
            .iter()
            .filter(|l| l.kind == paradl_core::layer::LayerKind::FullyConnected)
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn min_filters_is_64() {
        // The paper notes filter parallelism of VGG16 is limited to 64 PEs.
        let m = vgg16();
        assert_eq!(m.min_filters(), 64);
    }

    #[test]
    fn most_params_are_in_fc_layers() {
        // The classic VGG16 property driving the weight-update observation in
        // Figure 7: ~90% of the parameters live in the FC layers.
        let m = vgg16();
        let fc_params: usize = m
            .layers
            .iter()
            .filter(|l| l.kind == paradl_core::layer::LayerKind::FullyConnected)
            .map(|l| l.param_count())
            .sum();
        assert!(fc_params as f64 > 0.85 * m.total_params() as f64);
    }
}
