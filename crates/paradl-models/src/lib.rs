//! # paradl-models
//!
//! Model zoo for the ParaDL oracle: layer-by-layer descriptions of the CNNs
//! used in the paper's evaluation (Table 5) — ResNet-50, ResNet-152, VGG16
//! and CosmoFlow — plus AlexNet and a configurable synthetic CNN for tests
//! and ablation studies.
//!
//! Each builder returns a [`paradl_core::model::Model`] whose parameter
//! counts, layer counts and activation shapes match the published
//! architectures, so the oracle's projections are driven by the same tensor
//! shapes as the paper's experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alexnet;
pub mod cosmoflow;
pub mod resnet;
pub mod synthetic;
pub mod vgg;

pub use alexnet::alexnet;
pub use cosmoflow::{cosmoflow, cosmoflow_small, cosmoflow_with_input};
pub use resnet::{resnet152, resnet152_with_input, resnet50, resnet50_with_input};
pub use synthetic::SyntheticCnn;
pub use vgg::{vgg16, vgg16_with_input};

use paradl_core::model::Model;

/// The four models of the paper's Table 5, in the order they appear.
pub fn paper_models() -> Vec<Model> {
    vec![resnet50(), resnet152(), vgg16(), cosmoflow()]
}

/// The three ImageNet models used in Figure 3 (CosmoFlow is evaluated
/// separately with Data+Spatial in Figures 4 and 5).
pub fn imagenet_models() -> Vec<Model> {
    vec![resnet50(), resnet152(), vgg16()]
}

/// Looks a model up by its (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Model> {
    match name.to_ascii_lowercase().as_str() {
        "resnet-50" | "resnet50" => Some(resnet50()),
        "resnet-152" | "resnet152" => Some(resnet152()),
        "vgg16" | "vgg-16" => Some(vgg16()),
        "cosmoflow" => Some(cosmoflow()),
        "alexnet" => Some(alexnet()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_match_table5_ordering_and_sizes() {
        let models = paper_models();
        assert_eq!(models.len(), 4);
        assert_eq!(models[0].name, "ResNet-50");
        assert_eq!(models[1].name, "ResNet-152");
        assert_eq!(models[2].name, "VGG16");
        assert!(models[3].name.starts_with("CosmoFlow"));
        // Relative ordering of parameter counts from Table 5:
        // CosmoFlow (≈2M) < ResNet-50 (≈25M) < ResNet-152 (≈58M) < VGG16 (≈138M).
        assert!(models[3].total_params() < models[0].total_params());
        assert!(models[0].total_params() < models[1].total_params());
        assert!(models[1].total_params() < models[2].total_params());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("ResNet-50").is_some());
        assert!(by_name("resnet152").is_some());
        assert!(by_name("VGG16").is_some());
        assert!(by_name("cosmoflow").is_some());
        assert!(by_name("alexnet").is_some());
        assert!(by_name("transformer").is_none());
    }

    #[test]
    fn every_zoo_model_validates() {
        for m in paper_models() {
            assert!(m.validate().is_ok(), "{} invalid", m.name);
        }
        assert!(alexnet().validate().is_ok());
    }
}
