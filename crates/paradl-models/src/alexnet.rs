//! AlexNet (Krizhevsky, 2012/2014) — included because Krizhevsky's "one weird
//! trick" paper [25] is the origin of the data-parallel-convolutions /
//! model-parallel-FC hybrid the paper discusses, and because its small depth
//! makes it a convenient pipeline-parallelism example.

use paradl_core::layer::Layer;
use paradl_core::model::Model;

/// Builds AlexNet for a `3 × 227 × 227` input.
pub fn alexnet() -> Model {
    let layers = vec![
        // conv1: 11x11/4, 96 filters
        Layer::conv2d("conv1", 3, 96, (227, 227), 11, 4, 0),
        Layer::relu("relu1", 96, &[55, 55]),
        Layer::pool2d("pool1", 96, (55, 55), 3, 2),
        // conv2: 5x5, 256 filters on 27x27
        Layer::conv2d("conv2", 96, 256, (27, 27), 5, 1, 2),
        Layer::relu("relu2", 256, &[27, 27]),
        Layer::pool2d("pool2", 256, (27, 27), 3, 2),
        // conv3-5: 3x3 on 13x13
        Layer::conv2d("conv3", 256, 384, (13, 13), 3, 1, 1),
        Layer::relu("relu3", 384, &[13, 13]),
        Layer::conv2d("conv4", 384, 384, (13, 13), 3, 1, 1),
        Layer::relu("relu4", 384, &[13, 13]),
        Layer::conv2d("conv5", 384, 256, (13, 13), 3, 1, 1),
        Layer::relu("relu5", 256, &[13, 13]),
        Layer::pool2d("pool5", 256, (13, 13), 3, 2),
        // FC layers on 256×6×6.
        Layer::fully_connected("fc6", 256 * 6 * 6, 4096),
        Layer::relu("relu6", 4096, &[1]),
        Layer::fully_connected("fc7", 4096, 4096),
        Layer::relu("relu7", 4096, &[1]),
        Layer::fully_connected("fc8", 4096, 1000),
    ];
    Model::new("AlexNet", 3, vec![227, 227], layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_about_61m() {
        let m = alexnet();
        let p = m.total_params();
        assert!((55_000_000..65_000_000).contains(&p), "AlexNet params = {p}");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn pool_shapes_chain_correctly() {
        let m = alexnet();
        // conv1 output is 55x55, pool1 output 27x27, pool2 output 13x13,
        // pool5 output 6x6.
        let conv1 = &m.layers[0];
        assert_eq!(conv1.out_spatial(), vec![55, 55]);
        let pool1 = &m.layers[2];
        assert_eq!(pool1.out_spatial(), vec![27, 27]);
        let pool5 = m.layers.iter().find(|l| l.name == "pool5").unwrap();
        assert_eq!(pool5.out_spatial(), vec![6, 6]);
    }

    #[test]
    fn fc_layers_hold_most_parameters() {
        let m = alexnet();
        let fc: usize = m
            .layers
            .iter()
            .filter(|l| l.kind == paradl_core::layer::LayerKind::FullyConnected)
            .map(|l| l.param_count())
            .sum();
        assert!(fc as f64 > 0.9 * m.total_params() as f64);
    }
}
