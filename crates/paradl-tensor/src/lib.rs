//! # paradl-tensor
//!
//! A small, dependency-light CPU tensor engine: dense `f32` [`tensor::Tensor`]s,
//! the CNN operators ([`ops`]: conv2d, max/global pooling, ReLU,
//! fully-connected, softmax cross-entropy, SGD) with forward *and* backward
//! passes, and a reference [`network::SmallCnn`].
//!
//! Its role in the ParaDL reproduction is to be the **ground truth** the
//! threaded parallel-strategy implementations in `paradl-parallel` are
//! verified against value-by-value — the correctness methodology of the
//! paper's §4.5.2 — so the implementations favour clarity over speed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod network;
pub mod ops;
pub mod tensor;

pub use network::{ForwardTrace, Gradients, SmallCnn, SmallCnnConfig};
pub use ops::{
    conv2d_backward, conv2d_forward, conv_out_size, global_avg_pool_backward,
    global_avg_pool_forward, linear_backward, linear_forward, maxpool2d_backward,
    maxpool2d_forward, relu_backward, relu_forward, sgd_step, softmax_cross_entropy, Conv2dGrads,
    Conv2dParams, LinearGrads,
};
pub use tensor::Tensor;
