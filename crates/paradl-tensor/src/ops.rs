//! CNN operators: 2-D convolution, pooling, ReLU, fully-connected layers and
//! the softmax/cross-entropy loss, each with its backward pass, plus the SGD
//! weight update.
//!
//! All operators work on NCHW [`Tensor`]s (`[N, C, H, W]`). The
//! implementations are straightforward direct loops: their purpose is to be
//! an unambiguous *reference* against which the parallel decompositions of
//! `paradl-parallel` are checked value-by-value, not to be fast.

use crate::tensor::Tensor;

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, padding: 0 }
    }
}

/// Output spatial size of a convolution/pooling with the given geometry.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding - kernel) / stride + 1
}

/// 2-D convolution forward: input `[N, C, H, W]`, weight `[F, C, K, K]`,
/// bias `[F]` → output `[N, F, H', W']`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Tensor {
    let (n, c, h, w) = shape4(input);
    let (f, wc, k, k2) = shape4(weight);
    assert_eq!(c, wc, "channel mismatch between input and weight");
    assert_eq!(k, k2, "only square kernels are supported");
    assert_eq!(bias.shape(), &[f], "bias must have one entry per filter");
    let oh = conv_out_size(h, k, params.stride, params.padding);
    let ow = conv_out_size(w, k, params.stride, params.padding);
    let mut out = Tensor::zeros(&[n, f, oh, ow]);
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.get(&[fi]);
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * params.stride + ky;
                                let ix = ox * params.stride + kx;
                                if iy < params.padding || ix < params.padding {
                                    continue;
                                }
                                let iy = iy - params.padding;
                                let ix = ix - params.padding;
                                if iy >= h || ix >= w {
                                    continue;
                                }
                                acc += input.get(&[ni, ci, iy, ix]) * weight.get(&[fi, ci, ky, kx]);
                            }
                        }
                    }
                    out.set(&[ni, fi, oy, ox], acc);
                }
            }
        }
    }
    out
}

/// Gradients produced by the convolution backward pass.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub d_input: Tensor,
    /// Gradient w.r.t. the weights, `[F, C, K, K]`.
    pub d_weight: Tensor,
    /// Gradient w.r.t. the bias, `[F]`.
    pub d_bias: Tensor,
}

/// 2-D convolution backward: given the upstream gradient `d_out`
/// (`[N, F, H', W']`), computes the gradients w.r.t. input, weights and bias.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
) -> Conv2dGrads {
    let (n, c, h, w) = shape4(input);
    let (f, _, k, _) = shape4(weight);
    let (_, _, oh, ow) = shape4(d_out);
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros(&[f]);
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = d_out.get(&[ni, fi, oy, ox]);
                    d_bias.add_at(&[fi], g);
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * params.stride + ky;
                                let ix = ox * params.stride + kx;
                                if iy < params.padding || ix < params.padding {
                                    continue;
                                }
                                let iy = iy - params.padding;
                                let ix = ix - params.padding;
                                if iy >= h || ix >= w {
                                    continue;
                                }
                                d_input
                                    .add_at(&[ni, ci, iy, ix], g * weight.get(&[fi, ci, ky, kx]));
                                d_weight
                                    .add_at(&[fi, ci, ky, kx], g * input.get(&[ni, ci, iy, ix]));
                            }
                        }
                    }
                }
            }
        }
    }
    Conv2dGrads { d_input, d_weight, d_bias }
}

/// Max-pooling forward over `k × k` windows with stride `k` (the common
/// non-overlapping configuration). Returns the output and the argmax indices
/// needed by the backward pass.
pub fn maxpool2d_forward(input: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = shape4(input);
    let oh = h / k;
    let ow = w / k;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let mut oi = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * k + ky;
                            let ix = ox * k + kx;
                            let v = input.get(&[ni, ci, iy, ix]);
                            if v > best {
                                best = v;
                                best_idx = ((ni * c + ci) * h + iy) * w + ix;
                            }
                        }
                    }
                    out.set(&[ni, ci, oy, ox], best);
                    argmax[oi] = best_idx;
                    oi += 1;
                }
            }
        }
    }
    (out, argmax)
}

/// Max-pooling backward: routes each upstream gradient to the argmax element.
pub fn maxpool2d_backward(input_shape: &[usize], argmax: &[usize], d_out: &Tensor) -> Tensor {
    let mut d_input = Tensor::zeros(input_shape);
    for (g, &idx) in d_out.data().iter().zip(argmax.iter()) {
        d_input.data_mut()[idx] += g;
    }
    d_input
}

/// ReLU forward.
pub fn relu_forward(input: &Tensor) -> Tensor {
    Tensor::from_vec(input.shape(), input.data().iter().map(|&v| v.max(0.0)).collect())
}

/// ReLU backward: passes the gradient where the input was positive.
pub fn relu_backward(input: &Tensor, d_out: &Tensor) -> Tensor {
    assert_eq!(input.shape(), d_out.shape());
    Tensor::from_vec(
        input.shape(),
        input
            .data()
            .iter()
            .zip(d_out.data().iter())
            .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
            .collect(),
    )
}

/// Fully-connected forward: input `[N, In]`, weight `[In, Out]`, bias `[Out]`
/// → output `[N, Out]`.
pub fn linear_forward(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let (n, d_in) = shape2(input);
    let (w_in, d_out) = shape2(weight);
    assert_eq!(d_in, w_in, "feature mismatch in linear layer");
    assert_eq!(bias.shape(), &[d_out]);
    let mut out = Tensor::zeros(&[n, d_out]);
    for ni in 0..n {
        for o in 0..d_out {
            let mut acc = bias.get(&[o]);
            for i in 0..d_in {
                acc += input.get(&[ni, i]) * weight.get(&[i, o]);
            }
            out.set(&[ni, o], acc);
        }
    }
    out
}

/// Gradients of the fully-connected layer.
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient w.r.t. the input, `[N, In]`.
    pub d_input: Tensor,
    /// Gradient w.r.t. the weights, `[In, Out]`.
    pub d_weight: Tensor,
    /// Gradient w.r.t. the bias, `[Out]`.
    pub d_bias: Tensor,
}

/// Fully-connected backward.
pub fn linear_backward(input: &Tensor, weight: &Tensor, d_out: &Tensor) -> LinearGrads {
    let (n, d_in) = shape2(input);
    let (_, d_o) = shape2(weight);
    let mut d_input = Tensor::zeros(&[n, d_in]);
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros(&[d_o]);
    for ni in 0..n {
        for o in 0..d_o {
            let g = d_out.get(&[ni, o]);
            d_bias.add_at(&[o], g);
            for i in 0..d_in {
                d_input.add_at(&[ni, i], g * weight.get(&[i, o]));
                d_weight.add_at(&[i, o], g * input.get(&[ni, i]));
            }
        }
    }
    LinearGrads { d_input, d_weight, d_bias }
}

/// Softmax + cross-entropy loss over logits `[N, Classes]` with integer
/// labels. Returns `(mean loss, gradient w.r.t. logits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, classes) = shape2(logits);
    assert_eq!(labels.len(), n, "one label per sample required");
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(&[n, classes]);
    for (ni, &label) in labels.iter().enumerate() {
        let row: Vec<f32> = (0..classes).map(|c| logits.get(&[ni, c])).collect();
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        assert!(label < classes, "label out of range");
        loss -= (exps[label] / sum).ln();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            let target = if c == label { 1.0 } else { 0.0 };
            grad.set(&[ni, c], (p - target) / n as f32);
        }
    }
    (loss / n as f32, grad)
}

/// SGD update: `w ← w − lr · g`.
pub fn sgd_step(weight: &mut Tensor, grad: &Tensor, lr: f32) {
    weight.axpy(-lr, grad);
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    let (n, c, h, w) = shape4(input);
    let mut out = Tensor::zeros(&[n, c]);
    let denom = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.get(&[ni, ci, y, x]);
                }
            }
            out.set(&[ni, ci], acc / denom);
        }
    }
    out
}

/// Global average pooling backward.
pub fn global_avg_pool_backward(input_shape: &[usize], d_out: &Tensor) -> Tensor {
    let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
    let mut d_input = Tensor::zeros(input_shape);
    let denom = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let g = d_out.get(&[ni, ci]) / denom;
            for y in 0..h {
                for x in 0..w {
                    d_input.set(&[ni, ci, y, x], g);
                }
            }
        }
    }
    d_input
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected a 4-D NCHW tensor, got {:?}", s);
    (s[0], s[1], s[2], s[3])
}

fn shape2(t: &Tensor) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "expected a 2-D tensor, got {:?}", s);
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 and zero bias is the identity.
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let weight = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default());
        assert!(out.approx_eq(&input, 1e-6));
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones, no padding: output = sum of inputs.
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4]);
        let bias = Tensor::from_vec(&[1], vec![0.5]);
        let out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default());
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert!((out.get(&[0, 0, 0, 0]) - 10.5).abs() < 1e-6);
    }

    #[test]
    fn conv_padding_and_stride_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor::random(&[2, 3, 8, 8], 1.0, &mut rng);
        let weight = Tensor::random(&[4, 3, 3, 3], 0.5, &mut rng);
        let bias = Tensor::zeros(&[4]);
        let same = conv2d_forward(&input, &weight, &bias, Conv2dParams { stride: 1, padding: 1 });
        assert_eq!(same.shape(), &[2, 4, 8, 8]);
        let strided =
            conv2d_forward(&input, &weight, &bias, Conv2dParams { stride: 2, padding: 1 });
        assert_eq!(strided.shape(), &[2, 4, 4, 4]);
    }

    /// Numerical gradient check of the convolution backward pass.
    #[test]
    fn conv_backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = Tensor::random(&[1, 2, 4, 4], 1.0, &mut rng);
        let weight = Tensor::random(&[3, 2, 3, 3], 0.5, &mut rng);
        let bias = Tensor::random(&[3], 0.5, &mut rng);
        let params = Conv2dParams { stride: 1, padding: 1 };
        let out = conv2d_forward(&input, &weight, &bias, params);
        // Loss = sum of outputs, so d_out is all ones.
        let d_out = Tensor::full(out.shape(), 1.0);
        let grads = conv2d_backward(&input, &weight, &d_out, params);
        let eps = 1e-2f32;
        // Check a few weight coordinates.
        for &idx in &[0usize, 5, 17, 33] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let up = conv2d_forward(&input, &wp, &bias, params).sum();
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let down = conv2d_forward(&input, &wm, &bias, params).sum();
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.d_weight.data()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "weight grad mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check a few input coordinates.
        for &idx in &[0usize, 7, 15] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let up = conv2d_forward(&ip, &weight, &bias, params).sum();
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let down = conv2d_forward(&im, &weight, &bias, params).sum();
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.d_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "input grad mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_is_linear_in_the_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::random(&[1, 2, 5, 5], 1.0, &mut rng);
        let b = Tensor::random(&[1, 2, 5, 5], 1.0, &mut rng);
        let weight = Tensor::random(&[2, 2, 3, 3], 0.5, &mut rng);
        let zero_bias = Tensor::zeros(&[2]);
        let params = Conv2dParams { stride: 1, padding: 1 };
        let lhs = conv2d_forward(&a.add(&b), &weight, &zero_bias, params);
        let rhs = conv2d_forward(&a, &weight, &zero_bias, params)
            .add(&conv2d_forward(&b, &weight, &zero_bias, params));
        assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (out, argmax) = maxpool2d_forward(&input, 2);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, 12.0, 16.0]);
        let d_out = Tensor::full(&[1, 1, 2, 2], 1.0);
        let d_in = maxpool2d_backward(input.shape(), &argmax, &d_out);
        // Gradient flows only to the four max positions.
        assert_eq!(d_in.sum(), 4.0);
        assert_eq!(d_in.get(&[0, 0, 1, 1]), 1.0);
        assert_eq!(d_in.get(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::full(&[4], 1.0);
        let dx = relu_backward(&x, &g);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn linear_forward_matches_hand_calculation() {
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3], vec![0.1, 0.2, 0.3]);
        let y = linear_forward(&x, &w, &b);
        assert_eq!(y.shape(), &[1, 3]);
        assert!((y.get(&[0, 0]) - 9.1).abs() < 1e-6);
        assert!((y.get(&[0, 1]) - 12.2).abs() < 1e-6);
        assert!((y.get(&[0, 2]) - 15.3).abs() < 1e-6);
    }

    #[test]
    fn linear_backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::random(&[3, 4], 1.0, &mut rng);
        let w = Tensor::random(&[4, 5], 0.5, &mut rng);
        let b = Tensor::random(&[5], 0.5, &mut rng);
        let d_out = Tensor::full(&[3, 5], 1.0);
        let grads = linear_backward(&x, &w, &d_out);
        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 19] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let up = linear_forward(&x, &wp, &b).sum();
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let down = linear_forward(&x, &wm, &b).sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - grads.d_weight.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_cross_entropy_gradient_sums_to_zero_per_sample() {
        let mut rng = StdRng::seed_from_u64(7);
        let logits = Tensor::random(&[4, 6], 2.0, &mut rng);
        let labels = vec![0usize, 3, 5, 2];
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        assert!(loss > 0.0);
        for ni in 0..4 {
            let row_sum: f32 = (0..6).map(|c| grad.get(&[ni, c])).sum();
            assert!(row_sum.abs() < 1e-5);
        }
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let mut logits = Tensor::zeros(&[2, 3]);
        logits.set(&[0, 1], 100.0);
        logits.set(&[1, 2], 100.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut w = Tensor::from_vec(&[2], vec![1.0, -1.0]);
        let g = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        sgd_step(&mut w, &g, 0.1);
        assert!((w.get(&[0]) - 0.95).abs() < 1e-6);
        assert!((w.get(&[1]) + 0.95).abs() < 1e-6);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::from_vec(&[1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let out = global_avg_pool_forward(&input);
        assert_eq!(out.shape(), &[1, 2]);
        assert!((out.get(&[0, 0]) - 2.5).abs() < 1e-6);
        assert!((out.get(&[0, 1]) - 6.5).abs() < 1e-6);
        let d_out = Tensor::full(&[1, 2], 4.0);
        let d_in = global_avg_pool_backward(input.shape(), &d_out);
        assert!((d_in.get(&[0, 0, 0, 0]) - 1.0).abs() < 1e-6);
        assert!((d_in.sum() - 8.0).abs() < 1e-5);
    }
}
