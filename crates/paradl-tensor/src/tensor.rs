//! A minimal dense CPU tensor: row-major `f32` storage with an arbitrary
//! number of dimensions, supporting the indexing, slicing-by-axis and
//! element-wise arithmetic the CNN layers and the parallel decompositions
//! need. Deliberately simple — correctness and clarity over speed — since its
//! job is to be the reference against which the parallel strategies are
//! verified value-by-value (paper §4.5.2).

use std::fmt;

/// A dense row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; len] }
    }

    /// Creates a tensor from raw row-major data; `data.len()` must equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(shape.iter().product::<usize>(), data.len(), "shape/data length mismatch");
        Tensor { shape: shape.to_vec(), data }
    }

    /// Creates a tensor with uniformly distributed values in `[-scale, scale]`
    /// from the given RNG.
    pub fn random<R: rand::Rng>(shape: &[usize], scale: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(-scale..=scale)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape must preserve element count"
        );
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&x, &dim)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(x < dim, "index {x} out of bounds for dim {i} (size {dim})");
            off = off * dim + x;
        }
        off
    }

    /// Element access by multi-dimensional index.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Adds `value` to the element at `idx`.
    pub fn add_at(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] += value;
    }

    /// Element-wise sum with another tensor of identical shape.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place element-wise accumulation.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise scaling by a constant.
    pub fn scale(&self, factor: f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|a| a * factor).collect() }
    }

    /// In-place `self -= factor * other` (the SGD update).
    pub fn axpy(&mut self, factor: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Whether all elements are within `tol` of the other tensor's.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Extracts the sub-tensor `[start, start+len)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.shape.len(), "axis out of range");
        assert!(start + len <= self.shape[axis], "slice out of range");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * self.shape[axis] + start) * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor { shape: out_shape, data }
    }

    /// Concatenates tensors along `axis`; all other dimensions must match.
    pub fn concat_axis(parts: &[Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "cannot concatenate zero tensors");
        let rank = parts[0].shape.len();
        assert!(axis < rank, "axis out of range");
        for p in parts {
            assert_eq!(p.shape.len(), rank, "rank mismatch in concat");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(p.shape[d], parts[0].shape[d], "dim {d} mismatch in concat");
                }
            }
        }
        let mut out_shape = parts[0].shape.clone();
        out_shape[axis] = parts.iter().map(|p| p.shape[axis]).sum();
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_shape.iter().product());
        for o in 0..outer {
            for p in parts {
                let plen = p.shape[axis] * inner;
                let base = o * plen;
                data.extend_from_slice(&p.data[base..base + plen]);
            }
        }
        Tensor { shape: out_shape, data }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn set_and_add_at() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 3.0);
        t.add_at(&[1, 1], 2.0);
        assert_eq!(t.get(&[1, 1]), 5.0);
        assert_eq!(t.sum(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(-0.5, &b);
        assert_eq!(c.data(), &[-4.0, -8.0, -12.0]);
    }

    #[test]
    fn slice_and_concat_roundtrip_axis0() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::random(&[4, 3, 5], 1.0, &mut rng);
        let a = t.slice_axis(0, 0, 2);
        let b = t.slice_axis(0, 2, 2);
        let back = Tensor::concat_axis(&[a, b], 0);
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn slice_and_concat_roundtrip_axis1() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::random(&[2, 6, 3], 1.0, &mut rng);
        let parts: Vec<Tensor> = (0..3).map(|i| t.slice_axis(1, i * 2, 2)).collect();
        let back = Tensor::concat_axis(&parts, 1);
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn slice_axis_extracts_correct_values() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = t.slice_axis(1, 1, 2);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![1.0, 2.5]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.approx_eq(&b, 0.6));
        assert!(!a.approx_eq(&b, 0.4));
    }
}
