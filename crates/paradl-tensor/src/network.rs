//! A small reference CNN (conv → ReLU → maxpool → conv → ReLU → global
//! average pool → fully-connected) with an explicit forward/backward
//! implementation and an SGD training step. This is the sequential baseline
//! the parallel strategies in `paradl-parallel` are verified against.

use crate::ops::{
    conv2d_backward, conv2d_forward, global_avg_pool_backward, global_avg_pool_forward,
    linear_backward, linear_forward, maxpool2d_backward, maxpool2d_forward, relu_backward,
    relu_forward, sgd_step, softmax_cross_entropy, Conv2dParams,
};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the reference CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallCnnConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial side length (must be divisible by 2).
    pub input_side: usize,
    /// Filters of the first convolution.
    pub conv1_filters: usize,
    /// Filters of the second convolution.
    pub conv2_filters: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for SmallCnnConfig {
    fn default() -> Self {
        SmallCnnConfig {
            in_channels: 3,
            input_side: 16,
            conv1_filters: 8,
            conv2_filters: 16,
            classes: 10,
        }
    }
}

/// The learnable parameters of the reference CNN.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallCnn {
    /// Configuration the network was built with.
    pub config: SmallCnnConfig,
    /// First convolution weights `[F1, C, 3, 3]`.
    pub conv1_w: Tensor,
    /// First convolution bias `[F1]`.
    pub conv1_b: Tensor,
    /// Second convolution weights `[F2, F1, 3, 3]`.
    pub conv2_w: Tensor,
    /// Second convolution bias `[F2]`.
    pub conv2_b: Tensor,
    /// Fully-connected weights `[F2, classes]`.
    pub fc_w: Tensor,
    /// Fully-connected bias `[classes]`.
    pub fc_b: Tensor,
}

/// All intermediate activations of one forward pass (needed by backward).
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Network input.
    pub input: Tensor,
    /// conv1 pre-activation.
    pub conv1_out: Tensor,
    /// conv1 ReLU output.
    pub relu1_out: Tensor,
    /// maxpool output.
    pub pool_out: Tensor,
    /// maxpool argmax indices.
    pub pool_argmax: Vec<usize>,
    /// conv2 pre-activation.
    pub conv2_out: Tensor,
    /// conv2 ReLU output.
    pub relu2_out: Tensor,
    /// global-average-pool output `[N, F2]`.
    pub gap_out: Tensor,
    /// Final logits `[N, classes]`.
    pub logits: Tensor,
}

/// Gradients of every parameter, in the same layout as [`SmallCnn`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Gradient of `conv1_w`.
    pub conv1_w: Tensor,
    /// Gradient of `conv1_b`.
    pub conv1_b: Tensor,
    /// Gradient of `conv2_w`.
    pub conv2_w: Tensor,
    /// Gradient of `conv2_b`.
    pub conv2_b: Tensor,
    /// Gradient of `fc_w`.
    pub fc_w: Tensor,
    /// Gradient of `fc_b`.
    pub fc_b: Tensor,
    /// Gradient w.r.t. the network input (used by decomposition checks).
    pub input: Tensor,
}

impl SmallCnn {
    /// Initializes the network with seeded uniform random weights so runs are
    /// reproducible.
    pub fn new(config: SmallCnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = config;
        SmallCnn {
            config: c,
            conv1_w: Tensor::random(&[c.conv1_filters, c.in_channels, 3, 3], 0.2, &mut rng),
            conv1_b: Tensor::random(&[c.conv1_filters], 0.1, &mut rng),
            conv2_w: Tensor::random(&[c.conv2_filters, c.conv1_filters, 3, 3], 0.2, &mut rng),
            conv2_b: Tensor::random(&[c.conv2_filters], 0.1, &mut rng),
            fc_w: Tensor::random(&[c.conv2_filters, c.classes], 0.2, &mut rng),
            fc_b: Tensor::random(&[c.classes], 0.1, &mut rng),
        }
    }

    /// Runs the forward pass for a batch `[N, C, H, W]`, keeping every
    /// intermediate needed by the backward pass.
    pub fn forward(&self, input: &Tensor) -> ForwardTrace {
        let p1 = Conv2dParams { stride: 1, padding: 1 };
        let conv1_out = conv2d_forward(input, &self.conv1_w, &self.conv1_b, p1);
        let relu1_out = relu_forward(&conv1_out);
        let (pool_out, pool_argmax) = maxpool2d_forward(&relu1_out, 2);
        let conv2_out = conv2d_forward(&pool_out, &self.conv2_w, &self.conv2_b, p1);
        let relu2_out = relu_forward(&conv2_out);
        let gap_out = global_avg_pool_forward(&relu2_out);
        let logits = linear_forward(&gap_out, &self.fc_w, &self.fc_b);
        ForwardTrace {
            input: input.clone(),
            conv1_out,
            relu1_out,
            pool_out,
            pool_argmax,
            conv2_out,
            relu2_out,
            gap_out,
            logits,
        }
    }

    /// Runs the backward pass from the loss gradient w.r.t. the logits.
    pub fn backward(&self, trace: &ForwardTrace, d_logits: &Tensor) -> Gradients {
        let p1 = Conv2dParams { stride: 1, padding: 1 };
        let fc = linear_backward(&trace.gap_out, &self.fc_w, d_logits);
        let d_relu2 = global_avg_pool_backward(trace.relu2_out.shape(), &fc.d_input);
        let d_conv2_out = relu_backward(&trace.conv2_out, &d_relu2);
        let conv2 = conv2d_backward(&trace.pool_out, &self.conv2_w, &d_conv2_out, p1);
        let d_relu1 =
            maxpool2d_backward(trace.relu1_out.shape(), &trace.pool_argmax, &conv2.d_input);
        let d_conv1_out = relu_backward(&trace.conv1_out, &d_relu1);
        let conv1 = conv2d_backward(&trace.input, &self.conv1_w, &d_conv1_out, p1);
        Gradients {
            conv1_w: conv1.d_weight,
            conv1_b: conv1.d_bias,
            conv2_w: conv2.d_weight,
            conv2_b: conv2.d_bias,
            fc_w: fc.d_weight,
            fc_b: fc.d_bias,
            input: conv1.d_input,
        }
    }

    /// One full training step on a labelled batch: forward, loss, backward,
    /// SGD update. Returns the mean loss.
    pub fn train_step(&mut self, input: &Tensor, labels: &[usize], lr: f32) -> f32 {
        let trace = self.forward(input);
        let (loss, d_logits) = softmax_cross_entropy(&trace.logits, labels);
        let grads = self.backward(&trace, &d_logits);
        self.apply(&grads, lr);
        loss
    }

    /// Applies an SGD update with the given gradients.
    pub fn apply(&mut self, grads: &Gradients, lr: f32) {
        sgd_step(&mut self.conv1_w, &grads.conv1_w, lr);
        sgd_step(&mut self.conv1_b, &grads.conv1_b, lr);
        sgd_step(&mut self.conv2_w, &grads.conv2_w, lr);
        sgd_step(&mut self.conv2_b, &grads.conv2_b, lr);
        sgd_step(&mut self.fc_w, &grads.fc_w, lr);
        sgd_step(&mut self.fc_b, &grads.fc_b, lr);
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.conv1_w.len()
            + self.conv1_b.len()
            + self.conv2_w.len()
            + self.conv2_b.len()
            + self.fc_w.len()
            + self.fc_b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn batch(config: SmallCnnConfig, n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random(
            &[n, config.in_channels, config.input_side, config.input_side],
            1.0,
            &mut rng,
        );
        let labels = (0..n).map(|_| rng.gen_range(0..config.classes)).collect();
        (x, labels)
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let config = SmallCnnConfig::default();
        let net = SmallCnn::new(config, 42);
        let (x, _) = batch(config, 2, 1);
        let trace = net.forward(&x);
        assert_eq!(trace.conv1_out.shape(), &[2, 8, 16, 16]);
        assert_eq!(trace.pool_out.shape(), &[2, 8, 8, 8]);
        assert_eq!(trace.conv2_out.shape(), &[2, 16, 8, 8]);
        assert_eq!(trace.logits.shape(), &[2, 10]);
    }

    #[test]
    fn forward_is_deterministic_for_same_seed() {
        let config = SmallCnnConfig::default();
        let a = SmallCnn::new(config, 7);
        let b = SmallCnn::new(config, 7);
        let (x, _) = batch(config, 2, 2);
        assert!(a.forward(&x).logits.approx_eq(&b.forward(&x).logits, 0.0));
        let c = SmallCnn::new(config, 8);
        assert!(!a.forward(&x).logits.approx_eq(&c.forward(&x).logits, 1e-6));
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_batch() {
        let config = SmallCnnConfig {
            input_side: 8,
            conv1_filters: 4,
            conv2_filters: 8,
            classes: 4,
            ..Default::default()
        };
        let mut net = SmallCnn::new(config, 3);
        let (x, labels) = batch(config, 4, 5);
        let first = net.train_step(&x, &labels, 0.1);
        let mut last = first;
        for _ in 0..10 {
            last = net.train_step(&x, &labels, 0.1);
        }
        assert!(last < first, "loss should decrease when overfitting one batch: {first} -> {last}");
    }

    #[test]
    fn gradient_of_sum_loss_matches_numerical_check_for_fc_bias() {
        let config = SmallCnnConfig {
            input_side: 8,
            conv1_filters: 4,
            conv2_filters: 6,
            classes: 3,
            ..Default::default()
        };
        let net = SmallCnn::new(config, 11);
        let (x, labels) = batch(config, 2, 12);
        let trace = net.forward(&x);
        let (_, d_logits) = softmax_cross_entropy(&trace.logits, &labels);
        let grads = net.backward(&trace, &d_logits);
        let eps = 1e-2f32;
        for idx in 0..config.classes {
            let mut plus = net.clone();
            plus.fc_b.data_mut()[idx] += eps;
            let (lp, _) = softmax_cross_entropy(&plus.forward(&x).logits, &labels);
            let mut minus = net.clone();
            minus.fc_b.data_mut()[idx] -= eps;
            let (lm, _) = softmax_cross_entropy(&minus.forward(&x).logits, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.fc_b.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "fc bias grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn param_count_matches_hand_calculation() {
        let config = SmallCnnConfig::default();
        let net = SmallCnn::new(config, 1);
        let expected = 8 * 3 * 9 + 8 + 16 * 8 * 9 + 16 + 16 * 10 + 10;
        assert_eq!(net.param_count(), expected);
    }
}
