//! Figure 3: oracle projection vs measured (simulated) time breakdown for
//! ResNet-50, ResNet-152 and VGG16 under the six parallel strategies, with
//! the per-configuration accuracy label. Data/hybrid strategies weak-scale
//! 16→1024 GPUs; filter/channel strong-scale 4→64; pipeline runs on up to 4.

use paradl_bench::{
    compare, figure3_pe_counts, print_comparison_header, print_comparison_row, samples_per_gpu,
};
use paradl_core::prelude::*;
use paradl_sim::OverheadModel;

fn main() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let overheads = OverheadModel::chainermnx_quiet();

    println!("Figure 3 — oracle vs measured per-iteration time breakdown\n");
    print_comparison_header();

    let mut accuracies: Vec<(StrategyKind, f64)> = Vec::new();
    for model in paradl_models::imagenet_models() {
        let spg = samples_per_gpu(&model.name);
        for kind in [
            StrategyKind::Data,
            StrategyKind::Filter,
            StrategyKind::Channel,
            StrategyKind::Pipeline,
            StrategyKind::DataFilter,
            StrategyKind::DataSpatial,
        ] {
            for p in figure3_pe_counts(kind) {
                // Weak scaling for data/hybrids, strong scaling (fixed batch)
                // for filter/channel/pipeline, as in the paper.
                let batch = match kind {
                    StrategyKind::Filter | StrategyKind::Channel | StrategyKind::Pipeline => 32,
                    _ => spg * p,
                };
                let config = TrainingConfig::imagenet(batch);
                let oracle = Oracle::new(&model, &device, &cluster, config);
                let strategy = oracle.instantiate(kind, p, 8);
                if strategy.validate(&model, batch).is_err() {
                    continue;
                }
                let point = compare(&model, &device, &cluster, &config, strategy, overheads, 2);
                print_comparison_row(&model.name, &point);
                accuracies.push((kind, point.accuracy()));
            }
        }
        println!();
    }

    println!("Per-strategy average accuracy (paper reports 96.1% d, 85.6% f, 73.7% c, 90.2% p, 91.4% df, 83.5% ds):");
    for kind in StrategyKind::EVALUATED {
        let vals: Vec<f64> =
            accuracies.iter().filter(|(k, _)| *k == kind).map(|(_, a)| *a).collect();
        if !vals.is_empty() {
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            println!("  {:<14} {:>5.1}%", kind.to_string(), mean * 100.0);
        }
    }
    let overall: f64 =
        accuracies.iter().map(|(_, a)| *a).sum::<f64>() / accuracies.len().max(1) as f64;
    println!("\nOverall average accuracy: {:.1}%  (paper: 86.74%)", overall * 100.0);
}
