//! §5.2 headline numbers: the oracle's average projection accuracy against
//! the measured (simulated) runs, per strategy and overall — the paper
//! reports 86.74% on average and up to 97.57% for data parallelism.

use paradl_bench::{compare, figure3_pe_counts, samples_per_gpu};
use paradl_core::prelude::*;
use paradl_sim::OverheadModel;
use std::collections::BTreeMap;

fn main() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let overheads = OverheadModel::chainermnx_quiet();

    let mut per_strategy: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for model in paradl_models::imagenet_models() {
        let spg = samples_per_gpu(&model.name);
        for kind in StrategyKind::EVALUATED {
            for p in figure3_pe_counts(kind) {
                let batch = match kind {
                    StrategyKind::Filter | StrategyKind::Channel | StrategyKind::Pipeline => 32,
                    _ => spg * p,
                };
                let config = TrainingConfig::imagenet(batch);
                let oracle = Oracle::new(&model, &device, &cluster, config);
                let strategy = oracle.instantiate(kind, p, 8);
                if strategy.validate(&model, batch).is_err() {
                    continue;
                }
                let point = compare(&model, &device, &cluster, &config, strategy, overheads, 2);
                per_strategy.entry(kind.to_string()).or_default().push(point.accuracy());
            }
        }
    }

    println!("ParaDL projection accuracy vs simulated measurements\n");
    println!("{:<16} {:>8} {:>10} {:>10}", "strategy", "points", "mean", "max");
    let mut all = Vec::new();
    for (name, accs) in &per_strategy {
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let max = accs.iter().cloned().fold(0.0, f64::max);
        println!("{:<16} {:>8} {:>9.1}% {:>9.1}%", name, accs.len(), mean * 100.0, max * 100.0);
        all.extend_from_slice(accs);
    }
    let overall = all.iter().sum::<f64>() / all.len().max(1) as f64;
    let best = all.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nOverall: {:.2}% average, {:.2}% best   (paper: 86.74% average, 97.57% best)",
        overall * 100.0,
        best * 100.0
    );
}
