//! Kernel-trajectory summary: times the analytic candidate-evaluation
//! kernel (`paradl_core::kernel` — static dominance bounds, branchless mask
//! filtering, coefficient-reconstructed communication times, incremental
//! cost deltas) against the pre-kernel *mechanical* evaluation
//! (`GridSweep::run_mechanical`: reference enumeration, separate
//! memory/bound prep calls, one full estimate per candidate) on the same
//! paper-scale grid `bench_grid_summary` sweeps, sweeps the evaluation
//! chunk granularity, and writes `BENCH_kernel.json` so CI tracks the
//! candidates/sec trajectory next to `BENCH_search.json`/`BENCH_grid.json`.
//!
//! Run with: `cargo run --release -p paradl-bench --bin bench_kernel_summary`
//!
//! With `PARADL_ASSERT_SPEEDUP=1` the kernel-stage throughput floor —
//! ≥ 5× the committed 27.9 M candidates/s end-to-end grid number — is
//! enforced (opt-in, as wall-clock numbers are noisy on shared runners).

use paradl_bench::cluster_axis;
use paradl_core::prelude::*;

/// The committed end-to-end `BENCH_grid` throughput the kernel trajectory
/// is gated against (ROADMAP: 0.26 M/s reference → 2.6 M/s top-k →
/// 27.9 M/s amortized grid → this kernel).
const GRID_BASELINE_CANDIDATES_PER_SEC: f64 = 27_900_000.0;

/// Per-stage minima across `iters` timed runs: each stage is an
/// independent measurement of the same deterministic work, so the
/// per-stage minimum estimates its noise-free cost the same way `best_of`
/// does for whole runs.
fn best_stages(iters: usize, mut f: impl FnMut() -> GridStageTimings) -> GridStageTimings {
    let mut best = f();
    for _ in 1..iters {
        let t = f();
        best.caches = best.caches.min(t.caches);
        best.supersets = best.supersets.min(t.supersets);
        best.engines = best.engines.min(t.engines);
        best.preps = best.preps.min(t.preps);
        best.comms = best.comms.min(t.comms);
        best.cells = best.cells.min(t.cells);
        best.eval = best.eval.min(t.eval);
        best.finish = best.finish.min(t.finish);
    }
    best
}

fn total_seconds(t: &GridStageTimings) -> f64 {
    t.caches + t.supersets + t.engines + t.preps + t.comms + t.cells + t.eval + t.finish
}

fn main() {
    // The exact grid of bench_grid_summary: all four Table-5 model
    // families × six global batches (1536 caps at CosmoFlow's dataset
    // size) × three cluster variants, exhaustive PE sweep, top-10.
    let batches = [128usize, 256, 512, 768, 1024, 1536];
    let constraints = Constraints {
        max_pes: 16 * 1024,
        pipeline_segments: 512,
        sweep: PeSweep::Exhaustive,
        top_k: Some(10),
        ..Constraints::default()
    };
    let mut grid = QueryGrid::new(constraints).with_batches(batches);
    for cluster in cluster_axis() {
        grid = grid.with_cluster(cluster);
    }
    for model in paradl_models::paper_models() {
        let base = if model.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(batches[0])
        } else {
            TrainingConfig::imagenet(batches[0])
        };
        grid = grid.with_model(model, base);
    }

    let sweep = GridSweep::new();
    let (warm, _) = sweep.run_timed(&grid);
    let queries = grid.num_queries();
    let total: usize = warm.cells.iter().map(|c| c.report.enumerated).sum();
    let evaluated: usize = warm.cells.iter().map(|c| c.report.evaluated()).sum();
    let mem_pruned: usize = warm.cells.iter().map(|c| c.report.pruned_by_memory).sum();
    let dom_pruned: usize = warm.cells.iter().map(|c| c.report.pruned_by_dominance).sum();
    println!(
        "grid: {} models x {} batches x {} clusters = {} queries, {} candidates total",
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        queries,
        total
    );
    println!(
        "accounting: {evaluated} evaluated | {mem_pruned} memory-pruned | {dom_pruned} dominance-pruned"
    );
    assert_eq!(evaluated + mem_pruned + dom_pruned, total, "kernel accounting must close");

    // Winner sanity: the analytic kernel and the mechanical baseline must
    // agree on every cell's winner before their times are compared (full
    // equivalence is property-tested; this guards the benchmarked
    // configuration itself).
    let (mech_warm, _) = sweep.run_mechanical(&grid);
    for (a, b) in warm.cells.iter().zip(&mech_warm.cells) {
        assert_eq!(a.query, b.query);
        assert_eq!(
            a.report.best().map(|c| c.strategy),
            b.report.best().map(|c| c.strategy),
            "kernel winner diverged from the mechanical baseline at {:?}",
            a.query
        );
    }

    let iters = 3;
    let analytic = best_stages(iters, || sweep.run_timed(&grid).1);
    let mechanical = best_stages(iters, || sweep.run_mechanical(&grid).1);
    let (t_analytic, t_mech) = (total_seconds(&analytic), total_seconds(&mechanical));
    let rate = |t: f64| total as f64 / t;

    let stage_row = |name: &str, a: f64, m: f64| {
        println!("  {name:>10}: {:>8.1} ms  vs mechanical {:>8.1} ms", a * 1e3, m * 1e3);
    };
    println!("\nper-stage (best of {iters}, analytic vs mechanical):");
    stage_row("supersets", analytic.supersets, mechanical.supersets);
    stage_row("engines", analytic.engines, mechanical.engines);
    stage_row("preps", analytic.preps, mechanical.preps);
    stage_row("comms", analytic.comms, mechanical.comms);
    stage_row("cells", analytic.cells, mechanical.cells);
    stage_row("eval", analytic.eval, mechanical.eval);
    stage_row("finish", analytic.finish, mechanical.finish);

    let kernel_rate = rate(analytic.eval);
    let eval_speedup = mechanical.eval / analytic.eval;
    let end_speedup = t_mech / t_analytic;
    println!(
        "\nmechanical sweep : {:>8.1} ms  ({:>10.0} candidates/s end-to-end)",
        t_mech * 1e3,
        rate(t_mech)
    );
    println!(
        "analytic sweep   : {:>8.1} ms  ({:>10.0} candidates/s end-to-end)  {end_speedup:.1}x",
        t_analytic * 1e3,
        rate(t_analytic)
    );
    println!(
        "kernel eval stage: {:>8.1} ms  ({:>10.0} candidates/s)  {eval_speedup:.1}x over mechanical eval",
        analytic.eval * 1e3,
        kernel_rate
    );
    println!(
        "trajectory       : 0.26M/s reference -> 2.6M/s top-k -> 27.9M/s grid -> {:.1}M/s kernel ({:.1}x grid)",
        kernel_rate / 1e6,
        kernel_rate / GRID_BASELINE_CANDIDATES_PER_SEC
    );

    // Chunk-granularity sweep: full end-to-end runs at each size, so the
    // recorded numbers capture dispatch overhead and cache effects the
    // eval stage sees in practice. DEFAULT_CHUNK is pinned from this table.
    let chunks = [2048usize, 4096, 8192, 16384, 32768];
    let mut chunk_rows = String::new();
    println!("\nchunk sweep (eval stage, best of 2):");
    for (i, &c) in chunks.iter().enumerate() {
        let s = GridSweep::new().with_chunk(c);
        let t = best_stages(2, || s.run_timed(&grid).1);
        println!(
            "  chunk {c:>6}: eval {:>8.1} ms ({:>10.0} candidates/s)",
            t.eval * 1e3,
            rate(t.eval)
        );
        let sep = if i + 1 < chunks.len() { "," } else { "" };
        chunk_rows.push_str(&format!(
            "    {{\"chunk\": {c}, \"eval_seconds\": {:.6}, \"candidates_per_sec\": {:.0}}}{sep}\n",
            t.eval,
            rate(t.eval)
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernel\",\n",
            "  \"queries\": {},\n",
            "  \"total_candidates\": {},\n",
            "  \"evaluated\": {},\n",
            "  \"pruned_by_memory\": {},\n",
            "  \"pruned_by_dominance\": {},\n",
            "  \"grid_baseline_candidates_per_sec\": {:.0},\n",
            "  \"mechanical_seconds\": {:.6},\n",
            "  \"analytic_seconds\": {:.6},\n",
            "  \"mechanical_eval_seconds\": {:.6},\n",
            "  \"kernel_eval_seconds\": {:.6},\n",
            "  \"kernel_candidates_per_sec\": {:.0},\n",
            "  \"speedup_vs_grid_baseline\": {:.2},\n",
            "  \"speedup_eval_vs_mechanical\": {:.2},\n",
            "  \"speedup_end_to_end\": {:.2},\n",
            "  \"stages_analytic\": {{\"supersets\": {:.6}, \"engines\": {:.6}, \"preps\": {:.6}, \"comms\": {:.6}, \"cells\": {:.6}, \"eval\": {:.6}, \"finish\": {:.6}}},\n",
            "  \"stages_mechanical\": {{\"supersets\": {:.6}, \"engines\": {:.6}, \"preps\": {:.6}, \"comms\": {:.6}, \"cells\": {:.6}, \"eval\": {:.6}, \"finish\": {:.6}}},\n",
            "  \"chunk_sweep\": [\n{}  ]\n",
            "}}\n"
        ),
        queries,
        total,
        evaluated,
        mem_pruned,
        dom_pruned,
        GRID_BASELINE_CANDIDATES_PER_SEC,
        t_mech,
        t_analytic,
        mechanical.eval,
        analytic.eval,
        kernel_rate,
        kernel_rate / GRID_BASELINE_CANDIDATES_PER_SEC,
        eval_speedup,
        end_speedup,
        analytic.supersets,
        analytic.engines,
        analytic.preps,
        analytic.comms,
        analytic.cells,
        analytic.eval,
        analytic.finish,
        mechanical.supersets,
        mechanical.engines,
        mechanical.preps,
        mechanical.comms,
        mechanical.cells,
        mechanical.eval,
        mechanical.finish,
        chunk_rows,
    );
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");

    // Opt-in acceptance floor: the kernel must process candidates at
    // ≥ 5× the committed end-to-end grid throughput it grew out of.
    if std::env::var_os("PARADL_ASSERT_SPEEDUP").is_some() {
        let floor = 5.0 * GRID_BASELINE_CANDIDATES_PER_SEC;
        assert!(
            kernel_rate >= floor,
            "acceptance regression: kernel {kernel_rate:.0} candidates/s < 5x grid baseline ({floor:.0})"
        );
        println!(
            "kernel floor asserted: {:.1}x >= 5x grid baseline",
            kernel_rate / GRID_BASELINE_CANDIDATES_PER_SEC
        );
    }
}
