//! Figure 8: computation breakdown of filter parallelism on ResNet-50 — the
//! convolution kernels do not scale perfectly when their filters are split,
//! and the split/concat glue is non-trivial, so the measured compute sits
//! above the ideal `1/p` line.

use paradl_core::prelude::*;
use paradl_sim::{OverheadModel, Simulator};

fn main() {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let simulator = Simulator::new(&device, &cluster)
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(3);

    let serial = oracle.project(Strategy::Serial).cost.per_iteration();

    println!("Figure 8 — filter-parallel computation breakdown, ResNet-50 (batch 32)\n");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>14}",
        "GPUs", "ideal comp (s)", "measured comp (s)", "overhead (s)", "scaling eff."
    );
    for p in [1usize, 4, 16, 64] {
        let ideal = serial.forward_backward / p as f64;
        let measured = if p == 1 {
            simulator.simulate(&model, &config, Strategy::Serial)
        } else {
            simulator.simulate(&model, &config, Strategy::Filter { p })
        };
        let meas_comp = measured.per_iteration.forward_backward;
        println!(
            "{:>6} {:>16.4} {:>16.4} {:>16.4} {:>13.1}%",
            p,
            ideal,
            meas_comp,
            meas_comp - ideal,
            ideal / meas_comp * 100.0
        );
    }
    println!("\nThe widening gap between the ideal 1/p compute and the measured compute is the");
    println!("implementation overhead (imperfect conv splitting + split/concat) of Figure 8.");
}
