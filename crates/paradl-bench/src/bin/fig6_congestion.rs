//! Figure 6: network congestion scatter — measured collective times versus
//! the theoretical-bandwidth prediction, for the data-parallel Allreduce of
//! ResNet-50 on 512 GPUs and the filter-parallel Allgather of VGG16 on 64
//! GPUs. Congested outliers (other jobs sharing the fabric) push some points
//! several times above the analytical line.

use paradl_core::prelude::*;
use paradl_net::{ring_allgather, ring_allreduce, schedule_time, FatTree};
use paradl_sim::{OverheadModel, OverheadSampler};

fn scatter(
    label: &str,
    topo: &FatTree,
    ranks: &[usize],
    bytes: f64,
    analytic: f64,
    allgather: bool,
    runs: usize,
) {
    println!("{label}: message {:.1} MB over {} GPUs", bytes / 1e6, ranks.len());
    println!("{:>5} {:>16} {:>16} {:>8}", "run", "analytic (ms)", "measured (ms)", "ratio");
    let mut sampler = OverheadSampler::new(OverheadModel::chainermnx(), 0xF16);
    for run in 0..runs {
        let schedule =
            if allgather { ring_allgather(ranks, bytes) } else { ring_allreduce(ranks, bytes) };
        let base = schedule_time(topo, &schedule);
        let measured = base * sampler.congestion_multiplier();
        println!(
            "{:>5} {:>16.3} {:>16.3} {:>7.2}x",
            run,
            analytic * 1e3,
            measured * 1e3,
            measured / analytic
        );
    }
    println!();
}

fn main() {
    println!("Figure 6 — network congestion: measured collectives vs theoretical bandwidth\n");
    let cluster = ClusterSpec::paper_system();

    // ResNet-50, 512 GPUs, data parallelism: gradient-exchange Allreduce.
    let resnet = paradl_models::resnet50();
    let bytes = resnet.total_weights() as f64 * 4.0;
    let p = 512usize;
    let topo = FatTree::paper_system(p);
    let ranks: Vec<usize> = (0..p).collect();
    let analytic = cluster.comm_model(p).allreduce(p, bytes);
    scatter(
        "ResNet-50, 512 GPUs, data-parallel Allreduce",
        &topo,
        &ranks,
        bytes,
        analytic,
        false,
        12,
    );

    // VGG16, 64 GPUs, filter parallelism: the Allgather of the largest
    // activation (conv1_1 output, B = 32).
    let vgg = paradl_models::vgg16();
    let act = vgg.layers[0].output_size() as f64 * 32.0 * 4.0;
    let p = 64usize;
    let topo = FatTree::paper_system(p);
    let ranks: Vec<usize> = (0..p).collect();
    let analytic = cluster.comm_model(p).allgather(p, act);
    scatter("VGG16, 64 GPUs, filter-parallel Allgather", &topo, &ranks, act, analytic, true, 12);

    println!("Points near ratio 1.0 follow the theoretical bandwidth line; congested runs");
    println!("reach up to ~4x, matching the outliers the paper observes on the shared system.");
}
