//! Grid-throughput summary: times a paper-scale configuration grid (all
//! four Table-5 model families × four global batch sizes × two clusters,
//! exhaustive PE sweep) through the amortized `GridSweep` against the naive
//! per-query baseline (one `Oracle::search` — and thus one engine build and
//! one candidate enumeration — per cell), plus the rebatch-vs-rebuild and
//! shared-vs-private-table micro numbers, and writes a machine-readable
//! `BENCH_grid.json` so CI can track the performance trajectory next to
//! `BENCH_search.json`.
//!
//! Run with: `cargo run --release -p paradl-bench --bin bench_grid_summary`
//!
//! With `PARADL_ASSERT_SPEEDUP=1` the ≥ 5× amortization floor is enforced
//! (kept opt-in because wall-clock ratios are noisy on shared CI runners).

use paradl_bench::cluster_axis;
use paradl_core::prelude::*;
use std::time::Instant;

/// Times `f` over `iters` runs and returns the best-of wall-clock seconds
/// (minimum is the standard low-noise estimator for compute-bound loops).
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // 1536 caps the axis at CosmoFlow's dataset size (D = 1584, Table 5):
    // batch > dataset is rejected at engine construction since the vetted
    // admission pass, so the axis must stay valid for every model.
    let batches = [128usize, 256, 512, 768, 1024, 1536];
    let constraints = Constraints {
        max_pes: 16 * 1024,
        pipeline_segments: 512,
        sweep: PeSweep::Exhaustive,
        top_k: Some(10),
        ..Constraints::default()
    };
    let mut grid = QueryGrid::new(constraints).with_batches(batches);
    for cluster in cluster_axis() {
        grid = grid.with_cluster(cluster);
    }
    for model in paradl_models::paper_models() {
        let base = if model.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(batches[0])
        } else {
            TrainingConfig::imagenet(batches[0])
        };
        grid = grid.with_model(model, base);
    }

    let sweep = GridSweep::new();
    let warm = sweep.run(&grid);
    let queries = grid.num_queries();
    let total_candidates: usize = warm.cells.iter().map(|c| c.report.enumerated).sum();
    println!(
        "grid: {} models x {} batches x {} clusters = {} queries, {} candidates total",
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        queries,
        total_candidates
    );

    let iters = 3;
    let t_per_query = best_of(iters, || sweep.run_per_query(&grid));
    let t_grid = best_of(iters, || sweep.run(&grid));
    let speedup = t_per_query / t_grid;
    let rate = |t: f64| total_candidates as f64 / t;
    println!(
        "per-query sweep  : {:>8.1} ms  ({:>10.0} candidates/s)",
        t_per_query * 1e3,
        rate(t_per_query)
    );
    println!(
        "grid sweep       : {:>8.1} ms  ({:>10.0} candidates/s)  {speedup:.1}x",
        t_grid * 1e3,
        rate(t_grid)
    );

    // Micro numbers: incremental rebatch vs full engine rebuild, and engine
    // construction with a shared cluster cache vs private table derivation.
    let resnet = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let t_rebuild =
        best_of(50, || CostEngine::new(&resnet, &device, &cluster, TrainingConfig::imagenet(1024)));
    let mut engine = CostEngine::new(&resnet, &device, &cluster, TrainingConfig::imagenet(512))
        .expect("engine builds");
    let mut flip = false;
    let t_rebatch = best_of(50, || {
        flip = !flip;
        engine.rebatch(if flip { 1024 } else { 512 });
    });
    let cache = cluster.cache();
    let t_cached_build = best_of(50, || {
        CostEngine::with_cache(&resnet, &device, &cluster, TrainingConfig::imagenet(1024), &cache)
    });
    println!(
        "resnet50 engine  : rebuild {:>7.1} us | cached build {:>7.1} us | rebatch {:>7.2} us ({:.0}x)",
        t_rebuild * 1e6,
        t_cached_build * 1e6,
        t_rebatch * 1e6,
        t_rebuild / t_rebatch
    );

    // Sanity: the amortized sweep must agree with the per-query baseline on
    // the winners (full equivalence is property-tested; this guards the
    // benchmarked configuration itself).
    let baseline = sweep.run_per_query(&grid);
    for (a, b) in warm.cells.iter().zip(&baseline.cells) {
        assert_eq!(a.query, b.query);
        assert_eq!(
            a.report.best().map(|c| c.strategy),
            b.report.best().map(|c| c.strategy),
            "winner diverged at {:?}",
            a.query
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"grid\",\n",
            "  \"models\": {},\n",
            "  \"batches\": {},\n",
            "  \"clusters\": {},\n",
            "  \"queries\": {},\n",
            "  \"total_candidates\": {},\n",
            "  \"per_query_seconds\": {:.6},\n",
            "  \"grid_seconds\": {:.6},\n",
            "  \"per_query_candidates_per_sec\": {:.0},\n",
            "  \"grid_candidates_per_sec\": {:.0},\n",
            "  \"speedup_grid\": {:.2},\n",
            "  \"engine_rebuild_seconds\": {:.9},\n",
            "  \"engine_cached_build_seconds\": {:.9},\n",
            "  \"engine_rebatch_seconds\": {:.9},\n",
            "  \"speedup_rebatch\": {:.2}\n",
            "}}\n"
        ),
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        queries,
        total_candidates,
        t_per_query,
        t_grid,
        rate(t_per_query),
        rate(t_grid),
        speedup,
        t_rebuild,
        t_cached_build,
        t_rebatch,
        t_rebuild / t_rebatch,
    );
    std::fs::write("BENCH_grid.json", &json).expect("write BENCH_grid.json");
    println!("\nwrote BENCH_grid.json");

    // Wall-clock ratios are noisy on shared CI runners, so the ≥ 5× floor is
    // only enforced when explicitly requested (local acceptance runs); CI
    // tracks the trajectory through the uploaded JSON instead.
    if std::env::var_os("PARADL_ASSERT_SPEEDUP").is_some() {
        assert!(
            speedup >= 5.0,
            "acceptance regression: grid sweep speedup {speedup:.2}x < 5x over per-query engine builds"
        );
        println!("speedup floor asserted: {speedup:.1}x >= 5x");
    }
}
