//! Search-throughput summary: times the reference search path against the
//! engine-backed search (full ranking and branch-and-bound top-k) on the
//! CosmoFlow-scale exhaustive space and writes a machine-readable
//! `BENCH_search.json` so CI can track the performance trajectory.
//!
//! Run with: `cargo run --release -p paradl-bench --bin bench_search_summary`

use paradl_core::prelude::*;
use std::time::Instant;

/// Times `f` over `iters` runs and returns the best-of wall-clock seconds
/// (minimum is the standard low-noise estimator for compute-bound loops).
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let model = paradl_models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(1024);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let constraints = Constraints {
        max_pes: 16 * 1024,
        pipeline_segments: 512,
        sweep: PeSweep::Exhaustive,
        ..Constraints::default()
    };
    let topk = Constraints { top_k: Some(10), ..constraints };

    let candidates = oracle.strategy_space(&constraints).len();
    println!(
        "{}: {} candidates (exhaustive sweep, max_pes = {})",
        model.name, candidates, constraints.max_pes
    );

    let iters = 5;
    let t_reference = best_of(iters, || oracle.search_reference(&constraints));
    let t_engine = best_of(iters, || oracle.search(&constraints));
    let t_topk = best_of(iters, || oracle.search(&topk));
    let report = oracle.search(&topk);

    let rate = |t: f64| candidates as f64 / t;
    let speedup_full = t_reference / t_engine;
    let speedup_topk = t_reference / t_topk;
    println!(
        "reference search : {:>8.1} ms  ({:>10.0} candidates/s)",
        t_reference * 1e3,
        rate(t_reference)
    );
    println!(
        "engine search    : {:>8.1} ms  ({:>10.0} candidates/s)  {speedup_full:.1}x",
        t_engine * 1e3,
        rate(t_engine)
    );
    println!(
        "engine + top-10  : {:>8.1} ms  ({:>10.0} candidates/s)  {speedup_topk:.1}x",
        t_topk * 1e3,
        rate(t_topk)
    );
    println!(
        "top-k run: {} memory-pruned, {} bound-pruned, {} costed; winner {}",
        report.pruned_by_memory,
        report.pruned_by_bound,
        report.evaluated(),
        report.best().map(|b| b.strategy.to_string()).unwrap_or_else(|| "none".into()),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"search\",\n",
            "  \"model\": \"{}\",\n",
            "  \"candidates\": {},\n",
            "  \"reference_seconds\": {:.6},\n",
            "  \"engine_seconds\": {:.6},\n",
            "  \"engine_topk_seconds\": {:.6},\n",
            "  \"reference_candidates_per_sec\": {:.0},\n",
            "  \"engine_candidates_per_sec\": {:.0},\n",
            "  \"engine_topk_candidates_per_sec\": {:.0},\n",
            "  \"speedup_engine_full\": {:.2},\n",
            "  \"speedup_engine_topk\": {:.2},\n",
            "  \"pruned_by_memory\": {},\n",
            "  \"pruned_by_bound\": {}\n",
            "}}\n"
        ),
        model.name,
        candidates,
        t_reference,
        t_engine,
        t_topk,
        rate(t_reference),
        rate(t_engine),
        rate(t_topk),
        speedup_full,
        speedup_topk,
        report.pruned_by_memory,
        report.pruned_by_bound,
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("\nwrote BENCH_search.json");

    // Wall-clock ratios are noisy on shared CI runners, so the ≥ 5× floor is
    // only enforced when explicitly requested (local acceptance runs); CI
    // tracks the trajectory through the uploaded JSON instead.
    if std::env::var_os("PARADL_ASSERT_SPEEDUP").is_some() {
        assert!(
            speedup_topk >= 5.0,
            "acceptance regression: engine+pruning speedup {speedup_topk:.2}x < 5x over the reference path"
        );
        println!("speedup floor asserted: {speedup_topk:.1}x >= 5x");
    }
}
