//! Table 6: the summary of detected limitations (L) and bottlenecks (B) per
//! parallel strategy, training phase and component, plus a quantitative
//! diagnosis of each strategy on ResNet-50 at 64 GPUs.

use paradl_core::limits::{diagnose_default, table6};
use paradl_core::prelude::*;

fn main() {
    println!("Table 6 — limitations (L) and bottlenecks (B)\n");
    for issue in table6() {
        println!("{issue}");
    }

    println!("\nQuantitative diagnosis (ResNet-50, 64 GPUs, weak scaling):");
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    for proj in oracle.survey(64, &Constraints::default()) {
        let diag = diagnose_default(&proj.cost);
        println!("\n  {}:", proj.cost.strategy);
        if diag.findings.is_empty() {
            println!("    no dominant limitation detected");
        }
        for (finding, value) in diag.findings {
            println!("    - {finding} ({:.0}%)", value * 100.0);
        }
    }
}
