//! Table 5: the models and datasets used in the evaluation — sample counts,
//! sample shapes, parameter counts and layer counts.

use paradl_data::DatasetSpec;

fn main() {
    println!("Table 5 — models and datasets\n");
    println!(
        "{:<12} {:<12} {:>12} {:>18} {:>12} {:>8}",
        "model", "dataset", "#samples", "sample shape", "#params", "#layers"
    );
    let imagenet = DatasetSpec::imagenet();
    let cosmo = DatasetSpec::cosmoflow();
    for model in paradl_models::paper_models() {
        let (ds_name, samples, shape) = if model.name.starts_with("CosmoFlow") {
            (cosmo.name.clone(), cosmo.samples, format!("{}x{:?}", cosmo.channels, cosmo.spatial))
        } else {
            (
                imagenet.name.clone(),
                imagenet.samples,
                format!("{}x{:?}", imagenet.channels, imagenet.spatial),
            )
        };
        println!(
            "{:<12} {:<12} {:>12} {:>18} {:>11.1}M {:>8}",
            model.name,
            ds_name,
            samples,
            shape,
            model.total_params() as f64 / 1e6,
            model.num_layers()
        );
    }
}
