//! Oracle-vs-simulator conformance summary (§5.2): sweeps a paper-scale
//! configuration grid (all four Table-5 model families × three global batch
//! sizes × three cluster variants = 36 cells) through the amortized
//! `GridSweep`, replays every cell's top-10 winners through the simulator,
//! and prints the §5.2-shaped fidelity tables — per-strategy-family signed
//! error and APE distribution, the paper's accuracy metric, and the
//! rank correlation between the oracle's candidate ordering and the
//! simulated ordering. Writes a machine-readable `BENCH_sim.json` so CI can
//! track the fidelity trajectory next to `BENCH_search.json` /
//! `BENCH_grid.json`.
//!
//! Run with: `cargo run --release -p paradl-bench --bin bench_sim_summary`
//!
//! With `PARADL_ASSERT_FIDELITY=1` the fidelity floor is enforced (overall
//! accuracy, APE ceiling, rank-correlation floor); kept opt-in so local
//! experiments with other overhead models don't trip it accidentally.

use paradl_bench::cluster_axis;
use paradl_core::prelude::*;
use paradl_sim::{Conformance, OverheadModel};
use std::time::Instant;

fn main() {
    // The paper's powers-of-two sweep to 256 PEs keeps each replay's
    // link-level collective schedules tractable (the simulator routes every
    // transfer through the fat-tree; a 1024-rank ring is ~2 s per replay).
    // The batch axis tops out at 256 so CosmoFlow's activations still fit a
    // 16 GiB V100 within that budget — every one of the 36 cells must
    // produce replayable winners.
    let batches = [64usize, 128, 256];
    let constraints = Constraints {
        max_pes: 256,
        top_k: Some(10),
        sweep: PeSweep::PowersOfTwo,
        ..Constraints::default()
    };
    let mut grid = QueryGrid::new(constraints).with_batches(batches);
    for cluster in cluster_axis() {
        grid = grid.with_cluster(cluster);
    }
    for model in paradl_models::paper_models() {
        let base = if model.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(batches[0])
        } else {
            TrainingConfig::imagenet(batches[0])
        };
        grid = grid.with_model(model, base);
    }
    println!(
        "conformance grid: {} models x {} batches x {} clusters = {} cells",
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        grid.num_queries()
    );

    let t0 = Instant::now();
    let sweep = GridSweep::new().run(&grid);
    let sweep_seconds = t0.elapsed().as_secs_f64();

    let harness = Conformance::new()
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(2)
        .with_replay_top(10)
        .with_seed(0x5EED);
    let t1 = Instant::now();
    let report = harness.validate_sweep(&grid, &sweep).expect("grid has feasible winners");
    let replay_seconds = t1.elapsed().as_secs_f64();

    println!(
        "oracle sweep {:.2} s, {} replays in {:.2} s ({:.0} ms/replay)\n",
        sweep_seconds,
        report.num_samples(),
        replay_seconds,
        replay_seconds * 1e3 / report.num_samples() as f64
    );

    println!(
        "{:<14} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "family", "samples", "signed", "meanAPE", "p50", "p90", "maxAPE", "accuracy"
    );
    let row = |name: &str, s: &ErrorStats| {
        println!(
            "{:<14} {:>7} {:>+9.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
            name,
            s.samples,
            s.mean_signed_error * 100.0,
            s.mean_ape * 100.0,
            s.p50_ape * 100.0,
            s.p90_ape * 100.0,
            s.max_ape * 100.0,
            s.mean_accuracy * 100.0
        );
    };
    for family in &report.families {
        row(&family.family.to_string(), &family.stats);
    }
    row("overall", &report.overall);

    let rho = report.mean_rank_correlation.expect("multi-candidate cells");
    let rho_cells = report.cells.iter().filter(|c| c.rank_correlation.is_some()).count();
    println!(
        "\nmean Spearman rho (oracle order vs simulated order): {:.3} over {} cells",
        rho, rho_cells
    );
    println!("paper §5.2 reference: 86.74% average accuracy, data parallelism predicted best");

    let family_json: Vec<String> = report
        .families
        .iter()
        .map(|f| {
            format!(
                concat!(
                    "    {{\"family\": \"{}\", \"samples\": {}, ",
                    "\"mean_signed_error\": {:.6}, \"mean_ape\": {:.6}, ",
                    "\"p50_ape\": {:.6}, \"p90_ape\": {:.6}, \"max_ape\": {:.6}, ",
                    "\"mean_accuracy\": {:.6}}}"
                ),
                f.family,
                f.stats.samples,
                f.stats.mean_signed_error,
                f.stats.mean_ape,
                f.stats.p50_ape,
                f.stats.p90_ape,
                f.stats.max_ape,
                f.stats.mean_accuracy
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim_conformance\",\n",
            "  \"cells\": {},\n",
            "  \"replayed_winners\": {},\n",
            "  \"replay_top\": {},\n",
            "  \"sample_iterations\": {},\n",
            "  \"sweep_seconds\": {:.6},\n",
            "  \"replay_seconds\": {:.6},\n",
            "  \"mean_rank_correlation\": {:.6},\n",
            "  \"rank_correlation_cells\": {},\n",
            "  \"overall\": {{\"samples\": {}, \"mean_signed_error\": {:.6}, ",
            "\"mean_ape\": {:.6}, \"p50_ape\": {:.6}, \"p90_ape\": {:.6}, ",
            "\"max_ape\": {:.6}, \"mean_accuracy\": {:.6}}},\n",
            "  \"families\": [\n{}\n  ]\n",
            "}}\n"
        ),
        report.cells.len(),
        report.num_samples(),
        harness.replay_top,
        harness.sample_iterations,
        sweep_seconds,
        replay_seconds,
        rho,
        rho_cells,
        report.overall.samples,
        report.overall.mean_signed_error,
        report.overall.mean_ape,
        report.overall.p50_ape,
        report.overall.p90_ape,
        report.overall.max_ape,
        report.overall.mean_accuracy,
        family_json.join(",\n"),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");

    // Fidelity floors, opt-in (PARADL_ASSERT_FIDELITY=1): the simulator is
    // deterministic for the fixed seed, so unlike the wall-clock speedup
    // floors these are stable across machines — they catch any change that
    // degrades the oracle's agreement with the measured side.
    if std::env::var_os("PARADL_ASSERT_FIDELITY").is_some() {
        assert!(
            report.cells.len() >= 36,
            "conformance regression: only {} grid cells (< 36)",
            report.cells.len()
        );
        assert!(
            report.overall.mean_accuracy >= 0.60,
            "fidelity regression: overall accuracy {:.1}% < 60%",
            report.overall.mean_accuracy * 100.0
        );
        assert!(
            report.overall.mean_ape <= 0.40,
            "fidelity regression: overall mean APE {:.1}% > 40%",
            report.overall.mean_ape * 100.0
        );
        assert!(rho >= 0.50, "fidelity regression: mean rank correlation {rho:.3} < 0.5");
        println!(
            "fidelity floors asserted: accuracy {:.1}% >= 60%, APE {:.1}% <= 40%, rho {:.3} >= 0.5",
            report.overall.mean_accuracy * 100.0,
            report.overall.mean_ape * 100.0,
            rho
        );
    }
}
