//! Oracle-vs-simulator conformance summary (§5.2), now a *closed* loop:
//! sweeps a paper-scale configuration grid (all four Table-5 model families
//! × three global batch sizes × three cluster variants = 36 cells) through
//! the amortized `GridSweep`, replays every cell's top-10 winners through
//! the simulator, prints the §5.2-shaped fidelity tables — then fits a
//! per-family overhead [`Calibration`] on those very replays and re-runs
//! the comparison calibrated. Both snapshots (and the fitted scales) go
//! into `BENCH_sim.json`, which is committed at the repo root so the
//! fidelity trajectory is visible between PRs; CI diffs a fresh run against
//! the committed file for reproducibility.
//!
//! Run with: `cargo run --release -p paradl-bench --bin bench_sim_summary`
//!
//! With `PARADL_ASSERT_FIDELITY=1` the fidelity floors are enforced: the
//! uncalibrated baseline floors, plus the calibrated ratchet — ≥ 70%
//! accuracy for *every* family, mean Spearman ρ ≥ 0.7, the `data+filter`
//! bias bound, and no family below its uncalibrated accuracy. Kept opt-in
//! so local experiments with other overhead models don't trip it.

use paradl_bench::cluster_axis;
use paradl_core::prelude::*;
use paradl_sim::{Conformance, OverheadModel};
use std::time::Instant;

fn main() {
    // The paper's powers-of-two sweep to 256 PEs keeps each replay's
    // link-level collective schedules tractable (the simulator routes every
    // transfer through the fat-tree; a 1024-rank ring is ~2 s per replay).
    // The batch axis tops out at 256 so CosmoFlow's activations still fit a
    // 16 GiB V100 within that budget — every one of the 36 cells must
    // produce replayable winners.
    let batches = [64usize, 128, 256];
    let constraints = Constraints {
        max_pes: 256,
        top_k: Some(10),
        sweep: PeSweep::PowersOfTwo,
        ..Constraints::default()
    };
    let mut grid = QueryGrid::new(constraints).with_batches(batches);
    for cluster in cluster_axis() {
        grid = grid.with_cluster(cluster);
    }
    for model in paradl_models::paper_models() {
        let base = if model.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(batches[0])
        } else {
            TrainingConfig::imagenet(batches[0])
        };
        grid = grid.with_model(model, base);
    }
    println!(
        "conformance grid: {} models x {} batches x {} clusters = {} cells",
        grid.models().len(),
        grid.batches().len(),
        grid.clusters().len(),
        grid.num_queries()
    );

    let t0 = Instant::now();
    let sweep = GridSweep::new().run(&grid);
    let sweep_seconds = t0.elapsed().as_secs_f64();

    let harness = Conformance::new()
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(2)
        .with_replay_top(10)
        .with_seed(0x5EED);
    let t1 = Instant::now();
    let report = harness.validate_sweep(&grid, &sweep).expect("grid has feasible winners");
    let replay_seconds = t1.elapsed().as_secs_f64();

    println!(
        "oracle sweep {:.2} s, {} replays in {:.2} s ({:.0} ms/replay)\n",
        sweep_seconds,
        report.num_samples(),
        replay_seconds,
        replay_seconds * 1e3 / report.num_samples() as f64
    );

    println!("=== uncalibrated ===");
    print_tables(&report);

    // Close the loop: fit per-family overhead scales on the same replay
    // population (identical derived seeds — the measured side of the
    // calibrated re-run is byte-identical to the uncalibrated one), then
    // re-validate with calibrated projections.
    let t2 = Instant::now();
    let calibration = harness.fit(&grid, &sweep).expect("winners to fit on");
    let calibrated = harness
        .validate_sweep_calibrated(&grid, &sweep, &calibration)
        .expect("grid has feasible winners");
    let calibrate_seconds = t2.elapsed().as_secs_f64();

    println!("\n=== calibrated (fit + re-run in {calibrate_seconds:.2} s) ===");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "family",
        "compute\u{d7}",
        "grad\u{d7}",
        "fbc\u{d7}",
        "halo\u{d7}",
        "p2p\u{d7}",
        "iter(ms)",
        "gradsplit",
        "samples"
    );
    for kind in StrategyKind::ALL {
        let s = calibration.scale_for(kind);
        if s.samples == 0 {
            continue;
        }
        println!(
            "{:<14} {:>9.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>9.4} {:>9.4} {:>8}",
            kind.to_string(),
            s.compute_scale,
            s.grad_scale,
            s.fbc_scale,
            s.halo_scale,
            s.p2p_scale,
            s.iteration_overhead * 1e3,
            s.grad_split_scale,
            s.samples
        );
    }
    println!();
    print_tables(&calibrated);
    println!("paper §5.2 reference: 86.74% average accuracy, data parallelism predicted best");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim_conformance\",\n",
            "  \"cells\": {},\n",
            "  \"replayed_winners\": {},\n",
            "  \"replay_top\": {},\n",
            "  \"sample_iterations\": {},\n",
            "  \"sweep_seconds\": {:.6},\n",
            "  \"replay_seconds\": {:.6},\n",
            "  \"calibrate_seconds\": {:.6},\n",
            "  \"uncalibrated\": {},\n",
            "  \"calibrated\": {},\n",
            "  \"calibration\": {}\n",
            "}}\n"
        ),
        report.cells.len(),
        report.num_samples(),
        harness.replay_top,
        harness.sample_iterations,
        sweep_seconds,
        replay_seconds,
        calibrate_seconds,
        snapshot_json(&report),
        snapshot_json(&calibrated),
        calibration.to_json().render(),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");

    // Fidelity floors, opt-in (PARADL_ASSERT_FIDELITY=1): the simulator is
    // deterministic for the fixed seed, so unlike the wall-clock speedup
    // floors these are stable across machines — they catch any change that
    // degrades the oracle's agreement with the measured side.
    if std::env::var_os("PARADL_ASSERT_FIDELITY").is_some() {
        assert!(
            report.cells.len() >= 36,
            "conformance regression: only {} grid cells (< 36)",
            report.cells.len()
        );
        assert!(
            report.overall.mean_accuracy >= 0.60,
            "fidelity regression: uncalibrated overall accuracy {:.1}% < 60%",
            report.overall.mean_accuracy * 100.0
        );
        assert!(
            report.overall.mean_ape <= 0.40,
            "fidelity regression: uncalibrated overall mean APE {:.1}% > 40%",
            report.overall.mean_ape * 100.0
        );
        let rho = report.mean_rank_correlation.expect("multi-candidate cells");
        assert!(rho >= 0.50, "fidelity regression: uncalibrated mean rho {rho:.3} < 0.5");

        // The calibrated ratchet (PR 10): per-family floors, tight rank
        // correlation, a hard bound on the data+filter bias the
        // calibration exists to fix, and a no-regression guarantee.
        for fam in &calibrated.families {
            assert!(
                fam.stats.mean_accuracy >= 0.70,
                "calibrated fidelity regression: {} accuracy {:.1}% < 70%",
                fam.family,
                fam.stats.mean_accuracy * 100.0
            );
            let before = report.family(fam.family).expect("same family set").stats;
            assert!(
                fam.stats.mean_accuracy >= before.mean_accuracy - 1e-9,
                "calibration regressed {}: {:.1}% -> {:.1}%",
                fam.family,
                before.mean_accuracy * 100.0,
                fam.stats.mean_accuracy * 100.0
            );
        }
        let df = calibrated.family(StrategyKind::DataFilter).expect("data+filter replayed").stats;
        assert!(
            df.mean_signed_error.abs() <= 0.15,
            "calibrated data+filter bias {:+.1}% exceeds 15%",
            df.mean_signed_error * 100.0
        );
        let cal_rho = calibrated.mean_rank_correlation.expect("multi-candidate cells");
        assert!(cal_rho >= 0.70, "calibrated fidelity regression: mean rho {cal_rho:.3} < 0.7");
        println!(
            "fidelity floors asserted: uncalibrated accuracy {:.1}% >= 60%, calibrated \
             per-family accuracy >= 70%, data+filter bias {:+.1}% within 15%, rho {:.3} >= 0.7",
            report.overall.mean_accuracy * 100.0,
            df.mean_signed_error * 100.0,
            cal_rho
        );
    }
}

/// Prints the §5.2-shaped per-family and overall tables of one report.
fn print_tables(report: &FidelityReport) {
    println!(
        "{:<14} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "family", "samples", "signed", "meanAPE", "p50", "p90", "maxAPE", "accuracy"
    );
    let row = |name: &str, s: &ErrorStats| {
        println!(
            "{:<14} {:>7} {:>+9.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
            name,
            s.samples,
            s.mean_signed_error * 100.0,
            s.mean_ape * 100.0,
            s.p50_ape * 100.0,
            s.p90_ape * 100.0,
            s.max_ape * 100.0,
            s.mean_accuracy * 100.0
        );
    };
    for family in &report.families {
        row(&family.family.to_string(), &family.stats);
    }
    row("overall", &report.overall);
    let rho_cells = report.cells.iter().filter(|c| c.rank_correlation.is_some()).count();
    match report.mean_rank_correlation {
        Some(rho) => println!(
            "mean Spearman rho (oracle order vs simulated order): {rho:.3} over {rho_cells} cells"
        ),
        None => println!("mean Spearman rho undefined (no multi-candidate cell)"),
    }
}

/// One fidelity snapshot (overall + per-family + rank correlation) as a
/// JSON object string, shared by the uncalibrated and calibrated sections
/// of `BENCH_sim.json`.
fn snapshot_json(report: &FidelityReport) -> String {
    let stats = |s: &ErrorStats| {
        format!(
            concat!(
                "{{\"samples\": {}, \"mean_signed_error\": {:.6}, ",
                "\"mean_ape\": {:.6}, \"p50_ape\": {:.6}, \"p90_ape\": {:.6}, ",
                "\"max_ape\": {:.6}, \"mean_accuracy\": {:.6}}}"
            ),
            s.samples,
            s.mean_signed_error,
            s.mean_ape,
            s.p50_ape,
            s.p90_ape,
            s.max_ape,
            s.mean_accuracy
        )
    };
    let families: Vec<String> = report
        .families
        .iter()
        .map(|f| format!("      {{\"family\": \"{}\", \"stats\": {}}}", f.family, stats(&f.stats)))
        .collect();
    let rho_cells = report.cells.iter().filter(|c| c.rank_correlation.is_some()).count();
    format!(
        concat!(
            "{{\n",
            "    \"mean_rank_correlation\": {:.6},\n",
            "    \"rank_correlation_cells\": {},\n",
            "    \"overall\": {},\n",
            "    \"families\": [\n{}\n    ]\n",
            "  }}"
        ),
        report.mean_rank_correlation.unwrap_or(f64::NAN),
        rho_cells,
        stats(&report.overall),
        families.join(",\n"),
    )
}
