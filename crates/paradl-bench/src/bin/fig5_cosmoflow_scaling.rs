//! Figure 5: Spatial+Data scaling of CosmoFlow — per-epoch time of the hybrid
//! as data groups are added, with the speedup ratio over the pure spatial
//! strategy (the paper's near-perfect scaling curve).

use paradl_core::prelude::*;

fn main() {
    let model = paradl_models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    // Pure spatial baseline: one node (4 GPUs) per sample, batch of 1 sample.
    let base_config = TrainingConfig::cosmoflow(1);
    let oracle = Oracle::new(&model, &device, &cluster, base_config);
    let split = SpatialSplit::balanced_3d(4);
    let spatial = oracle.project(Strategy::Spatial { split }).cost;

    println!("Figure 5 — CosmoFlow Spatial+Data scaling (weak scaling over data groups)\n");
    println!(
        "{:>6} {:>8} {:>18} {:>22} {:>10}",
        "GPUs", "batch", "spatial (s/epoch)", "spatial+data (s/epoch)", "speedup"
    );
    for p1 in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let batch = p1; // one sample per data group (0.25 samples/GPU)
        let config = TrainingConfig::cosmoflow(batch);
        let o = Oracle::new(&model, &device, &cluster, config);
        let ds = o.project(Strategy::DataSpatial { p1, split }).cost;
        println!(
            "{:>6} {:>8} {:>18.1} {:>22.1} {:>9.1}x",
            4 * p1,
            batch,
            spatial.epoch_time(),
            ds.epoch_time(),
            spatial.epoch_time() / ds.epoch_time()
        );
    }
    println!("\nThe speedup column is the label the paper prints above each bar: the hybrid");
    println!("keeps absorbing GPUs while pure spatial parallelism is capped by the volume size.");
}
