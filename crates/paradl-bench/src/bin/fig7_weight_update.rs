//! Figure 7: computation time per epoch broken into forward+backward and
//! weight update — the weight update is non-trivial for large models (the
//! paper measures up to ~15% for VGG16).

use paradl_core::prelude::*;

fn main() {
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();

    println!("Figure 7 — per-epoch computation breakdown (data parallelism, 32 GPUs)\n");
    println!(
        "{:<12} {:>16} {:>16} {:>18}",
        "model", "FW+BW (s)", "weight update (s)", "WU share of compute"
    );
    for model in paradl_models::imagenet_models() {
        let config = TrainingConfig::imagenet(32 * 32);
        let est = estimate(&model, &device, &cluster, &config, Strategy::Data { p: 32 });
        let share = est.per_epoch.weight_update / est.per_epoch.compute();
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>17.1}%",
            model.name,
            est.per_epoch.forward_backward,
            est.per_epoch.weight_update,
            share * 100.0
        );
    }
    println!("\nVGG16's FC-heavy parameter count makes its weight update the largest share,");
    println!("reproducing the trend the paper measures with PyTorch (Figure 7).");
}
