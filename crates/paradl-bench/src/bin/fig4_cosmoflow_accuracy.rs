//! Figure 4: ParaDL prediction accuracy for CosmoFlow with the Data+Spatial
//! hybrid (the only strategy that fits the sample in memory), 16→1024 GPUs.

use paradl_bench::compare;
use paradl_core::prelude::*;
use paradl_sim::OverheadModel;

fn main() {
    let model = paradl_models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();

    println!("Figure 4 — CosmoFlow Data+Spatial prediction accuracy\n");
    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>10}",
        "GPUs", "batch", "projected (s/it)", "measured (s/it)", "accuracy"
    );
    let mut accs = Vec::new();
    // One node (4 GPUs) per spatial group, one sample per node (0.25/GPU).
    for p1 in [4usize, 16, 64, 256] {
        let p = 4 * p1;
        let batch = p1; // one sample per spatial group
        let config = TrainingConfig::cosmoflow(batch);
        let strategy = Strategy::DataSpatial { p1, split: SpatialSplit::balanced_3d(4) };
        let point = compare(
            &model,
            &device,
            &cluster,
            &config,
            strategy,
            OverheadModel::chainermnx_quiet(),
            2,
        );
        println!(
            "{:>6} {:>8} {:>16.3} {:>16.3} {:>9.1}%",
            p,
            batch,
            point.projected.total(),
            point.measured.total(),
            point.accuracy() * 100.0
        );
        accs.push(point.accuracy());
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    println!("\nAverage CosmoFlow accuracy: {:.1}%  (paper: 74.14%)", mean * 100.0);
}
