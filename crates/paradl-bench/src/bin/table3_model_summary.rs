//! Table 3: the analytical model itself — per-strategy per-epoch computation
//! time, communication time, maximum memory per PE and the scaling limit,
//! evaluated symbolically on ResNet-50 so the relative structure of the
//! formulas is visible as numbers.

use paradl_core::prelude::*;

fn main() {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let p = 16usize;
    let config = TrainingConfig::imagenet(32 * p);
    let oracle = Oracle::new(&model, &device, &cluster, config);

    println!(
        "Table 3 — analytical model evaluated on {} (p = {p}, B = {})\n",
        model.name, config.batch_size
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>12}",
        "strategy", "T_comp (s/ep)", "T_comm (s/ep)", "mem/PE (GB)", "max PEs"
    );
    let strategies = [
        (Strategy::Serial, StrategyKind::Serial),
        (Strategy::Data { p }, StrategyKind::Data),
        (Strategy::Spatial { split: SpatialSplit::balanced_2d(p) }, StrategyKind::Spatial),
        (Strategy::Pipeline { p: 4, segments: 8 }, StrategyKind::Pipeline),
        (Strategy::Filter { p }, StrategyKind::Filter),
        (Strategy::Channel { p }, StrategyKind::Channel),
        (Strategy::DataFilter { p1: p / 4, p2: 4 }, StrategyKind::DataFilter),
        (
            Strategy::DataSpatial { p1: p / 4, split: SpatialSplit::balanced_2d(4) },
            StrategyKind::DataSpatial,
        ),
    ];
    // All rows share one configuration, so evaluate them through the
    // precomputed cost engine (one tabulation pass, O(1) per row).
    let engine = oracle.engine();
    for (strategy, kind) in strategies {
        let est = engine.estimate(strategy);
        println!(
            "{:<24} {:>14.1} {:>14.1} {:>14.2} {:>12}",
            strategy.to_string(),
            est.per_epoch.compute(),
            est.per_epoch.communication(),
            est.memory_per_pe_bytes / 1e9,
            engine.limits().max_pes(config.batch_size, kind)
        );
    }
}
