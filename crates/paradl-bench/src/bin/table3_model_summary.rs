//! Table 3: the analytical model itself — per-strategy per-epoch computation
//! time, communication time, maximum memory per PE and the scaling limit,
//! evaluated symbolically on ResNet-50 so the relative structure of the
//! formulas is visible as numbers — followed by a best-strategy summary of
//! every Table-5 model across a batch sweep, answered by one amortized
//! `GridSweep` instead of per-model oracle rebuilds.

use paradl_core::prelude::*;

fn main() {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let p = 16usize;
    let config = TrainingConfig::imagenet(32 * p);
    let oracle = Oracle::new(&model, &device, &cluster, config);

    println!(
        "Table 3 — analytical model evaluated on {} (p = {p}, B = {})\n",
        model.name, config.batch_size
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>12}",
        "strategy", "T_comp (s/ep)", "T_comm (s/ep)", "mem/PE (GB)", "max PEs"
    );
    let strategies = [
        (Strategy::Serial, StrategyKind::Serial),
        (Strategy::Data { p }, StrategyKind::Data),
        (Strategy::Spatial { split: SpatialSplit::balanced_2d(p) }, StrategyKind::Spatial),
        (Strategy::Pipeline { p: 4, segments: 8 }, StrategyKind::Pipeline),
        (Strategy::Filter { p }, StrategyKind::Filter),
        (Strategy::Channel { p }, StrategyKind::Channel),
        (Strategy::DataFilter { p1: p / 4, p2: 4 }, StrategyKind::DataFilter),
        (
            Strategy::DataSpatial { p1: p / 4, split: SpatialSplit::balanced_2d(4) },
            StrategyKind::DataSpatial,
        ),
    ];
    // All rows share one configuration, so evaluate them through the
    // precomputed cost engine (one tabulation pass, O(1) per row).
    let engine = oracle.engine();
    for (strategy, kind) in strategies {
        let est = engine.estimate(strategy);
        println!(
            "{:<24} {:>14.1} {:>14.1} {:>14.2} {:>12}",
            strategy.to_string(),
            est.per_epoch.compute(),
            est.per_epoch.communication(),
            est.memory_per_pe_bytes / 1e9,
            engine.limits().max_pes(config.batch_size, kind)
        );
    }

    // The same configuration through the canonical Query API: what the
    // oracle would actually suggest for it, constraints applied.
    let suggest = Query::default()
        .with_constraints(Constraints { max_pes: 1024, ..Constraints::default() })
        .with_mode(QueryMode::Suggest);
    match oracle.answer(&suggest).expect("oracle engine build failed") {
        QueryAnswer::Suggestion(Some(best)) => println!(
            "\nsuggested (max_pes = 1024): {:<28} {:>10.2} s/epoch",
            best.cost.strategy.to_string(),
            best.cost.epoch_time()
        ),
        QueryAnswer::Suggestion(None) => println!("\nsuggested: no feasible strategy"),
        _ => unreachable!("a Suggest query answers with a suggestion"),
    }

    // Best strategy per Table-5 model × global batch on the paper system,
    // answered as one batched QueryGrid: engines, cluster tables and
    // candidate enumerations are amortized across all cells by the
    // GridSweep instead of being rebuilt per query.
    let batches = [256usize, 512, 1024];
    let constraints = Constraints { max_pes: 1024, top_k: Some(1), ..Constraints::default() };
    let mut grid = QueryGrid::new(constraints).with_batches(batches).with_cluster(cluster.clone());
    let models = paradl_models::paper_models();
    for m in &models {
        let base = if m.name.starts_with("CosmoFlow") {
            TrainingConfig::cosmoflow(batches[0])
        } else {
            TrainingConfig::imagenet(batches[0])
        };
        grid = grid.with_model(m.clone(), base);
    }
    let report = GridSweep::new().run(&grid);

    println!(
        "\nBest strategy per model × batch (GridSweep over the Table-5 zoo, max_pes = {})\n",
        constraints.max_pes
    );
    println!("{:<14} {:>6} {:<28} {:>6} {:>14}", "model", "B", "best strategy", "PEs", "epoch (s)");
    for cell in &report.cells {
        let name = &grid.models()[cell.query.model].model.name;
        match cell.report.best() {
            Some(best) => println!(
                "{:<14} {:>6} {:<28} {:>6} {:>14.2}",
                name,
                cell.query.batch,
                best.strategy.to_string(),
                best.strategy.total_pes(),
                best.epoch_time()
            ),
            None => println!("{:<14} {:>6} {:<28}", name, cell.query.batch, "infeasible"),
        }
    }
}
