//! # paradl-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index), plus Criterion
//! benchmarks of the oracle, the collective schedules, the simulator and the
//! tensor engine. Each `src/bin/*.rs` binary prints the rows/series of one
//! paper artifact; this library holds the pieces they share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use paradl_core::prelude::*;
use paradl_sim::{OverheadModel, Simulator};

/// One oracle-vs-measured comparison point, the unit of Figures 3 and 4.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonPoint {
    /// Number of GPUs.
    pub pes: usize,
    /// Global batch size used.
    pub batch: usize,
    /// Strategy evaluated.
    pub strategy: Strategy,
    /// Oracle projection, per iteration.
    pub projected: PhaseBreakdown,
    /// Simulated measurement, per iteration.
    pub measured: PhaseBreakdown,
}

impl ComparisonPoint {
    /// Projection accuracy of this point (the label above each Figure 3 bar).
    pub fn accuracy(&self) -> f64 {
        projection_accuracy(self.projected.total(), self.measured.total())
    }
}

/// Compares the oracle against the simulator for one configuration.
pub fn compare(
    model: &Model,
    device: &DeviceProfile,
    cluster: &ClusterSpec,
    config: &TrainingConfig,
    strategy: Strategy,
    overheads: OverheadModel,
    samples: usize,
) -> ComparisonPoint {
    let projected = estimate(model, device, cluster, config, strategy);
    let simulator = Simulator::new(device, cluster).with_overheads(overheads).with_samples(samples);
    let measured = simulator.simulate(model, config, strategy);
    ComparisonPoint {
        pes: strategy.total_pes(),
        batch: config.batch_size,
        strategy,
        projected: projected.per_iteration(),
        measured: measured.per_iteration,
    }
}

/// Prints the header of a Figure-3-style comparison table.
pub fn print_comparison_header() {
    println!(
        "{:<14} {:<24} {:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "model",
        "strategy",
        "GPUs",
        "batch",
        "proj comp",
        "proj comm",
        "meas comp",
        "meas comm",
        "accuracy"
    );
}

/// Prints one Figure-3-style comparison row.
pub fn print_comparison_row(model_name: &str, point: &ComparisonPoint) {
    println!(
        "{:<14} {:<24} {:>6} {:>6} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}%",
        model_name,
        point.strategy.to_string(),
        point.pes,
        point.batch,
        point.projected.compute(),
        point.projected.communication(),
        point.measured.compute(),
        point.measured.communication(),
        point.accuracy() * 100.0
    );
}

/// The per-strategy GPU sweeps used in Figure 3: data and the hybrids scale
/// 16→1024, filter/channel 4→64, pipeline up to 4.
pub fn figure3_pe_counts(kind: StrategyKind) -> Vec<usize> {
    match kind {
        StrategyKind::Data | StrategyKind::DataFilter | StrategyKind::DataSpatial => {
            vec![16, 64, 256, 1024]
        }
        StrategyKind::Filter | StrategyKind::Channel => vec![4, 16, 64],
        StrategyKind::Pipeline => vec![2, 4],
        StrategyKind::Spatial => vec![4, 16, 64],
        StrategyKind::Serial => vec![1],
    }
}

/// Samples per GPU used for weak scaling in the Figure 3 sweeps (the paper's
/// "b" label: the per-GPU batch tuned for device occupancy).
pub fn samples_per_gpu(model_name: &str) -> usize {
    if model_name.contains("VGG") {
        16
    } else if model_name.contains("CosmoFlow") {
        1
    } else {
        32
    }
}

/// The shared cluster axis of the grid-scale summaries (`bench_grid_summary`
/// and `bench_sim_summary`): the paper's evaluation system plus interconnect
/// / node-density variants of it, in the spirit of SPEChpc-style studies
/// sweeping one workload across interconnects and node counts. All three
/// carry the same V100 device profile, so a `GridSweep` shares one prep per
/// (model, batch) across the whole axis — and keeping the axis in one place
/// keeps `BENCH_grid.json` and `BENCH_sim.json` comparable.
pub fn cluster_axis() -> Vec<ClusterSpec> {
    let paper = ClusterSpec::paper_system();
    let fat = ClusterSpec {
        gpus_per_node: 8,
        intra_rack: LinkParams::from_latency_bandwidth(10.0, 25.0),
        inter_rack: LinkParams::from_latency_bandwidth(15.0, 25.0 / 2.0),
        ..ClusterSpec::paper_system()
    };
    let oversubscribed = ClusterSpec {
        inter_rack: LinkParams::from_latency_bandwidth(25.0, 12.5 / 6.0),
        ..ClusterSpec::paper_system()
    };
    vec![paper, fat, oversubscribed]
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_models::SyntheticCnn;

    #[test]
    fn comparison_point_accuracy_is_bounded() {
        let model = SyntheticCnn::tiny().build();
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let config = TrainingConfig::small(4096, 64);
        let point = compare(
            &model,
            &device,
            &cluster,
            &config,
            Strategy::Data { p: 16 },
            OverheadModel::ideal(),
            1,
        );
        let acc = point.accuracy();
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.5);
    }

    #[test]
    fn figure3_sweeps_match_the_paper_ranges() {
        assert_eq!(figure3_pe_counts(StrategyKind::Data).last(), Some(&1024));
        assert_eq!(figure3_pe_counts(StrategyKind::Filter).last(), Some(&64));
        assert!(figure3_pe_counts(StrategyKind::Pipeline).iter().all(|&p| p <= 4));
    }

    #[test]
    fn samples_per_gpu_depend_on_model() {
        assert_eq!(samples_per_gpu("VGG16"), 16);
        assert_eq!(samples_per_gpu("ResNet-50"), 32);
        assert_eq!(samples_per_gpu("CosmoFlow-512"), 1);
    }
}
