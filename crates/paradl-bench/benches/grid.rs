//! Benchmarks of the amortized multi-query grid path: the incremental
//! `CostEngine::rebatch` against a full engine rebuild, engine construction
//! with a shared per-cluster `ClusterCache` against private per-engine
//! table derivation, and a small `GridSweep` against the naive
//! one-search-per-cell baseline. The paper-scale end-to-end numbers (and
//! the ≥ 5× acceptance floor) live in the `bench_grid_summary` binary,
//! which writes `BENCH_grid.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;

fn imagenet_or_cosmoflow(m: &Model, batch: usize) -> TrainingConfig {
    if m.name.starts_with("CosmoFlow") {
        TrainingConfig::cosmoflow(batch)
    } else {
        TrainingConfig::imagenet(batch)
    }
}

fn bench_rebatch_vs_rebuild(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    c.bench_function("grid/resnet50_rebuild_engine", |b| {
        let mut batch = 512usize;
        b.iter(|| {
            batch = if batch == 512 { 1024 } else { 512 };
            std::hint::black_box(CostEngine::new(
                &model,
                &device,
                &cluster,
                TrainingConfig::imagenet(batch),
            ))
        })
    });
    c.bench_function("grid/resnet50_rebatch", |b| {
        let mut engine = CostEngine::new(&model, &device, &cluster, TrainingConfig::imagenet(512))
            .expect("engine builds");
        let mut batch = 512usize;
        b.iter(|| {
            batch = if batch == 512 { 1024 } else { 512 };
            engine.rebatch(batch);
            std::hint::black_box(engine.config().batch_size)
        })
    });
}

fn bench_shared_vs_private_cluster_tables(c: &mut Criterion) {
    let models = paradl_models::paper_models();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    c.bench_function("grid/4models_private_tables", |b| {
        b.iter(|| {
            for m in &models {
                let _ = std::hint::black_box(CostEngine::new(
                    m,
                    &device,
                    &cluster,
                    imagenet_or_cosmoflow(m, 512),
                ));
            }
        })
    });
    c.bench_function("grid/4models_shared_cluster_cache", |b| {
        let cache = cluster.cache();
        b.iter(|| {
            for m in &models {
                let _ = std::hint::black_box(CostEngine::with_cache(
                    m,
                    &device,
                    &cluster,
                    imagenet_or_cosmoflow(m, 512),
                    &cache,
                ));
            }
        })
    });
}

fn small_grid() -> QueryGrid {
    let constraints = Constraints {
        max_pes: 1024,
        top_k: Some(10),
        sweep: PeSweep::Exhaustive,
        ..Constraints::default()
    };
    QueryGrid::new(constraints)
        .with_model(paradl_models::resnet50(), TrainingConfig::imagenet(512))
        .with_model(paradl_models::cosmoflow(), TrainingConfig::cosmoflow(512))
        .with_batches([128usize, 256, 512])
        .with_cluster(ClusterSpec::paper_system())
        .with_cluster(ClusterSpec::workstation(8))
}

fn bench_sweep_vs_per_query(c: &mut Criterion) {
    let grid = small_grid();
    let sweep = GridSweep::new();
    let n = grid.num_queries();
    assert_eq!(n, 12);
    c.bench_function("grid/sweep_12cells_per_query", |b| {
        b.iter(|| std::hint::black_box(sweep.run_per_query(&grid)))
    });
    c.bench_function("grid/sweep_12cells_amortized", |b| {
        b.iter(|| std::hint::black_box(sweep.run(&grid)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rebatch_vs_rebuild, bench_shared_vs_private_cluster_tables, bench_sweep_vs_per_query
);
criterion_main!(benches);
