//! Ablation benchmarks of the design choices called out in DESIGN.md:
//! ring vs tree collectives across message sizes, the contention coefficient
//! φ, the memory-reuse factor γ and the number of pipeline segments S.
//!
//! These are Criterion benchmarks so they run under `cargo bench`, but their
//! interesting output is the *model* values they print once at setup — the
//! timing side just confirms the oracle stays cheap under every setting.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;

fn ablation_ring_vs_tree(c: &mut Criterion) {
    let link = LinkParams::infiniband_edr();
    println!("\n[ablation] ring vs tree Allreduce crossover (64 PEs):");
    for bytes in [4e3, 64e3, 1e6, 16e6, 256e6] {
        let ring =
            CommModel::new(link).with_algorithm(CollectiveAlgorithm::Ring).allreduce(64, bytes);
        let tree = CommModel::new(link)
            .with_algorithm(CollectiveAlgorithm::Tree { chunks: 4 })
            .allreduce(64, bytes);
        println!(
            "  {:>10.0} B: ring {:.3} ms, tree {:.3} ms -> {}",
            bytes,
            ring * 1e3,
            tree * 1e3,
            if ring < tree { "ring wins" } else { "tree wins" }
        );
    }
    let model = CommModel::new(link);
    c.bench_function("ablation/auto_allreduce_64", |b| {
        b.iter(|| std::hint::black_box(model.allreduce(64, 16e6)))
    });
}

fn ablation_contention_phi(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    println!("\n[ablation] contention coefficient φ on the Data+Filter gradient exchange:");
    for phi in [1.0f64, 2.0, 4.0] {
        let comm = cluster.comm_model_inter_group(16, 4).with_contention(phi);
        let t = comm.allreduce(16, model.total_weights() as f64 * 4.0 / 4.0);
        println!("  φ = {phi}: {:.3} ms per iteration", t * 1e3);
    }
    c.bench_function("ablation/df_estimate_phi", |b| {
        b.iter(|| {
            std::hint::black_box(estimate(
                &model,
                &device,
                &cluster,
                &config,
                Strategy::DataFilter { p1: 16, p2: 4 },
            ))
        })
    });
}

fn ablation_gamma_and_segments(c: &mut Criterion) {
    let model = paradl_models::vgg16();
    println!("\n[ablation] memory-reuse factor γ (VGG16, data parallelism, 64 GPUs):");
    for gamma in [0.5f64, 0.7, 1.0] {
        let config = TrainingConfig { memory_reuse: gamma, ..TrainingConfig::imagenet(32 * 64) };
        let mem = memory_per_pe(&model, &config, Strategy::Data { p: 64 });
        println!("  γ = {gamma}: {:.2} GB per GPU", mem / 1e9);
    }
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(64);
    println!("\n[ablation] pipeline segments S (VGG16, 4 stages):");
    for s in [1usize, 2, 4, 8, 16] {
        let est =
            estimate(&model, &device, &cluster, &config, Strategy::Pipeline { p: 4, segments: s });
        println!("  S = {s}: {:.3} s per iteration", est.per_iteration().total());
    }
    c.bench_function("ablation/pipeline_estimate", |b| {
        b.iter(|| {
            std::hint::black_box(estimate(
                &model,
                &device,
                &cluster,
                &config,
                Strategy::Pipeline { p: 4, segments: 8 },
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_ring_vs_tree, ablation_contention_phi, ablation_gamma_and_segments
);
criterion_main!(benches);
