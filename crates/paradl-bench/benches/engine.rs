//! Benchmarks of the precomputed cost engine against the reference search
//! path (the PR-1 implementation, kept as `Oracle::search_reference`): a
//! CosmoFlow-scale exhaustive candidate space (> 10 k candidates at 16 Ki
//! PEs with pipeline × segment cross-products) costed three ways —
//! per-layer reference walk, engine-backed full ranking, and engine-backed
//! branch-and-bound top-k search. The acceptance target of the engine work
//! is `search` ≥ 5× faster than `search_reference` on this space.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;

/// CosmoFlow at 256³ with a 16 Ki PE budget and an exhaustive PE sweep:
/// ≈ 178 k candidates (data × spatial-factorization × pipeline-segment
/// cross-products).
fn cosmoflow_problem() -> (Model, DeviceProfile, ClusterSpec, TrainingConfig, Constraints) {
    let model = paradl_models::cosmoflow();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(1024);
    let constraints = Constraints {
        max_pes: 16 * 1024,
        pipeline_segments: 512,
        sweep: PeSweep::Exhaustive,
        ..Constraints::default()
    };
    (model, device, cluster, config, constraints)
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    let (model, device, cluster, config, constraints) = cosmoflow_problem();
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let n = oracle.strategy_space(&constraints).len();
    assert!(n >= 10_000, "CosmoFlow-scale space too small: {n} candidates");

    c.bench_function("engine/cosmoflow_reference", |b| {
        b.iter(|| std::hint::black_box(oracle.search_reference(&constraints)))
    });
    c.bench_function("engine/cosmoflow_engine_full", |b| {
        b.iter(|| std::hint::black_box(oracle.search(&constraints)))
    });
    let topk = Constraints { top_k: Some(10), ..constraints };
    c.bench_function("engine/cosmoflow_engine_topk10", |b| {
        b.iter(|| std::hint::black_box(oracle.search(&topk)))
    });
}

fn bench_engine_construction(c: &mut Criterion) {
    let (model, device, cluster, config, _) = cosmoflow_problem();
    let oracle = Oracle::new(&model, &device, &cluster, config);
    c.bench_function("engine/cosmoflow_build_engine", |b| {
        b.iter(|| std::hint::black_box(oracle.engine()))
    });
    c.bench_function("engine/resnet50_build_engine", |b| {
        let resnet = paradl_models::resnet50();
        let cfg = TrainingConfig::imagenet(32 * 64);
        let o = Oracle::new(&resnet, &device, &cluster, cfg);
        b.iter(|| std::hint::black_box(o.engine()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_vs_reference, bench_engine_construction
);
criterion_main!(benches);
