//! Criterion benchmarks of the distributed-training simulator: one simulated
//! iteration per strategy (the unit the experiment binaries repeat).

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;
use paradl_sim::{OverheadModel, Simulator};

fn bench_simulated_strategies(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    let sim = Simulator::new(&device, &cluster)
        .with_overheads(OverheadModel::chainermnx_quiet())
        .with_samples(1);

    let cases = [
        ("simulator/resnet50_data_64", Strategy::Data { p: 64 }),
        ("simulator/resnet50_filter_16", Strategy::Filter { p: 16 }),
        ("simulator/resnet50_data_filter_64", Strategy::DataFilter { p1: 16, p2: 4 }),
        ("simulator/resnet50_pipeline_4x8", Strategy::Pipeline { p: 4, segments: 8 }),
    ];
    for (name, strategy) in cases {
        c.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(sim.simulate(&model, &config, strategy)))
        });
    }
}

fn bench_cosmoflow_hybrid(c: &mut Criterion) {
    let model = paradl_models::cosmoflow_small();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::cosmoflow(16);
    let sim = Simulator::new(&device, &cluster).with_samples(1);
    c.bench_function("simulator/cosmoflow_data_spatial_64", |b| {
        b.iter(|| {
            std::hint::black_box(sim.simulate(
                &model,
                &config,
                Strategy::DataSpatial { p1: 16, split: SpatialSplit::balanced_3d(4) },
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulated_strategies, bench_cosmoflow_hybrid
);
criterion_main!(benches);
