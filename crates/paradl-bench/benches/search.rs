//! Benchmarks of the exhaustive strategy-search engine: the rayon-parallel
//! [`Oracle::search`] against the single-threaded `search_serial` reference
//! (the speedup target), plus the cost of enumerating the candidate space
//! alone.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;

fn bench_search_parallel_vs_serial(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    let oracle = Oracle::new(&model, &device, &cluster, config);
    let constraints = Constraints::default();

    c.bench_function("search/resnet50_parallel", |b| {
        b.iter(|| std::hint::black_box(oracle.search(&constraints)))
    });
    c.bench_function("search/resnet50_serial", |b| {
        b.iter(|| std::hint::black_box(oracle.search_serial(&constraints)))
    });
}

fn bench_space_enumeration(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let constraints = Constraints::default();
    c.bench_function("search/resnet50_enumerate_space", |b| {
        b.iter(|| std::hint::black_box(StrategySpace::new(&model, 32 * 64, &constraints).len()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search_parallel_vs_serial, bench_space_enumeration
);
criterion_main!(benches);
