//! Criterion benchmarks of the CPU tensor engine and the threaded parallel
//! decompositions built on it.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_parallel::{data_parallel_gradients, filter_parallel_forward};
use paradl_tensor::{
    conv2d_forward, softmax_cross_entropy, Conv2dParams, SmallCnn, SmallCnnConfig, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::random(&[4, 16, 16, 16], 1.0, &mut rng);
    let weight = Tensor::random(&[16, 16, 3, 3], 0.2, &mut rng);
    let bias = Tensor::zeros(&[16]);
    c.bench_function("tensor/conv2d_4x16x16x16", |b| {
        b.iter(|| {
            std::hint::black_box(conv2d_forward(
                &input,
                &weight,
                &bias,
                Conv2dParams { stride: 1, padding: 1 },
            ))
        })
    });
}

fn setup_net() -> (SmallCnn, Tensor, Vec<usize>) {
    let config = SmallCnnConfig {
        in_channels: 4,
        input_side: 16,
        conv1_filters: 8,
        conv2_filters: 16,
        classes: 8,
    };
    let net = SmallCnn::new(config, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::random(&[8, 4, 16, 16], 1.0, &mut rng);
    let labels = (0..8).map(|_| rng.gen_range(0..8)).collect();
    (net, x, labels)
}

fn bench_training_step(c: &mut Criterion) {
    let (net, x, labels) = setup_net();
    c.bench_function("tensor/sequential_forward_backward", |b| {
        b.iter(|| {
            let trace = net.forward(&x);
            let (_, d_logits) = softmax_cross_entropy(&trace.logits, &labels);
            std::hint::black_box(net.backward(&trace, &d_logits))
        })
    });
}

fn bench_parallel_strategies(c: &mut Criterion) {
    let (net, x, labels) = setup_net();
    c.bench_function("parallel/data_parallel_4_workers", |b| {
        b.iter(|| std::hint::black_box(data_parallel_gradients(&net, &x, &labels, 4)))
    });
    c.bench_function("parallel/filter_parallel_4_workers", |b| {
        b.iter(|| std::hint::black_box(filter_parallel_forward(&net, &x, 4)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conv, bench_training_step, bench_parallel_strategies
);
criterion_main!(benches);
