//! Criterion benchmarks of the collective-schedule generation and the
//! link-level contention accounting — the inner loop of the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_net::{hierarchical_allreduce, ring_allgather, ring_allreduce, schedule_time, FatTree};

fn bench_schedule_generation(c: &mut Criterion) {
    let ranks_64: Vec<usize> = (0..64).collect();
    let ranks_512: Vec<usize> = (0..512).collect();
    c.bench_function("collectives/ring_allreduce_schedule_64", |b| {
        b.iter(|| std::hint::black_box(ring_allreduce(&ranks_64, 100e6)))
    });
    c.bench_function("collectives/ring_allreduce_schedule_512", |b| {
        b.iter(|| std::hint::black_box(ring_allreduce(&ranks_512, 100e6)))
    });
}

fn bench_schedule_timing(c: &mut Criterion) {
    let topo_64 = FatTree::paper_system(64);
    let topo_512 = FatTree::paper_system(512);
    let ranks_64: Vec<usize> = (0..64).collect();
    let ranks_512: Vec<usize> = (0..512).collect();
    let sched_64 = ring_allreduce(&ranks_64, 100e6);
    let sched_512 = ring_allgather(&ranks_512, 100e6);
    c.bench_function("collectives/schedule_time_allreduce_64", |b| {
        b.iter(|| std::hint::black_box(schedule_time(&topo_64, &sched_64)))
    });
    c.bench_function("collectives/schedule_time_allgather_512", |b| {
        b.iter(|| std::hint::black_box(schedule_time(&topo_512, &sched_512)))
    });
    // Hierarchical Allreduce over 16 nodes of 4 GPUs (Data+Spatial GE phase).
    let groups: Vec<Vec<usize>> = (0..16).map(|n| (0..4).map(|g| n * 4 + g).collect()).collect();
    let hier = hierarchical_allreduce(&groups, 100e6);
    c.bench_function("collectives/schedule_time_hierarchical_64", |b| {
        b.iter(|| std::hint::black_box(schedule_time(&topo_64, &hier)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedule_generation, bench_schedule_timing
);
criterion_main!(benches);
