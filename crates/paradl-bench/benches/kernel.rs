//! Benchmarks of the analytic candidate-evaluation kernel: the fused
//! coefficient-reconstruction pass (static dominance bounds, branchless
//! survivor compaction, lazy estimates) against the mechanical
//! full-estimate-per-candidate baseline, and the evaluation chunk
//! granularity. The paper-scale end-to-end numbers (and the ≥ 5×
//! acceptance floor over the committed grid throughput) live in the
//! `bench_kernel_summary` binary, which writes `BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use paradl_core::prelude::*;

fn small_grid() -> QueryGrid {
    let constraints = Constraints {
        max_pes: 1024,
        top_k: Some(10),
        sweep: PeSweep::Exhaustive,
        ..Constraints::default()
    };
    QueryGrid::new(constraints)
        .with_model(paradl_models::resnet50(), TrainingConfig::imagenet(512))
        .with_model(paradl_models::cosmoflow(), TrainingConfig::cosmoflow(512))
        .with_batches([128usize, 256, 512])
        .with_cluster(ClusterSpec::paper_system())
        .with_cluster(ClusterSpec::workstation(8))
}

fn bench_kernel_vs_mechanical(c: &mut Criterion) {
    let grid = small_grid();
    let sweep = GridSweep::new();
    assert_eq!(grid.num_queries(), 12);
    c.bench_function("kernel/mechanical_12cells", |b| {
        b.iter(|| std::hint::black_box(sweep.run_mechanical(&grid)))
    });
    c.bench_function("kernel/analytic_12cells", |b| {
        b.iter(|| std::hint::black_box(sweep.run(&grid)))
    });
}

fn bench_chunk_granularity(c: &mut Criterion) {
    let grid = small_grid();
    for chunk in [2048usize, 8192, 32768] {
        let sweep = GridSweep::new().with_chunk(chunk);
        c.bench_function(&format!("kernel/analytic_chunk_{chunk}"), |b| {
            b.iter(|| std::hint::black_box(sweep.run(&grid)))
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel_vs_mechanical, bench_chunk_granularity
);
criterion_main!(benches);
