//! Criterion benchmarks of the oracle itself: how fast ParaDL projects a
//! configuration (the tool is meant to be interactive) and a full Figure-3
//! style survey.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use paradl_core::prelude::*;

fn bench_single_projection(c: &mut Criterion) {
    let model = paradl_models::resnet50();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    c.bench_function("oracle/project_resnet50_data_64", |b| {
        b.iter(|| {
            std::hint::black_box(estimate(
                &model,
                &device,
                &cluster,
                &config,
                Strategy::Data { p: 64 },
            ))
        })
    });
    c.bench_function("oracle/project_vgg16_data_filter_256", |b| {
        let vgg = paradl_models::vgg16();
        b.iter(|| {
            std::hint::black_box(estimate(
                &vgg,
                &device,
                &cluster,
                &config,
                Strategy::DataFilter { p1: 64, p2: 4 },
            ))
        })
    });
}

fn bench_survey_and_suggest(c: &mut Criterion) {
    let model = paradl_models::resnet152();
    let device = DeviceProfile::v100();
    let cluster = ClusterSpec::paper_system();
    let config = TrainingConfig::imagenet(32 * 64);
    c.bench_function("oracle/survey_resnet152_64gpus", |b| {
        b.iter_batched(
            || Oracle::new(&model, &device, &cluster, config),
            |oracle| std::hint::black_box(oracle.survey(64, &Constraints::default())),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("oracle/suggest_resnet152_1024gpus", |b| {
        b.iter_batched(
            || Oracle::new(&model, &device, &cluster, config),
            |oracle| std::hint::black_box(oracle.suggest(&Constraints::default())),
            BatchSize::SmallInput,
        )
    });
}

fn bench_model_builders(c: &mut Criterion) {
    c.bench_function("models/build_resnet152", |b| {
        b.iter(|| std::hint::black_box(paradl_models::resnet152()))
    });
    c.bench_function("models/build_cosmoflow", |b| {
        b.iter(|| std::hint::black_box(paradl_models::cosmoflow()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_projection, bench_survey_and_suggest, bench_model_builders
);
criterion_main!(benches);
