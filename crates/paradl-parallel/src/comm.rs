//! A thread-based communicator playing the role NCCL/MPI play in the paper's
//! implementation: every parallel worker owns a [`Communicator`] handle and
//! the collectives (Allreduce, Allgather, broadcast, point-to-point
//! send/receive) are built on crossbeam channels. The decompositions in
//! [`crate::strategies`] use these primitives exactly where the paper's
//! formulations place them.

use crossbeam::channel::{unbounded, Receiver, Sender};
use paradl_tensor::Tensor;
use std::sync::Arc;

/// One message exchanged between workers.
#[derive(Debug, Clone)]
enum Message {
    /// A tensor payload.
    Tensor { tensor: Tensor },
}

/// A fully connected mesh of channels between `world` workers.
#[derive(Debug)]
pub struct CommWorld {
    senders: Vec<Vec<Sender<Message>>>,
    receivers: Vec<Vec<Receiver<Message>>>,
}

impl CommWorld {
    /// Creates the channel mesh for `world` workers.
    pub fn new(world: usize) -> Self {
        let mut senders = vec![Vec::with_capacity(world); world];
        let mut receivers = vec![Vec::with_capacity(world); world];
        for dst in 0..world {
            for _src in 0..world {
                let (tx, rx) = unbounded();
                // senders[src][dst] sends to receivers[dst][src].
                receivers[dst].push(rx);
                senders[dst].push(tx);
            }
        }
        // Reorganize: we built senders[dst][src]; transpose to senders[src][dst].
        let mut senders_t = vec![Vec::with_capacity(world); world];
        for (src, row) in transpose(senders).into_iter().enumerate() {
            senders_t[src] = row;
        }
        CommWorld { senders: senders_t, receivers }
    }

    /// Splits the world into per-rank communicator handles. Must be called
    /// once; each handle is moved into its worker thread.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let world = self.receivers.len();
        let senders = Arc::new(self.senders);
        self.receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Communicator {
                rank,
                world,
                senders: Arc::clone(&senders),
                receivers: rx,
            })
            .collect()
    }
}

fn transpose<T>(rows: Vec<Vec<T>>) -> Vec<Vec<T>> {
    let n = rows.len();
    let mut cols: Vec<Vec<T>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    for row in rows {
        for (j, item) in row.into_iter().enumerate() {
            cols[j].push(item);
        }
    }
    cols
}

/// Per-worker communicator handle.
pub struct Communicator {
    rank: usize,
    world: usize,
    senders: Arc<Vec<Vec<Sender<Message>>>>,
    receivers: Vec<Receiver<Message>>,
}

impl Communicator {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the communicator.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Sends a tensor to `dst`.
    pub fn send(&self, dst: usize, tensor: Tensor) {
        self.senders[self.rank][dst].send(Message::Tensor { tensor }).expect("receiver dropped");
    }

    /// Receives the next tensor sent by `src`.
    pub fn recv(&self, src: usize) -> Tensor {
        match self.receivers[src].recv().expect("sender dropped") {
            Message::Tensor { tensor } => tensor,
        }
    }

    /// Allreduce (sum): every worker contributes a tensor of identical shape
    /// and receives the element-wise sum. Implemented as gather-to-all
    /// (every rank sends to every other rank), which keeps the reference
    /// implementation simple and obviously correct.
    pub fn allreduce_sum(&self, tensor: &Tensor) -> Tensor {
        for dst in 0..self.world {
            if dst != self.rank {
                self.send(dst, tensor.clone());
            }
        }
        let mut acc = tensor.clone();
        for src in 0..self.world {
            if src != self.rank {
                acc.add_assign(&self.recv(src));
            }
        }
        acc
    }

    /// Allgather along `axis`: every worker contributes its shard and receives
    /// the concatenation of all shards in rank order.
    pub fn allgather_axis(&self, shard: &Tensor, axis: usize) -> Tensor {
        for dst in 0..self.world {
            if dst != self.rank {
                self.send(dst, shard.clone());
            }
        }
        let mut parts: Vec<Tensor> = Vec::with_capacity(self.world);
        for src in 0..self.world {
            if src == self.rank {
                parts.push(shard.clone());
            } else {
                parts.push(self.recv(src));
            }
        }
        Tensor::concat_axis(&parts, axis)
    }

    /// Broadcast from `root`: the root's tensor is returned on every rank.
    pub fn broadcast(&self, tensor: Option<Tensor>, root: usize) -> Tensor {
        if self.rank == root {
            let t = tensor.expect("root must provide the tensor");
            for dst in 0..self.world {
                if dst != root {
                    self.send(dst, t.clone());
                }
            }
            t
        } else {
            self.recv(root)
        }
    }

    /// Halo exchange in a 1-D decomposition: sends `to_left`/`to_right` to the
    /// neighbouring ranks and returns `(from_left, from_right)` (None at the
    /// domain boundaries).
    pub fn halo_exchange(
        &self,
        to_left: Option<Tensor>,
        to_right: Option<Tensor>,
    ) -> (Option<Tensor>, Option<Tensor>) {
        if let (Some(t), true) = (&to_left, self.rank > 0) {
            self.send(self.rank - 1, t.clone());
        }
        if let (Some(t), true) = (&to_right, self.rank + 1 < self.world) {
            self.send(self.rank + 1, t.clone());
        }
        let from_left = if self.rank > 0 { Some(self.recv(self.rank - 1)) } else { None };
        let from_right =
            if self.rank + 1 < self.world { Some(self.recv(self.rank + 1)) } else { None };
        (from_left, from_right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F, R>(world: usize, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Send + Sync + 'static,
        R: Send + 'static,
    {
        let comms = CommWorld::new(world).into_communicators();
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = Arc::clone(&f);
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_world(4, |c| {
            let t = Tensor::full(&[3], (c.rank() + 1) as f32);
            c.allreduce_sum(&t)
        });
        for r in results {
            assert_eq!(r.data(), &[10.0, 10.0, 10.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let results = run_world(3, |c| {
            let shard = Tensor::full(&[1, 2], c.rank() as f32);
            c.allgather_axis(&shard, 0)
        });
        for r in results {
            assert_eq!(r.shape(), &[3, 2]);
            assert_eq!(r.data(), &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_distributes_root_value() {
        let results = run_world(4, |c| {
            let t = if c.rank() == 2 { Some(Tensor::full(&[2], 7.0)) } else { None };
            c.broadcast(t, 2)
        });
        for r in results {
            assert_eq!(r.data(), &[7.0, 7.0]);
        }
    }

    #[test]
    fn halo_exchange_swaps_with_neighbours() {
        let results = run_world(3, |c| {
            let own = Tensor::full(&[1], c.rank() as f32);
            let (left, right) = c.halo_exchange(Some(own.clone()), Some(own));
            (c.rank(), left.map(|t| t.data()[0]), right.map(|t| t.data()[0]))
        });
        for (rank, left, right) in results {
            if rank == 0 {
                assert_eq!(left, None);
                assert_eq!(right, Some(1.0));
            } else if rank == 2 {
                assert_eq!(left, Some(1.0));
                assert_eq!(right, None);
            } else {
                assert_eq!(left, Some(0.0));
                assert_eq!(right, Some(2.0));
            }
        }
    }

    #[test]
    fn point_to_point_send_recv() {
        let results = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, Tensor::full(&[2], 3.0));
                0.0
            } else {
                c.recv(0).sum()
            }
        });
        assert_eq!(results[1], 6.0);
    }
}
