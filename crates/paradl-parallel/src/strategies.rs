//! Threaded reference implementations of the parallel strategies, verified
//! value-by-value against the sequential engine — the correctness methodology
//! of the paper's §4.5.2: the decompositions change how tensors are
//! partitioned and which collectives run, but must not change any computed
//! activation or gradient.
//!
//! Each function distributes one forward pass (or one full training step for
//! data parallelism) of [`SmallCnn`] over `world` worker threads using the
//! [`Communicator`] collectives in exactly the places the paper's
//! formulations put them: gradient-exchange Allreduce for data parallelism,
//! per-layer Allgather for filter parallelism, per-layer Allreduce for
//! channel parallelism, halo exchange for spatial parallelism and stage-to-
//! stage P2P for the pipeline.

use crate::comm::{CommWorld, Communicator};
use paradl_tensor::{
    conv2d_forward, global_avg_pool_forward, linear_forward, maxpool2d_forward, relu_forward,
    softmax_cross_entropy, Conv2dParams, Gradients, SmallCnn, Tensor,
};
use std::sync::Arc;
use std::thread;

/// Runs `f` on `world` threads, each with its own [`Communicator`], and
/// collects the per-rank results in rank order.
pub fn run_world<F, R>(world: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let comms = CommWorld::new(world).into_communicators();
    let f = Arc::new(f);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| {
            let f = Arc::clone(&f);
            thread::spawn(move || f(c))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Data parallelism: each worker computes gradients on its shard of the
/// batch, the gradients are combined with an Allreduce (the GE phase) and
/// averaged. Returns the per-rank averaged gradients — identical on every
/// rank and identical to the sequential gradients over the full batch.
pub fn data_parallel_gradients(
    net: &SmallCnn,
    input: &Tensor,
    labels: &[usize],
    world: usize,
) -> Vec<Gradients> {
    let n = input.shape()[0];
    assert_eq!(n % world, 0, "batch must divide evenly over the workers");
    let shard = n / world;
    let net = net.clone();
    let input = input.clone();
    let labels = labels.to_vec();
    run_world(world, move |comm| {
        let r = comm.rank();
        let x = input.slice_axis(0, r * shard, shard);
        let y = &labels[r * shard..(r + 1) * shard];
        let trace = net.forward(&x);
        let (_, d_logits) = softmax_cross_entropy(&trace.logits, y);
        let local = net.backward(&trace, &d_logits);
        // Gradient exchange: Allreduce then average over the replicas.
        let scale = 1.0 / world as f32;
        Gradients {
            conv1_w: comm.allreduce_sum(&local.conv1_w).scale(scale),
            conv1_b: comm.allreduce_sum(&local.conv1_b).scale(scale),
            conv2_w: comm.allreduce_sum(&local.conv2_w).scale(scale),
            conv2_b: comm.allreduce_sum(&local.conv2_b).scale(scale),
            fc_w: comm.allreduce_sum(&local.fc_w).scale(scale),
            fc_b: comm.allreduce_sum(&local.fc_b).scale(scale),
            input: local.input,
        }
    })
}

/// Filter parallelism: each worker holds `F/world` filters of every
/// convolution (and `classes/world` columns of the FC layer), computes its
/// partial output channels, and the full activation is reassembled with an
/// Allgather after every layer. Returns the per-rank logits — identical on
/// every rank and identical to the sequential forward pass.
pub fn filter_parallel_forward(net: &SmallCnn, input: &Tensor, world: usize) -> Vec<Tensor> {
    assert_eq!(net.config.conv1_filters % world, 0, "conv1 filters must divide");
    assert_eq!(net.config.conv2_filters % world, 0, "conv2 filters must divide");
    assert_eq!(net.config.classes % world, 0, "classes must divide");
    let net = net.clone();
    let input = input.clone();
    run_world(world, move |comm| {
        let r = comm.rank();
        let p = comm.world();
        let params = Conv2dParams { stride: 1, padding: 1 };
        // conv1: split the filter (output-channel) dimension of the weights.
        let f1 = net.conv1_w.shape()[0] / p;
        let w1 = net.conv1_w.slice_axis(0, r * f1, f1);
        let b1 = net.conv1_b.slice_axis(0, r * f1, f1);
        let partial1 = conv2d_forward(&input, &w1, &b1, params);
        // Allgather the output channels (axis 1 of NCHW).
        let full1 = comm.allgather_axis(&partial1, 1);
        let relu1 = relu_forward(&full1);
        let (pool, _) = maxpool2d_forward(&relu1, 2);
        // conv2, same decomposition.
        let f2 = net.conv2_w.shape()[0] / p;
        let w2 = net.conv2_w.slice_axis(0, r * f2, f2);
        let b2 = net.conv2_b.slice_axis(0, r * f2, f2);
        let partial2 = conv2d_forward(&pool, &w2, &b2, params);
        let full2 = comm.allgather_axis(&partial2, 1);
        let relu2 = relu_forward(&full2);
        let gap = global_avg_pool_forward(&relu2);
        // FC: split the output (class) dimension — columns of the weight.
        let c = net.fc_w.shape()[1] / p;
        let wf = net.fc_w.slice_axis(1, r * c, c);
        let bf = net.fc_b.slice_axis(0, r * c, c);
        let partial_logits = linear_forward(&gap, &wf, &bf);
        comm.allgather_axis(&partial_logits, 1)
    })
}

/// Channel parallelism for one convolution layer: each worker holds
/// `C/world` input channels of both the input and the weights, computes a
/// partial sum over its channels, and the outputs are combined with an
/// Allreduce (the forward-pass collective of channel parallelism). The bias
/// is added once, by rank 0. Returns the per-rank outputs — identical to the
/// full convolution.
pub fn channel_parallel_conv_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
    world: usize,
) -> Vec<Tensor> {
    let c = input.shape()[1];
    assert_eq!(c % world, 0, "channels must divide evenly");
    let per = c / world;
    let input = input.clone();
    let weight = weight.clone();
    let bias = bias.clone();
    run_world(world, move |comm| {
        let r = comm.rank();
        let x = input.slice_axis(1, r * per, per);
        let w = weight.slice_axis(1, r * per, per);
        // Only one rank contributes the bias so the Allreduce adds it once.
        let b = if r == 0 { bias.clone() } else { Tensor::zeros(bias.shape()) };
        let partial = conv2d_forward(&x, &w, &b, params);
        comm.allreduce_sum(&partial)
    })
}

/// Spatial parallelism for one convolution layer: the width dimension of the
/// input is split over the workers, each worker exchanges a one-column halo
/// with its logical neighbours (kernel 3, stride 1, padding 1) and computes
/// its slab of the output. Returns the per-rank output slabs in rank order;
/// concatenated along the width they equal the sequential convolution.
pub fn spatial_parallel_conv_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    world: usize,
) -> Vec<Tensor> {
    let w_dim = input.shape()[3];
    assert_eq!(w_dim % world, 0, "width must divide evenly");
    assert_eq!(weight.shape()[2], 3, "spatial reference implementation assumes 3×3 kernels");
    let per = w_dim / world;
    let input = input.clone();
    let weight = weight.clone();
    let bias = bias.clone();
    run_world(world, move |comm| {
        let r = comm.rank();
        let p = comm.world();
        let slab = input.slice_axis(3, r * per, per);
        // Halo exchange: send the boundary column to each neighbour.
        let left_edge = slab.slice_axis(3, 0, 1);
        let right_edge = slab.slice_axis(3, per - 1, 1);
        let (from_left, from_right) = comm.halo_exchange(
            if r > 0 { Some(left_edge) } else { None },
            if r + 1 < p { Some(right_edge) } else { None },
        );
        // Build the extended slab: [halo_left | slab | halo_right].
        let mut parts: Vec<Tensor> = Vec::new();
        let left_cols = if let Some(h) = from_left {
            parts.push(h);
            1
        } else {
            0
        };
        parts.push(slab);
        let right_cols = if let Some(h) = from_right {
            parts.push(h);
            1
        } else {
            0
        };
        let extended = Tensor::concat_axis(&parts, 3);
        // Interior boundaries get their context from the halo (no padding);
        // domain boundaries keep the zero padding of the sequential conv.
        // We emulate that by always padding (the conv op pads everywhere) and
        // then discarding the output columns that belong to the halo.
        let out = conv2d_forward(&extended, &weight, &bias, Conv2dParams { stride: 1, padding: 1 });
        let out_w = out.shape()[3];
        out.slice_axis(3, left_cols, out_w - left_cols - right_cols)
    })
}

/// Pipeline (layer) parallelism over two stages: stage 0 runs conv1/ReLU/pool
/// and streams each micro-batch segment's activation to stage 1, which runs
/// conv2/ReLU/global-pool/FC. Returns the logits assembled on the last stage
/// (empty tensor on the other ranks) — identical to the sequential forward.
pub fn pipeline_parallel_forward(net: &SmallCnn, input: &Tensor, segments: usize) -> Vec<Tensor> {
    let n = input.shape()[0];
    assert!(segments >= 1 && n.is_multiple_of(segments), "segments must divide the batch");
    let seg = n / segments;
    let net = net.clone();
    let input = input.clone();
    run_world(2, move |comm| {
        let params = Conv2dParams { stride: 1, padding: 1 };
        if comm.rank() == 0 {
            // Stage 0: conv1 → ReLU → pool, one segment at a time.
            for s in 0..segments {
                let x = input.slice_axis(0, s * seg, seg);
                let c1 = conv2d_forward(&x, &net.conv1_w, &net.conv1_b, params);
                let r1 = relu_forward(&c1);
                let (pool, _) = maxpool2d_forward(&r1, 2);
                comm.send(1, pool);
            }
            Tensor::zeros(&[0])
        } else {
            // Stage 1: conv2 → ReLU → global pool → FC, segment by segment.
            let mut logits_parts = Vec::with_capacity(segments);
            for _s in 0..segments {
                let pool = comm.recv(0);
                let c2 = conv2d_forward(&pool, &net.conv2_w, &net.conv2_b, params);
                let r2 = relu_forward(&c2);
                let gap = global_avg_pool_forward(&r2);
                logits_parts.push(linear_forward(&gap, &net.fc_w, &net.fc_b));
            }
            Tensor::concat_axis(&logits_parts, 0)
        }
    })
}

/// Hybrid data+filter parallelism: `p1` data-parallel groups of `p2`
/// filter-parallel workers each. Returns, per rank, the logits of the group's
/// batch shard — within a group every rank holds the same logits, and they
/// match the sequential forward of that shard.
pub fn data_filter_forward(net: &SmallCnn, input: &Tensor, p1: usize, p2: usize) -> Vec<Tensor> {
    let n = input.shape()[0];
    assert_eq!(n % p1, 0, "batch must divide over the data groups");
    let shard = n / p1;
    // Run each data group as an independent filter-parallel world on its shard.
    let mut out = Vec::with_capacity(p1 * p2);
    for g in 0..p1 {
        let x = input.slice_axis(0, g * shard, shard);
        out.extend(filter_parallel_forward(net, &x, p2));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradl_tensor::SmallCnnConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const TOL: f32 = 1e-4;

    fn net_and_batch(n: usize) -> (SmallCnn, Tensor, Vec<usize>) {
        let config = SmallCnnConfig {
            in_channels: 4,
            input_side: 8,
            conv1_filters: 8,
            conv2_filters: 8,
            classes: 4,
        };
        let net = SmallCnn::new(config, 99);
        let mut rng = StdRng::seed_from_u64(1234);
        let x = Tensor::random(&[n, 4, 8, 8], 1.0, &mut rng);
        let labels = (0..n).map(|_| rng.gen_range(0..4)).collect();
        (net, x, labels)
    }

    #[test]
    fn data_parallel_gradients_match_sequential() {
        let (net, x, labels) = net_and_batch(8);
        // Sequential reference over the full batch.
        let trace = net.forward(&x);
        let (_, d_logits) = softmax_cross_entropy(&trace.logits, &labels);
        let reference = net.backward(&trace, &d_logits);
        for world in [2usize, 4] {
            let per_rank = data_parallel_gradients(&net, &x, &labels, world);
            for g in &per_rank {
                assert!(g.conv1_w.approx_eq(&reference.conv1_w, TOL));
                assert!(g.conv2_w.approx_eq(&reference.conv2_w, TOL));
                assert!(g.fc_w.approx_eq(&reference.fc_w, TOL));
                assert!(g.fc_b.approx_eq(&reference.fc_b, TOL));
            }
        }
    }

    #[test]
    fn filter_parallel_forward_matches_sequential() {
        let (net, x, _) = net_and_batch(4);
        let reference = net.forward(&x).logits;
        for world in [2usize, 4] {
            for logits in filter_parallel_forward(&net, &x, world) {
                assert!(
                    logits.approx_eq(&reference, TOL),
                    "filter parallelism diverged at world={world}"
                );
            }
        }
    }

    #[test]
    fn channel_parallel_conv_matches_full_convolution() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::random(&[2, 8, 6, 6], 1.0, &mut rng);
        let w = Tensor::random(&[5, 8, 3, 3], 0.5, &mut rng);
        let b = Tensor::random(&[5], 0.5, &mut rng);
        let params = Conv2dParams { stride: 1, padding: 1 };
        let reference = conv2d_forward(&x, &w, &b, params);
        for world in [2usize, 4] {
            for out in channel_parallel_conv_forward(&x, &w, &b, params, world) {
                assert!(out.approx_eq(&reference, TOL));
            }
        }
    }

    #[test]
    fn spatial_parallel_conv_matches_full_convolution() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::random(&[2, 3, 8, 8], 1.0, &mut rng);
        let w = Tensor::random(&[4, 3, 3, 3], 0.5, &mut rng);
        let b = Tensor::random(&[4], 0.5, &mut rng);
        let reference = conv2d_forward(&x, &w, &b, Conv2dParams { stride: 1, padding: 1 });
        for world in [2usize, 4] {
            let slabs = spatial_parallel_conv_forward(&x, &w, &b, world);
            let assembled = Tensor::concat_axis(&slabs, 3);
            assert!(
                assembled.approx_eq(&reference, TOL),
                "spatial parallelism diverged at world={world}: max diff {}",
                assembled.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn pipeline_forward_matches_sequential() {
        let (net, x, _) = net_and_batch(8);
        let reference = net.forward(&x).logits;
        for segments in [1usize, 2, 4] {
            let results = pipeline_parallel_forward(&net, &x, segments);
            // The last stage holds the assembled logits.
            assert!(results[1].approx_eq(&reference, TOL), "pipeline diverged at S={segments}");
            assert!(results[0].is_empty());
        }
    }

    #[test]
    fn data_filter_hybrid_matches_sequential_shards() {
        let (net, x, _) = net_and_batch(8);
        let p1 = 2;
        let p2 = 2;
        let results = data_filter_forward(&net, &x, p1, p2);
        assert_eq!(results.len(), p1 * p2);
        for g in 0..p1 {
            let shard = x.slice_axis(0, g * 4, 4);
            let reference = net.forward(&shard).logits;
            for r in 0..p2 {
                assert!(results[g * p2 + r].approx_eq(&reference, TOL));
            }
        }
    }
}
