//! # paradl-parallel
//!
//! Threaded reference implementations of the paper's parallel strategies on
//! top of the `paradl-tensor` engine: data, filter, channel, spatial,
//! pipeline and data+filter hybrid decompositions exchanging tensors over a
//! channel-based [`comm::Communicator`] (the role NCCL/MPI play in the
//! paper's ChainerMNX implementation).
//!
//! Every decomposition is verified value-by-value against the sequential
//! engine — the correctness methodology of the paper's §4.5.2: changing how
//! tensors are partitioned (and which collectives run) must not change any
//! activation or gradient.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comm;
pub mod strategies;

pub use comm::{CommWorld, Communicator};
pub use strategies::{
    channel_parallel_conv_forward, data_filter_forward, data_parallel_gradients,
    filter_parallel_forward, pipeline_parallel_forward, run_world, spatial_parallel_conv_forward,
};
