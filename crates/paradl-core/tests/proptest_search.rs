//! Property-based tests of the exhaustive strategy-search engine: for *any*
//! model, configuration and constraints, every candidate the
//! [`StrategySpace`] enumerates must respect the constraints, and every
//! candidate the search actually costs must fit the memory capacity.

use paradl_core::prelude::*;
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// A small random CNN, mirroring the generator in `proptest_cost_model.rs`.
fn arb_model() -> impl PropStrategy<Value = Model> {
    let spatial = prop_oneof![Just(16usize), Just(32), Just(64)];
    let depth = 1usize..5;
    (spatial, depth, 4usize..32, 2usize..8).prop_map(|(s, depth, base_ch, classes)| {
        let mut layers = Vec::new();
        let mut ch = 3usize;
        let mut hw = s;
        for i in 0..depth {
            let out = base_ch * (i + 1);
            layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
            if hw >= 8 {
                layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                hw /= 2;
            }
            ch = out;
        }
        layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
        layers.push(Layer::fully_connected("fc", ch, classes));
        Model::new("random", 3, vec![s, s], layers)
    })
}

fn arb_constraints() -> impl PropStrategy<Value = Constraints> {
    (4usize..10, 1.0f64..64.0, 1usize..5).prop_map(|(log_pes, mem_gib, log_seg)| Constraints {
        max_pes: 1 << log_pes,
        memory_capacity_bytes: mem_gib * 1024.0 * 1024.0 * 1024.0,
        pipeline_segments: 1 << log_seg,
        ..Constraints::default()
    })
}

fn arb_config() -> impl PropStrategy<Value = TrainingConfig> {
    (512usize..8192, 3usize..8).prop_map(|(d, logb)| TrainingConfig::small(d, 1 << logb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_candidate_respects_constraints(
        model in arb_model(),
        config in arb_config(),
        constraints in arb_constraints(),
    ) {
        let space = StrategySpace::new(&model, config.batch_size, &constraints);
        let extents = model.min_spatial_extents();
        let mut count = 0usize;
        for candidate in space {
            prop_assert!(
                candidate.total_pes() <= constraints.max_pes,
                "{candidate} uses more PEs than max_pes={}", constraints.max_pes
            );
            prop_assert!(
                candidate.validate(&model, config.batch_size).is_ok(),
                "{candidate} violates a scaling limit"
            );
            if let Strategy::Spatial { split } | Strategy::DataSpatial { split, .. } = candidate {
                let cap = |dim: usize| extents.get(dim).copied().unwrap_or(1).max(1);
                prop_assert!(
                    split.pw <= cap(0) && split.ph <= cap(1) && split.pd <= cap(2),
                    "{candidate} splits a dimension beyond its extent {extents:?}"
                );
            }
            count += 1;
        }
        // Serial always qualifies, so the space is never empty.
        prop_assert!(count >= 1);
    }

    #[test]
    fn costed_candidates_fit_memory_and_pruning_adds_up(
        model in arb_model(),
        config in arb_config(),
        constraints in arb_constraints(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let report = oracle.search(&constraints);
        prop_assert!(report.enumerated == report.pruned_by_memory + report.ranked.len());
        for candidate in &report.ranked {
            prop_assert!(
                candidate.projection.cost.memory_per_pe_bytes
                    <= constraints.memory_capacity_bytes,
                "{} was costed but exceeds the memory capacity", candidate.strategy
            );
            prop_assert!(candidate.epoch_time().is_finite());
            prop_assert!(candidate.epoch_time() >= 0.0);
        }
    }

    #[test]
    fn top_k_pruning_never_drops_the_true_winners(
        model in arb_model(),
        config in arb_config(),
        constraints in arb_constraints(),
        k in 1usize..8,
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let full = oracle.search(&constraints);
        let pruned_constraints = Constraints { top_k: Some(k), ..constraints };
        let pruned = oracle.search(&pruned_constraints);
        let serial = oracle.search_serial(&pruned_constraints);
        // The bounded-heap ranking is exactly the prefix of the full ranking.
        prop_assert!(pruned.ranked.len() == k.min(full.ranked.len()));
        for (a, b) in pruned.ranked.iter().zip(&full.ranked) {
            prop_assert!(a.strategy == b.strategy, "{} != {}", a.strategy, b.strategy);
            prop_assert!(a.projection == b.projection);
        }
        // Budget winners are unaffected by pruning.
        prop_assert!(pruned.best_per_budget.len() == full.best_per_budget.len());
        for (a, b) in pruned.best_per_budget.iter().zip(&full.best_per_budget) {
            prop_assert!(a.max_pes == b.max_pes);
            prop_assert!(a.candidate.strategy == b.candidate.strategy);
        }
        // Parallel and serial pruned searches return identical results.
        prop_assert!(pruned.ranked.len() == serial.ranked.len());
        for (a, b) in pruned.ranked.iter().zip(&serial.ranked) {
            prop_assert!(a.strategy == b.strategy);
            prop_assert!(a.projection == b.projection);
        }
        // Accounting adds up (memory + dynamic bound + static dominance).
        prop_assert!(pruned.evaluated() + pruned.pruned() == pruned.enumerated);
    }

    #[test]
    fn exhaustive_sweep_contains_the_pow2_space(
        model in arb_model(),
        config in arb_config(),
        constraints in arb_constraints(),
    ) {
        use paradl_core::oracle::PeSweep;
        // Keep the dense space small enough for a property test.
        let constraints = Constraints { max_pes: constraints.max_pes.min(64), ..constraints };
        let dense_constraints = Constraints { sweep: PeSweep::Exhaustive, ..constraints };
        let pow2: Vec<Strategy> =
            StrategySpace::new(&model, config.batch_size, &constraints).collect();
        let dense: std::collections::HashSet<Strategy> =
            StrategySpace::new(&model, config.batch_size, &dense_constraints).collect();
        prop_assert!(dense.len() >= pow2.len());
        for s in pow2 {
            prop_assert!(dense.contains(&s), "{s} missing from the exhaustive space");
        }
    }

    #[test]
    fn ranking_is_sorted_and_budget_winners_feasible(
        model in arb_model(),
        config in arb_config(),
        constraints in arb_constraints(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let report = oracle.search(&constraints);
        for pair in report.ranked.windows(2) {
            prop_assert!(pair[0].epoch_time() <= pair[1].epoch_time());
        }
        for winner in &report.best_per_budget {
            prop_assert!(winner.candidate.strategy.total_pes() <= winner.max_pes);
            prop_assert!(winner.max_pes <= constraints.max_pes);
        }
    }
}
