//! Property-based equivalence tests of the amortized [`GridSweep`] against
//! per-query [`Oracle::search`] calls: for *any* random grid of CNNs,
//! batch axes, clusters and constraints (with and without top-k pruning,
//! powers-of-two and exhaustive PE sweeps), every cell of the sweep must
//! reproduce the per-query search exactly — same enumeration and
//! memory-pruning counts, same ranking with byte-identical projections,
//! same per-budget winners. Only `pruned_by_bound` may differ (documented
//! as evaluation-order dependent).

use paradl_core::prelude::*;
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// A small random CNN, mirroring the generator in `proptest_engine.rs`.
fn arb_model() -> impl PropStrategy<Value = Model> {
    let spatial = prop_oneof![Just(16usize), Just(32)];
    let depth = 1usize..4;
    (spatial, depth, 4usize..32, 2usize..8).prop_map(|(s, depth, base_ch, classes)| {
        let mut layers = Vec::new();
        let mut ch = 3usize;
        let mut hw = s;
        for i in 0..depth {
            let out = base_ch * (i + 1);
            layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
            if hw >= 8 {
                layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                hw /= 2;
            }
            ch = out;
        }
        layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
        layers.push(Layer::fully_connected("fc", ch, classes));
        Model::new("random", 3, vec![s, s], layers)
    })
}

fn arb_constraints() -> impl PropStrategy<Value = Constraints> {
    let top_k = prop_oneof![Just(None), (1usize..12).prop_map(Some)];
    let sweep = prop_oneof![Just(PeSweep::PowersOfTwo), Just(PeSweep::Exhaustive)];
    (top_k, sweep, 4usize..9, 2usize..12).prop_map(|(top_k, sweep, log_pes, segments)| {
        Constraints {
            max_pes: 1 << log_pes,
            top_k,
            sweep,
            pipeline_segments: segments,
            ..Constraints::default()
        }
    })
}

/// A random batch axis: 2–3 mixed power-of-two / odd batch sizes.
fn arb_batches() -> impl PropStrategy<Value = Vec<usize>> {
    let entry = || (3usize..8, 0usize..4);
    (entry(), entry(), entry(), 2usize..4).prop_map(|(a, b, c, len)| {
        [a, b, c].iter().take(len).map(|&(log, off)| (1usize << log) + off).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grid_sweep_reproduces_per_query_searches(
        model_a in arb_model(),
        model_b in arb_model(),
        batches in arb_batches(),
        constraints in arb_constraints(),
        chunk in 1usize..400,
    ) {
        let grid = QueryGrid::new(constraints)
            .with_model(model_a, TrainingConfig::small(8192, 64))
            .with_model(model_b, TrainingConfig::small(2048, 64))
            .with_batches(batches)
            .with_cluster(ClusterSpec::paper_system())
            .with_cluster(ClusterSpec::workstation(8));
        let sweep = GridSweep::new().with_chunk_size(chunk);
        let fast = sweep.run(&grid);
        let slow = sweep.run_per_query(&grid);
        prop_assert!(fast.len() == grid.num_queries());
        prop_assert!(fast.len() == slow.len());
        for (a, b) in fast.cells.iter().zip(&slow.cells) {
            prop_assert!(a.query == b.query);
            let what = format!("{:?}", a.query);
            prop_assert!(a.report.enumerated == b.report.enumerated, "{what}: enumerated");
            prop_assert!(a.report.pruned_by_memory == b.report.pruned_by_memory, "{what}: pruned");
            prop_assert!(a.report.ranked.len() == b.report.ranked.len(), "{what}: ranked len");
            for (x, y) in a.report.ranked.iter().zip(&b.report.ranked) {
                prop_assert!(x.strategy == y.strategy, "{what}: strategy");
                prop_assert!(x.projection == y.projection, "{what}: projection diverged");
            }
            prop_assert!(
                a.report.best_per_budget.len() == b.report.best_per_budget.len(),
                "{what}: budget len"
            );
            for (x, y) in a.report.best_per_budget.iter().zip(&b.report.best_per_budget) {
                prop_assert!(x.max_pes == y.max_pes, "{what}: budget");
                prop_assert!(x.candidate.strategy == y.candidate.strategy, "{what}: winner");
                prop_assert!(
                    x.candidate.projection == y.candidate.projection,
                    "{what}: budget projection diverged"
                );
            }
        }
    }
}
