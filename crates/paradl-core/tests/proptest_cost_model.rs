//! Property-based tests of the cost-model invariants.
//!
//! These check structural properties that must hold for *any* model and
//! configuration, not just the hand-picked examples of the unit tests:
//! data parallelism at `p = 1` degenerates to the serial cost, compute time
//! is inversely proportional to `p`, memory shrinks monotonically along the
//! split dimension, and communication cost is monotone in the message size
//! and PE count.

use paradl_core::prelude::*;
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// Generates a small random CNN: a chain of conv / pool / relu layers ending
/// in a global pool and a fully-connected classifier.
fn arb_model() -> impl PropStrategy<Value = Model> {
    let spatial = prop_oneof![Just(16usize), Just(32), Just(64)];
    let depth = 1usize..5;
    (spatial, depth, 4usize..32, 2usize..8).prop_map(|(s, depth, base_ch, classes)| {
        let mut layers = Vec::new();
        let mut ch = 3usize;
        let mut hw = s;
        for i in 0..depth {
            let out = base_ch * (i + 1);
            layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
            layers.push(Layer::relu(format!("relu{i}"), out, &[hw, hw]));
            if hw >= 8 {
                layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                hw /= 2;
            }
            ch = out;
        }
        layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
        layers.push(Layer::fully_connected("fc", ch, classes));
        Model::new("random", 3, vec![s, s], layers)
    })
}

fn arb_config() -> impl PropStrategy<Value = TrainingConfig> {
    (512usize..8192, 3usize..7).prop_map(|(d, logb)| TrainingConfig::small(d, 1 << logb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_models_are_valid(model in arb_model()) {
        prop_assert!(model.validate().is_ok());
        prop_assert!(model.total_params() > 0);
        prop_assert!(model.total_activations() > 0);
    }

    #[test]
    fn data_parallelism_at_p1_equals_serial(model in arb_model(), config in arb_config()) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let serial = estimate(&model, &device, &cluster, &config, Strategy::Serial);
        let data1 = estimate(&model, &device, &cluster, &config, Strategy::Data { p: 1 });
        let diff = (serial.per_epoch.total() - data1.per_epoch.total()).abs();
        prop_assert!(diff <= 1e-9 * serial.per_epoch.total().max(1.0));
        let mem_diff = (serial.memory_per_pe_bytes - data1.memory_per_pe_bytes).abs();
        prop_assert!(mem_diff <= 1e-9 * serial.memory_per_pe_bytes.max(1.0));
    }

    #[test]
    fn forward_backward_scales_inversely_with_p(model in arb_model(), config in arb_config()) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let serial = estimate(&model, &device, &cluster, &config, Strategy::Serial);
        for p in [2usize, 4, 8, 16] {
            let data = estimate(&model, &device, &cluster, &config, Strategy::Data { p });
            let ratio = serial.per_epoch.forward_backward / data.per_epoch.forward_backward;
            prop_assert!((ratio - p as f64).abs() < 1e-6 * p as f64,
                "p={p} ratio={ratio}");
        }
    }

    #[test]
    fn data_memory_monotonically_decreases_with_p(model in arb_model(), config in arb_config()) {
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16, 32] {
            let mem = memory_per_pe(&model, &config, Strategy::Data { p });
            prop_assert!(mem <= prev + 1e-9, "memory must not grow with p");
            prop_assert!(mem > 0.0);
            prev = mem;
        }
    }

    #[test]
    fn filter_memory_never_below_activation_floor(model in arb_model(), config in arb_config()) {
        // Filter parallelism keeps full activations on every PE, so its
        // memory is bounded below by the activation term (the paper's
        // "Redundancy in Memory" limitation).
        let b = config.batch_size as f64;
        let delta = config.bytes_per_item;
        let gamma = config.memory_reuse;
        let act_floor: f64 = gamma * delta * 2.0 * b
            * (model.total_inputs() + model.total_activations()) as f64;
        for p in [2usize, 4, 8] {
            let mem = memory_per_pe(&model, &config, Strategy::Filter { p });
            prop_assert!(mem >= act_floor * 0.999);
        }
    }

    #[test]
    fn allreduce_monotone_in_bytes_and_pes(
        bytes in 1.0f64..1e9,
        p in 2usize..512,
    ) {
        let comm = CommModel::new(LinkParams::infiniband_edr())
            .with_algorithm(CollectiveAlgorithm::Ring);
        let t = comm.allreduce(p, bytes);
        prop_assert!(t > 0.0);
        prop_assert!(comm.allreduce(p, bytes * 2.0) >= t);
        prop_assert!(comm.allreduce(p * 2, bytes) >= t);
        // Allgather moves half the traffic of Allreduce in the ring algorithm.
        let ag = comm.allgather(p, bytes);
        prop_assert!(ag <= t);
    }

    #[test]
    fn accuracy_metric_is_bounded(projected in 0.0f64..1e6, measured in 1e-6f64..1e6) {
        let a = projection_accuracy(projected, measured);
        prop_assert!((0.0..=1.0).contains(&a));
        // Exact projection gives accuracy 1.
        prop_assert!((projection_accuracy(measured, measured) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_breakdown_consistent_with_iteration(model in arb_model(), config in arb_config()) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        for p in [4usize, 16] {
            let est = estimate(&model, &device, &cluster, &config, Strategy::Data { p });
            let per_iter = est.per_iteration();
            let recombined = per_iter.total() * est.iterations as f64;
            prop_assert!((recombined - est.per_epoch.total()).abs()
                <= 1e-9 * est.per_epoch.total().max(1.0));
        }
    }

    #[test]
    fn pipeline_time_decreases_with_segments(model in arb_model(), config in arb_config()) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let p = 2usize.min(model.num_layers());
        if p < 2 { return Ok(()); }
        let segments = [1usize, 2, 4, 8];
        let mut prev = f64::INFINITY;
        for s in segments {
            if s > config.batch_size { break; }
            let est = estimate(&model, &device, &cluster, &config,
                Strategy::Pipeline { p, segments: s });
            prop_assert!(est.per_epoch.forward_backward <= prev + 1e-9);
            prev = est.per_epoch.forward_backward;
        }
    }

    #[test]
    fn survey_projections_are_finite(model in arb_model(), config in arb_config()) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let oracle = Oracle::new(&model, &device, &cluster, config);
        for proj in oracle.survey(8, &Constraints::default()) {
            prop_assert!(proj.cost.epoch_time().is_finite());
            prop_assert!(proj.cost.epoch_time() >= 0.0);
            prop_assert!(proj.cost.memory_per_pe_bytes.is_finite());
        }
    }
}
