//! Property-based equivalence tests of the precomputed [`CostEngine`]
//! against the reference per-layer cost/memory model: for *any* random CNN,
//! configuration and candidate strategy, the engine must reproduce
//! `estimate` / `estimate_with_memory` / `memory_per_pe` (to floating-point
//! reassociation tolerance), its compute-only lower bound must be
//! admissible, and the branch-and-bound pruned search must never drop the
//! true optimum.

use paradl_core::prelude::*;
use proptest::prelude::{prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// A small random CNN, mirroring the generator in `proptest_search.rs`.
fn arb_model() -> impl PropStrategy<Value = Model> {
    let spatial = prop_oneof![Just(16usize), Just(32), Just(64)];
    let depth = 1usize..5;
    (spatial, depth, 4usize..32, 2usize..8).prop_map(|(s, depth, base_ch, classes)| {
        let mut layers = Vec::new();
        let mut ch = 3usize;
        let mut hw = s;
        for i in 0..depth {
            let out = base_ch * (i + 1);
            layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
            if hw >= 8 {
                layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                hw /= 2;
            }
            ch = out;
        }
        layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
        layers.push(Layer::fully_connected("fc", ch, classes));
        Model::new("random", 3, vec![s, s], layers)
    })
}

fn arb_config() -> impl PropStrategy<Value = TrainingConfig> {
    (512usize..8192, 3usize..8).prop_map(|(d, logb)| TrainingConfig::small(d, 1 << logb))
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30)
}

/// Candidate strategies to compare: the whole (power-of-two) strategy space
/// of the model, which covers every strategy kind incl. all spatial
/// factorizations, capped for test runtime.
fn sample_candidates(model: &Model, batch: usize) -> Vec<Strategy> {
    let constraints = Constraints { max_pes: 256, ..Constraints::default() };
    StrategySpace::new(model, batch, &constraints).take(400).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_matches_reference_for_every_candidate(
        model in arb_model(),
        config in arb_config(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        for s in sample_candidates(&model, config.batch_size) {
            let fast = engine.estimate(s);
            let slow = estimate(&model, &device, &cluster, &config, s);
            prop_assert!(fast.iterations == slow.iterations);
            for (name, a, b) in [
                ("fw/bw", fast.per_epoch.forward_backward, slow.per_epoch.forward_backward),
                ("wu", fast.per_epoch.weight_update, slow.per_epoch.weight_update),
                ("ge", fast.per_epoch.gradient_exchange, slow.per_epoch.gradient_exchange),
                ("fb-coll", fast.per_epoch.fb_collective, slow.per_epoch.fb_collective),
                ("halo", fast.per_epoch.halo_exchange, slow.per_epoch.halo_exchange),
                ("p2p", fast.per_epoch.pipeline_p2p, slow.per_epoch.pipeline_p2p),
            ] {
                prop_assert!(rel_close(a, b), "{s}: {name} engine={a} reference={b}");
            }
            let (ma, mb) = (engine.memory_per_pe(s), memory_per_pe(&model, &config, s));
            prop_assert!(rel_close(ma, mb), "{s}: memory engine={ma} reference={mb}");
            // The engine's reusable-memory variant matches too.
            let reused = engine.estimate_with_memory(s, ma);
            prop_assert!(reused.per_epoch == fast.per_epoch);
            let slow_reused =
                estimate_with_memory(&model, &device, &cluster, &config, s, mb);
            prop_assert!(slow_reused.per_epoch == slow.per_epoch);
        }
    }

    #[test]
    fn rebatch_matches_fresh_engine(
        model in arb_model(),
        config in arb_config(),
        log_batch in 3usize..9,
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let base = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        // Power-of-two and non-power-of-two target batches, both directions
        // (shrinking and growing relative to the base batch).
        for batch in [1usize << log_batch, (1 << log_batch) + 3] {
            let fresh = CostEngine::new(
                &model,
                &device,
                &cluster,
                TrainingConfig { batch_size: batch, ..config },
            )
            .expect("engine builds");
            let rebatched = base.rebatched(batch);
            prop_assert!(rebatched.config() == fresh.config());
            for s in sample_candidates(&model, batch) {
                // Byte-for-byte: rebatch re-runs the exact arithmetic of a
                // fresh build over shared tables (well inside the pinned
                // 1e-9 tolerance).
                let (a, b) = (rebatched.estimate(s), fresh.estimate(s));
                prop_assert!(a == b, "{s}: rebatched {a:?} != fresh {b:?} at B={batch}");
                let (ma, mb) = (rebatched.memory_per_pe(s), fresh.memory_per_pe(s));
                prop_assert!(ma == mb, "{s}: memory {ma} != {mb} at B={batch}");
                prop_assert!(rebatched.lower_bound(s) == fresh.lower_bound(s), "{s} bound");
            }
        }
        // In-place round trip returns to the base engine's answers.
        let mut roundtrip = base.clone();
        roundtrip.rebatch(1 << log_batch);
        roundtrip.rebatch(config.batch_size);
        for s in sample_candidates(&model, config.batch_size).into_iter().take(50) {
            prop_assert!(roundtrip.estimate(s) == base.estimate(s), "{s}: round trip drifted");
        }
    }

    #[test]
    fn lower_bound_is_admissible(
        model in arb_model(),
        config in arb_config(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        for s in sample_candidates(&model, config.batch_size) {
            let lb = engine.lower_bound(s);
            let total = engine.estimate(s).epoch_time();
            prop_assert!(lb <= total, "{s}: lower bound {lb} exceeds total {total}");
            prop_assert!(lb >= 0.0 && lb.is_finite());
        }
    }

    #[test]
    fn fused_prep_terms_are_bit_identical(
        model in arb_model(),
        config in arb_config(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        for s in sample_candidates(&model, config.batch_size) {
            // The kernel's fused prep pass and scalar epoch time must be
            // *bit*-identical to the separate calls they replace — the
            // analytic kernel's exactness rests on it.
            let (mem, lb) = engine.prep_terms(s);
            prop_assert!(mem.to_bits() == engine.memory_per_pe(s).to_bits(), "{s}: memory");
            prop_assert!(lb.to_bits() == engine.lower_bound(s).to_bits(), "{s}: bound");
            let scalar = engine.epoch_time(s);
            let full = engine.estimate(s).epoch_time();
            prop_assert!(scalar.to_bits() == full.to_bits(), "{s}: {scalar} != {full}");
        }
    }

    #[test]
    fn estimate_delta_matches_full_estimate_on_adjacent_pairs(
        model in arb_model(),
        config in arb_config(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        // The sorted strategy space delivers exactly the adjacency the
        // full-ranking kernel chains deltas over; require *exact* equality
        // (stronger than the 1e-9 gate — the delta path only copies terms
        // it proves bit-identical and recomputes the rest verbatim).
        let cands = sample_candidates(&model, config.batch_size);
        let mut prev: Option<CostEstimate> = None;
        for s in cands {
            let full = engine.estimate(s);
            if let Some(p) = prev.as_ref() {
                let delta = engine.estimate_delta(p, s);
                prop_assert!(
                    delta == full,
                    "{} -> {s}: delta {delta:?} != full {full:?}", p.strategy
                );
            }
            prev = Some(full);
        }
    }

    #[test]
    fn pruned_search_finds_the_reference_optimum(
        model in arb_model(),
        config in arb_config(),
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let oracle = Oracle::new(&model, &device, &cluster, config);
        let constraints = Constraints { max_pes: 256, ..Constraints::default() };
        let reference = oracle.search_reference(&constraints);
        let pruned = oracle.search(&Constraints { top_k: Some(1), ..constraints });
        match (reference.best(), pruned.best()) {
            (Some(a), Some(b)) => {
                let (ta, tb) = (a.epoch_time(), b.epoch_time());
                prop_assert!(
                    rel_close(ta, tb),
                    "pruned optimum {} ({tb}) diverged from reference {} ({ta})",
                    b.strategy, a.strategy
                );
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
        prop_assert!(reference.pruned_by_memory == pruned.pruned_by_memory);
    }
}
