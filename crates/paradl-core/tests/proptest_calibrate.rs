//! Property-based tests of the calibration fit (PR 10): for *any* random
//! replay population the closed-form fit must be deterministic for a fixed
//! seed, must never increase a family's training bias or decrease its
//! training accuracy (the identity is always a candidate), must only emit
//! admissible parameters, and the identity [`CalibratedCostModel`] must be
//! bit-identical to the raw engine on random models and strategies.

use paradl_core::prelude::*;
use proptest::prelude::{prop_assert, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// SplitMix64 — expands one drawn seed into a whole sample population
/// (the proptest shim has no collection strategies).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

/// A random replay population: mixed families, phase magnitudes spanning
/// several decades, measured times that are a noisy phase-structured
/// transform of the projections (the realistic case) — plus the occasional
/// degenerate sample the fit must ignore.
fn population(seed: u64) -> Vec<CalSample> {
    let mut rng = Mix(seed);
    let n = rng.usize(2, 40);
    // Hidden per-population "truth" the measured side is generated from.
    let compute_bias = rng.f64(0.5, 2.5);
    let comm_bias = rng.f64(0.5, 3.0);
    let latency = rng.f64(0.0, 0.05);
    (0..n)
        .map(|i| {
            let p = 1usize << rng.usize(1, 6);
            let strategy = match rng.usize(0, 5) {
                0 => Strategy::Data { p },
                1 => Strategy::Filter { p },
                2 => Strategy::Spatial { split: SpatialSplit::width_only(p) },
                3 => Strategy::DataFilter { p1: p, p2: 1 << rng.usize(1, 4) },
                _ => Strategy::Pipeline { p, segments: 2 * p },
            };
            let compute = rng.f64(1e-3, 20.0);
            let comm = rng.f64(0.0, 10.0);
            let iterations = rng.usize(1, 400) as f64;
            let noise = rng.f64(0.85, 1.15);
            let mut measured =
                (compute_bias * compute + comm_bias * comm + latency * iterations) * noise;
            // A few poisoned samples that `usable()` must filter out.
            if i % 11 == 10 {
                measured = match rng.usize(0, 3) {
                    0 => 0.0,
                    1 => f64::NAN,
                    _ => f64::INFINITY,
                };
            }
            let (mut grad, mut fbc, mut halo, mut p2p) = (0.0, 0.0, 0.0, 0.0);
            match strategy.kind() {
                StrategyKind::Filter | StrategyKind::Channel => fbc = comm,
                StrategyKind::Spatial => halo = comm,
                StrategyKind::Pipeline => p2p = comm,
                _ => grad = comm,
            }
            CalSample { strategy, compute, grad, fbc, halo, p2p, iterations, measured }
        })
        .collect()
}

/// Training-set metrics of one family under a calibration: mean signed
/// relative error and mean §5.2 accuracy over the usable samples.
fn family_metrics(
    samples: &[CalSample],
    kind: StrategyKind,
    cal: &Calibration,
) -> Option<(f64, f64)> {
    let fam: Vec<&CalSample> =
        samples.iter().filter(|s| s.strategy.kind() == kind && s.usable()).collect();
    if fam.is_empty() {
        return None;
    }
    let n = fam.len() as f64;
    let signed = fam.iter().map(|s| (cal.project(s) - s.measured) / s.measured).sum::<f64>() / n;
    let accuracy =
        fam.iter().map(|s| projection_accuracy(cal.project(s), s.measured)).sum::<f64>() / n;
    Some((signed, accuracy))
}

fn arb_model() -> impl PropStrategy<Value = Model> {
    (prop_oneof_spatial(), 1usize..4, 4usize..24, 2usize..8).prop_map(
        |(s, depth, base_ch, classes)| {
            let mut layers = Vec::new();
            let mut ch = 3usize;
            let mut hw = s;
            for i in 0..depth {
                let out = base_ch * (i + 1);
                layers.push(Layer::conv2d(format!("conv{i}"), ch, out, (hw, hw), 3, 1, 1));
                if hw >= 8 {
                    layers.push(Layer::pool2d(format!("pool{i}"), out, (hw, hw), 2, 2));
                    hw /= 2;
                }
                ch = out;
            }
            layers.push(Layer::global_pool("gpool", ch, &[hw, hw]));
            layers.push(Layer::fully_connected("fc", ch, classes));
            Model::new("random", 3, vec![s, s], layers)
        },
    )
}

fn prop_oneof_spatial() -> impl PropStrategy<Value = usize> {
    use proptest::prelude::{prop_oneof, Just};
    prop_oneof![Just(16usize), Just(32)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fit_is_deterministic_for_a_fixed_seed(seed in 0u64..u64::MAX, cal_seed in 0u64..1024) {
        let samples = population(seed);
        let a = Calibration::fit(&samples, cal_seed);
        let b = Calibration::fit(&samples, cal_seed);
        // Bit-for-bit: the closed-form solve has no hidden state. The JSON
        // render is compared too so serialization cannot smuggle in
        // nondeterminism.
        prop_assert!(a == b, "fit differs across identical calls");
        prop_assert!(a.to_json().render() == b.to_json().render());
        prop_assert!(a.seed == cal_seed);
    }

    #[test]
    fn fit_never_worsens_training_bias_or_accuracy(seed in 0u64..u64::MAX) {
        let samples = population(seed);
        let identity = Calibration::identity();
        let cal = Calibration::fit(&samples, 0);
        for kind in StrategyKind::ALL {
            let (Some((s0, a0)), Some((s1, a1))) = (
                family_metrics(&samples, kind, &identity),
                family_metrics(&samples, kind, &cal),
            ) else {
                continue;
            };
            // The identity is always a fit candidate and every fitted
            // candidate is bias-zeroed, so on its own training samples a
            // family can neither lose accuracy nor gain |signed error|.
            prop_assert!(
                s1.abs() <= s0.abs() + 1e-9,
                "{kind}: |signed| grew {:+.4} -> {:+.4}", s0, s1
            );
            prop_assert!(
                a1 >= a0 - 1e-9,
                "{kind}: accuracy fell {:.4} -> {:.4}", a0, a1
            );
        }
    }

    #[test]
    fn fit_only_emits_admissible_parameters(seed in 0u64..u64::MAX) {
        let samples = population(seed);
        let cal = Calibration::fit(&samples, 0);
        // Round-tripping through JSON re-validates every family against the
        // admissibility gate (positive multipliers, non-negative additive
        // terms) — an inadmissible fit output would fail to parse.
        let back = Calibration::from_json(&cal.to_json());
        prop_assert!(back.is_ok(), "fit emitted inadmissible parameters: {:?}", back.err());
        prop_assert!(back.unwrap() == cal);
        for s in &samples {
            if s.usable() {
                let p = cal.project(s);
                prop_assert!(p.is_finite() && p >= 0.0, "projection {p} for {}", s.strategy);
            }
        }
    }

    #[test]
    fn identity_calibrated_model_is_bit_identical_to_engine(
        model in arb_model(),
        dataset in 512usize..4096,
        log_batch in 4usize..7,
    ) {
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let config = TrainingConfig::small(dataset, 1 << log_batch);
        let engine = CostEngine::new(&model, &device, &cluster, config).expect("engine builds");
        let calibrated = CalibratedCostModel::new(&engine, Calibration::identity());
        let constraints = Constraints { max_pes: 128, ..Constraints::default() };
        for s in StrategySpace::new(&model, config.batch_size, &constraints).take(200) {
            let raw = engine.estimate(s);
            let cal = calibrated.estimate(s);
            prop_assert!(
                raw.epoch_time().to_bits() == cal.epoch_time().to_bits(),
                "{s}: identity calibration changed bits: {} vs {}",
                raw.epoch_time(), cal.epoch_time()
            );
            prop_assert!(raw == cal, "{s}: estimates differ");
        }
    }
}
