//! Exhaustive, parallel strategy search (the oracle's "suggest the best
//! strategy" role, paper §4.1, scaled up from a powers-of-two sweep of each
//! family to the full candidate space).
//!
//! [`StrategySpace`] enumerates every concrete strategy candidate that
//! respects the user's [`Constraints`] and the model's scaling limits
//! (Table 3): data, spatial (with every divisibility-based
//! [`SpatialSplit`] factorization), filter, channel, pipeline (crossed with
//! the micro-batch segment counts) and the data+filter / data+spatial
//! hybrids. [`Oracle::search`] evaluates the space with rayon across all
//! cores — pruning memory-infeasible candidates *before* the cost model runs
//! — and returns a ranked [`SearchReport`]: every feasible candidate sorted
//! by projected epoch time, plus the best strategy at each power-of-two PE
//! budget. [`Oracle::search_serial`] is the single-threaded reference used by
//! tests and the speedup benchmark.

use crate::compute::ComputeModel;
use crate::cost::estimate_with_memory;
use crate::memory::memory_per_pe;
use crate::model::Model;
use crate::oracle::{Constraints, Oracle, Projection};
use crate::scaling::powers_of_two;
use crate::strategy::{SpatialSplit, Strategy, StrategyKind};
use rayon::prelude::*;
use std::collections::HashSet;

/// The exhaustive candidate space for one (model, batch, constraints)
/// problem. Construction enumerates and deduplicates all valid candidates;
/// the type then iterates them in a deterministic order.
#[derive(Debug, Clone)]
pub struct StrategySpace {
    candidates: Vec<Strategy>,
    next: usize,
}

impl StrategySpace {
    /// Enumerates every candidate strategy for `model` trained with global
    /// mini-batch `batch` under `constraints`. Candidates violating a scaling
    /// limit (Table 3) or exceeding `constraints.max_pes` are never produced;
    /// memory feasibility is intentionally *not* checked here so the search
    /// can report how many candidates its memory pruning removed.
    pub fn new(model: &Model, batch: usize, constraints: &Constraints) -> Self {
        let max_pes = constraints.max_pes.max(1);
        let mut seen: HashSet<Strategy> = HashSet::new();
        let mut push = |s: Strategy| {
            if s.total_pes() <= max_pes && s.validate(model, batch).is_ok() {
                seen.insert(s);
            }
        };

        push(Strategy::Serial);

        for p in powers_of_two(1, max_pes.min(batch)) {
            push(Strategy::Data { p });
        }

        let spatial_caps = model.min_spatial_extents();
        for p in powers_of_two(2, max_pes.min(model.min_spatial_size())) {
            for split in spatial_factorizations(p, &spatial_caps) {
                push(Strategy::Spatial { split });
            }
        }

        for p in powers_of_two(2, max_pes.min(model.min_filters())) {
            push(Strategy::Filter { p });
        }

        for p in powers_of_two(2, max_pes.min(model.min_channels_after_first())) {
            push(Strategy::Channel { p });
        }

        let seg_cap = constraints.pipeline_segments.max(1).min(batch);
        for p in powers_of_two(2, max_pes.min(model.num_layers())) {
            for segments in powers_of_two(1, seg_cap) {
                push(Strategy::Pipeline { p, segments });
            }
        }

        for p1 in powers_of_two(1, batch) {
            for p2 in powers_of_two(2, model.min_filters()) {
                if p1 * p2 <= max_pes {
                    push(Strategy::DataFilter { p1, p2 });
                }
            }
            for p2 in powers_of_two(2, model.min_spatial_size()) {
                if p1 * p2 <= max_pes {
                    for split in spatial_factorizations(p2, &spatial_caps) {
                        push(Strategy::DataSpatial { p1, split });
                    }
                }
            }
        }

        let mut candidates: Vec<Strategy> = seen.into_iter().collect();
        candidates.sort_by_key(strategy_sort_key);
        StrategySpace { candidates, next: 0 }
    }

    /// Number of candidates in the space (including not-yet-yielded ones).
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty (it never is: `Serial` always qualifies).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The remaining candidates as a slice, without consuming the iterator.
    pub fn as_slice(&self) -> &[Strategy] {
        &self.candidates[self.next.min(self.candidates.len())..]
    }

    /// Consumes the space, returning all candidates.
    pub fn into_vec(self) -> Vec<Strategy> {
        self.candidates
    }
}

impl Iterator for StrategySpace {
    type Item = Strategy;

    fn next(&mut self) -> Option<Strategy> {
        let item = self.candidates.get(self.next).copied();
        self.next += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.candidates.len().saturating_sub(self.next);
        (rest, Some(rest))
    }
}

/// Deterministic enumeration order: by strategy family, then PE count, then
/// the family-specific parameters.
fn strategy_sort_key(s: &Strategy) -> (u8, usize, usize, usize, usize) {
    let family = match s.kind() {
        StrategyKind::Serial => 0,
        StrategyKind::Data => 1,
        StrategyKind::Spatial => 2,
        StrategyKind::Filter => 3,
        StrategyKind::Channel => 4,
        StrategyKind::Pipeline => 5,
        StrategyKind::DataFilter => 6,
        StrategyKind::DataSpatial => 7,
    };
    let (a, b, c) = match *s {
        Strategy::Spatial { split } => (split.pw, split.ph, split.pd),
        Strategy::Pipeline { segments, .. } => (segments, 0, 0),
        Strategy::DataFilter { p1, p2 } => (p1, p2, 0),
        Strategy::DataSpatial { p1, split } => (p1, split.pw, split.ph),
        _ => (0, 0, 0),
    };
    (family, s.total_pes(), a, b, c)
}

/// All ordered factorizations of `p` into 2 or 3 spatial split factors
/// (`p = pw·ph` or `p = pw·ph·pd`, rank = `caps.len()`), keeping only those
/// where every factor fits its dimension: splitting a dimension into more
/// parts than its smallest extent (`caps`, see
/// [`Model::min_spatial_extents`]) is physically impossible even when the
/// *total* stays within `min_spatial_size`.
fn spatial_factorizations(p: usize, caps: &[usize]) -> Vec<SpatialSplit> {
    let cap = |dim: usize| caps.get(dim).copied().unwrap_or(1);
    let mut out = Vec::new();
    if caps.len() >= 3 {
        for pw in divisors(p) {
            let rest = p / pw;
            for ph in divisors(rest) {
                let pd = rest / ph;
                if pw <= cap(0) && ph <= cap(1) && pd <= cap(2) {
                    out.push(SpatialSplit { pw, ph, pd });
                }
            }
        }
    } else {
        for pw in divisors(p) {
            let ph = p / pw;
            if pw <= cap(0) && ph <= cap(1) {
                out.push(SpatialSplit { pw, ph, pd: 1 });
            }
        }
    }
    out
}

fn divisors(p: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            small.push(d);
            if d * d != p {
                large.push(p / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// One evaluated candidate in a [`SearchReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// The concrete strategy.
    pub strategy: Strategy,
    /// Its full projection (per-phase cost breakdown + memory).
    pub projection: Projection,
}

impl RankedCandidate {
    /// Projected epoch time of this candidate, the ranking key.
    pub fn epoch_time(&self) -> f64 {
        self.projection.cost.epoch_time()
    }
}

/// The best candidate within one PE budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetWinner {
    /// The PE budget (candidates use at most this many PEs).
    pub max_pes: usize,
    /// The fastest feasible candidate within the budget.
    pub candidate: RankedCandidate,
}

/// The result of an exhaustive strategy search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Number of candidates the [`StrategySpace`] enumerated.
    pub enumerated: usize,
    /// Candidates discarded by the memory-capacity check before costing.
    pub pruned_by_memory: usize,
    /// Every costed candidate, fastest first (deterministic order).
    pub ranked: Vec<RankedCandidate>,
    /// The fastest candidate within each power-of-two PE budget
    /// `1, 2, 4, …, constraints.max_pes`, ascending. Budgets smaller than
    /// the smallest feasible candidate's PE count are omitted (don't index
    /// this positionally); a budget where nothing better fits repeats the
    /// previous budget's winner.
    pub best_per_budget: Vec<BudgetWinner>,
}

impl SearchReport {
    /// The overall winner: the fastest feasible candidate, if any survived
    /// the memory pruning.
    pub fn best(&self) -> Option<&RankedCandidate> {
        self.ranked.first()
    }

    /// Number of candidates that were actually costed.
    pub fn evaluated(&self) -> usize {
        self.enumerated - self.pruned_by_memory
    }
}

impl<C: ComputeModel + ?Sized + Sync> Oracle<'_, C> {
    /// The exhaustive candidate space for this oracle's problem under
    /// `constraints`.
    pub fn strategy_space(&self, constraints: &Constraints) -> StrategySpace {
        StrategySpace::new(self.model, self.config.batch_size, constraints)
    }

    /// Exhaustive strategy search, evaluated in parallel across cores with
    /// rayon. Memory-infeasible candidates are pruned before the cost model
    /// runs; the surviving candidates are costed and ranked by projected
    /// epoch time. Deterministic: returns exactly what [`Oracle::search_serial`]
    /// returns.
    pub fn search(&self, constraints: &Constraints) -> SearchReport {
        let candidates = self.strategy_space(constraints).into_vec();
        let outcomes: Vec<Option<RankedCandidate>> = candidates
            .par_iter()
            .map(|&strategy| self.evaluate_candidate(strategy, constraints))
            .collect();
        self.build_report(candidates.len(), outcomes, constraints)
    }

    /// Single-threaded reference implementation of [`Oracle::search`], used
    /// by the equivalence tests and as the baseline of the speedup benchmark.
    pub fn search_serial(&self, constraints: &Constraints) -> SearchReport {
        let candidates = self.strategy_space(constraints).into_vec();
        let outcomes: Vec<Option<RankedCandidate>> = candidates
            .iter()
            .map(|&strategy| self.evaluate_candidate(strategy, constraints))
            .collect();
        self.build_report(candidates.len(), outcomes, constraints)
    }

    /// Memory-prunes then costs one candidate. Returns `None` when the
    /// candidate cannot fit the per-PE memory capacity (cheap check — no
    /// cost-model evaluation happens for pruned candidates).
    fn evaluate_candidate(
        &self,
        strategy: Strategy,
        constraints: &Constraints,
    ) -> Option<RankedCandidate> {
        let mem = memory_per_pe(self.model, &self.config, strategy);
        if mem > constraints.memory_capacity_bytes {
            return None;
        }
        let cost = estimate_with_memory(
            self.model,
            self.device,
            self.cluster,
            &self.config,
            strategy,
            mem,
        );
        let projection = Projection { cost, fits_memory: true, within_scaling_limit: true };
        Some(RankedCandidate { strategy, projection })
    }

    fn build_report(
        &self,
        enumerated: usize,
        outcomes: Vec<Option<RankedCandidate>>,
        constraints: &Constraints,
    ) -> SearchReport {
        let mut ranked: Vec<RankedCandidate> = outcomes.into_iter().flatten().collect();
        let pruned_by_memory = enumerated - ranked.len();
        ranked.sort_by(|a, b| {
            a.epoch_time()
                .total_cmp(&b.epoch_time())
                .then_with(|| strategy_sort_key(&a.strategy).cmp(&strategy_sort_key(&b.strategy)))
        });

        let mut best_per_budget = Vec::new();
        for budget in powers_of_two(1, constraints.max_pes.max(1)) {
            let winner = ranked.iter().find(|c| c.strategy.total_pes() <= budget).copied();
            if let Some(candidate) = winner {
                best_per_budget.push(BudgetWinner { max_pes: budget, candidate });
            }
        }

        SearchReport { enumerated, pruned_by_memory, ranked, best_per_budget }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::compute::DeviceProfile;
    use crate::config::TrainingConfig;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 64, (32, 32), 2, 2),
                Layer::conv2d("c2", 64, 128, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 128, &[16, 16]),
                Layer::fully_connected("fc", 128, 10),
            ],
        )
    }

    fn constraints() -> Constraints {
        Constraints { max_pes: 256, ..Constraints::default() }
    }

    #[test]
    fn space_covers_all_strategy_kinds() {
        let m = model();
        let space = StrategySpace::new(&m, 64, &constraints());
        let kinds: std::collections::HashSet<StrategyKind> =
            space.clone().map(|s| s.kind()).collect();
        for kind in StrategyKind::ALL {
            assert!(kinds.contains(&kind), "missing {kind} candidates");
        }
    }

    #[test]
    fn space_candidates_respect_limits_and_are_unique() {
        let m = model();
        let c = constraints();
        let space = StrategySpace::new(&m, 64, &c);
        let all: Vec<Strategy> = space.clone().collect();
        assert_eq!(all.len(), space.len());
        let unique: std::collections::HashSet<&Strategy> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "duplicate candidates");
        for s in &all {
            assert!(s.total_pes() <= c.max_pes, "{s} exceeds max_pes");
            assert!(s.validate(&m, 64).is_ok(), "{s} violates a scaling limit");
        }
    }

    #[test]
    fn spatial_candidates_enumerate_factorizations() {
        let m = model();
        let space = StrategySpace::new(&m, 64, &constraints());
        let splits: Vec<SpatialSplit> = space
            .filter_map(|s| match s {
                Strategy::Spatial { split } => Some(split),
                _ => None,
            })
            .collect();
        // p = 4 admits 1×4, 2×2, 4×1 on a 2-D model.
        let of4: Vec<&SpatialSplit> = splits.iter().filter(|s| s.total() == 4).collect();
        assert_eq!(of4.len(), 3, "{of4:?}");
    }

    #[test]
    fn parallel_and_serial_search_agree_exactly() {
        let m = model();
        let d = DeviceProfile::v100();
        let cl = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = constraints();
        let par = oracle.search(&c);
        let ser = oracle.search_serial(&c);
        assert_eq!(par.enumerated, ser.enumerated);
        assert_eq!(par.pruned_by_memory, ser.pruned_by_memory);
        assert_eq!(par.ranked.len(), ser.ranked.len());
        for (a, b) in par.ranked.iter().zip(&ser.ranked) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.projection, b.projection);
        }
        let (pb, sb) = (par.best().unwrap(), ser.best().unwrap());
        assert_eq!(pb.strategy, sb.strategy, "winner differs between parallel and serial");
    }

    #[test]
    fn search_prunes_under_tight_memory() {
        let m = model();
        let d = DeviceProfile::v100();
        let cl = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let tight = Constraints { memory_capacity_bytes: 1.0, max_pes: 64, ..Default::default() };
        let report = oracle.search(&tight);
        assert_eq!(report.pruned_by_memory, report.enumerated);
        assert!(report.ranked.is_empty());
        assert!(report.best().is_none());
        assert!(report.best_per_budget.is_empty());
    }

    #[test]
    fn budget_winners_are_monotone_in_budget() {
        let m = model();
        let d = DeviceProfile::v100();
        let cl = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let report = oracle.search(&constraints());
        assert!(!report.best_per_budget.is_empty());
        let mut prev_time = f64::INFINITY;
        let mut prev_budget = 0;
        for winner in &report.best_per_budget {
            assert!(winner.max_pes > prev_budget);
            assert!(winner.candidate.strategy.total_pes() <= winner.max_pes);
            // A larger budget can only help (the smaller budget's winner is
            // still admissible).
            assert!(winner.candidate.epoch_time() <= prev_time + 1e-12);
            prev_budget = winner.max_pes;
            prev_time = winner.candidate.epoch_time();
        }
        // The largest budget's winner is the global winner.
        let last = report.best_per_budget.last().unwrap();
        assert_eq!(last.candidate.strategy, report.best().unwrap().strategy);
    }

    #[test]
    fn search_winner_is_at_least_as_good_as_suggest() {
        let m = model();
        let d = DeviceProfile::v100();
        let cl = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = Constraints::default();
        let best = oracle.search(&c).best().unwrap().projection;
        let suggested = oracle.suggest(&c).unwrap();
        assert!(best.cost.epoch_time() <= suggested.cost.epoch_time() + 1e-12);
    }

    #[test]
    fn divisors_and_factorizations_are_exhaustive() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(spatial_factorizations(4, &[32, 32]).len(), 3);
        // 8 = pw·ph·pd has 10 ordered factorizations into three factors.
        assert_eq!(spatial_factorizations(8, &[64, 64, 64]).len(), 10);
        for split in spatial_factorizations(8, &[64, 64, 64]) {
            assert_eq!(split.total(), 8);
        }
    }

    #[test]
    fn factorizations_respect_per_dimension_extents() {
        // 128 = pw·ph always needs a factor > 13 on a 13×13 plane, even
        // though 128 ≤ 13·13 = 169: no candidate must survive.
        assert!(spatial_factorizations(128, &[13, 13]).is_empty());
        // 8 on a 2×16 plane: only pw ∈ {1, 2} qualify.
        let splits = spatial_factorizations(8, &[2, 16]);
        assert_eq!(splits.len(), 2, "{splits:?}");
        for split in &splits {
            assert!(split.pw <= 2 && split.ph <= 16);
        }
    }

    #[test]
    fn space_never_splits_a_dimension_beyond_its_extent() {
        // AlexNet-like asymmetry: the deepest conv plane is 13×13, so
        // min_spatial_size = 169 admits totals up to 128, but no single
        // dimension may be split more than 13 ways.
        let m = Model::new(
            "deep",
            3,
            vec![227, 227],
            vec![
                Layer::conv2d("c1", 3, 96, (227, 227), 11, 4, 0),
                Layer::conv2d("c2", 96, 256, (13, 13), 3, 1, 1),
                Layer::global_pool("g", 256, &[13, 13]),
                Layer::fully_connected("fc", 256, 10),
            ],
        );
        let caps = m.min_spatial_extents();
        assert_eq!(caps, vec![13, 13]);
        let space = StrategySpace::new(&m, 256, &Constraints::default());
        let mut saw_spatial = false;
        for s in space {
            let split = match s {
                Strategy::Spatial { split } => split,
                Strategy::DataSpatial { split, .. } => split,
                _ => continue,
            };
            saw_spatial = true;
            assert!(split.pw <= 13 && split.ph <= 13, "{s} over-splits a 13-wide dimension");
        }
        assert!(saw_spatial, "expected spatial candidates");
    }
}
