//! Exhaustive, parallel strategy search (the oracle's "suggest the best
//! strategy" role, paper §4.1, scaled up from a powers-of-two sweep of each
//! family to the full candidate space).
//!
//! [`StrategySpace`] enumerates every concrete strategy candidate that
//! respects the user's [`Constraints`] and the model's scaling limits
//! (Table 3): data, spatial (with every divisibility-based
//! [`SpatialSplit`] factorization), filter, channel, pipeline (crossed with
//! the micro-batch segment counts) and the data+filter / data+spatial
//! hybrids. PE counts sweep powers of two by default, or every admissible
//! integer with [`crate::oracle::PeSweep::Exhaustive`]. Validation and limit
//! checks go through the precomputed [`ModelLimits`] table, so enumerating a
//! candidate is `O(1)` in the model depth.
//!
//! [`Oracle::search`] streams the space through the precomputed
//! [`CostEngine`] with rayon across all cores: candidates are memory-pruned
//! before costing, and — when [`Constraints::top_k`] is set — branch-and-bound
//! pruned against a shared atomic best-cost (a candidate whose compute-only
//! lower bound cannot beat the current top-k *or* the best candidate in its
//! PE budget is skipped without costing) while a bounded heap keeps the `k`
//! best instead of sorting every feasible candidate. The result is a ranked
//! [`SearchReport`]. [`Oracle::search_serial`] is the single-threaded
//! engine-backed variant that returns bit-identical results;
//! [`Oracle::search_reference`] is the original per-layer slow path kept as
//! the equivalence-tested reference and benchmark baseline.

use crate::compute::ComputeModel;
use crate::cost::estimate_with_memory;
use crate::engine::{CostEngine, ModelLimits};
use crate::memory::memory_per_pe;
use crate::model::Model;
use crate::oracle::{Constraints, Oracle, PeSweep, Projection};
use crate::scaling::powers_of_two;
use crate::strategy::{SpatialSplit, Strategy, StrategyKind};
use rayon::prelude::*;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The exhaustive candidate space for one (model, batch, constraints)
/// problem. Construction enumerates and deduplicates all valid candidates;
/// the type then iterates them in a deterministic order.
#[derive(Debug, Clone)]
pub struct StrategySpace {
    candidates: Vec<Strategy>,
    next: usize,
}

/// PE counts from `lo` to `hi` inclusive under the given sweep mode.
fn pe_counts(lo: usize, hi: usize, sweep: PeSweep) -> Vec<usize> {
    match sweep {
        PeSweep::PowersOfTwo => powers_of_two(lo, hi),
        PeSweep::Exhaustive => (lo.max(1)..=hi).collect(),
    }
}

impl StrategySpace {
    /// Enumerates every candidate strategy for `model` trained with global
    /// mini-batch `batch` under `constraints`. Candidates violating a scaling
    /// limit (Table 3) or exceeding `constraints.max_pes` are never produced;
    /// memory feasibility is intentionally *not* checked here so the search
    /// can report how many candidates its memory pruning removed.
    pub fn new(model: &Model, batch: usize, constraints: &Constraints) -> Self {
        Self::with_limits(batch, constraints, &ModelLimits::of(model))
    }

    /// Like [`StrategySpace::new`], but reuses a precomputed [`ModelLimits`]
    /// table (e.g. the one inside a [`CostEngine`]) so every candidate is
    /// validated in `O(1)`.
    ///
    /// Emits candidates directly in [`strategy_sort_key`] order, with no
    /// global sort: the non-hybrid families already enumerate in key order
    /// (family-major, PE count ascending, family parameters ascending), and
    /// the data+filter / data+spatial hybrids are generated total-PE-major
    /// from a divisor sieve (exhaustive sweep) or a small sorted cross
    /// product (powers-of-two sweep). The paper-scale exhaustive spaces are
    /// hybrid-dominated, so skipping the multi-million-candidate sort is one
    /// of the kernel's enumeration wins. Equivalence with the plain nested
    /// loops is pinned by [`StrategySpace::with_limits_reference`] tests.
    pub fn with_limits(batch: usize, constraints: &Constraints, limits: &ModelLimits) -> Self {
        let max_pes = constraints.max_pes.max(1);
        let sweep = constraints.sweep;
        let mut candidates: Vec<Strategy> = Vec::new();
        let mut push = |s: Strategy| {
            if s.total_pes() <= max_pes && limits.is_valid(s, batch) {
                candidates.push(s);
            }
        };

        push(Strategy::Serial);

        for p in pe_counts(1, max_pes.min(batch), sweep) {
            push(Strategy::Data { p });
        }

        // Divisibility table: all valid factorizations per spatial PE count,
        // computed once and shared between the pure-spatial and data+spatial
        // enumerations.
        let spatial_caps = &limits.min_spatial_extents;
        let mut split_memo: HashMap<usize, Vec<SpatialSplit>> = HashMap::new();

        for p in pe_counts(2, max_pes.min(limits.min_spatial_size), sweep) {
            let splits =
                split_memo.entry(p).or_insert_with(|| spatial_factorizations(p, spatial_caps));
            for &split in splits.iter() {
                push(Strategy::Spatial { split });
            }
        }

        for p in pe_counts(2, max_pes.min(limits.min_filters), sweep) {
            push(Strategy::Filter { p });
        }

        for p in pe_counts(2, max_pes.min(limits.min_channels_after_first), sweep) {
            push(Strategy::Channel { p });
        }

        let seg_cap = constraints.pipeline_segments.max(1).min(batch);
        for p in pe_counts(2, max_pes.min(limits.num_layers), sweep) {
            for segments in pe_counts(1, seg_cap, sweep) {
                push(Strategy::Pipeline { p, segments });
            }
        }

        match sweep {
            PeSweep::Exhaustive => {
                // Total-major hybrid enumeration from a divisor sieve: for
                // every total `T = p1·p2`, the admissible group sizes `p2`
                // are exactly the divisors of `T` within the family's
                // scaling limit. Iterating divisors descending makes `p1 =
                // T/p2` ascend, which is the tie-break order of
                // `strategy_sort_key` — so the emission is sorted without
                // comparing a single key.
                let sieve = DivisorSieve::build(
                    max_pes.min(
                        batch
                            .saturating_mul(limits.min_filters.max(limits.min_spatial_size))
                            .max(1),
                    ),
                    limits.min_filters.max(limits.min_spatial_size),
                );
                for t in 2..=sieve.tmax {
                    for &d in sieve.divisors(t).iter().rev() {
                        let p2 = d as usize;
                        if p2 > limits.min_filters {
                            continue;
                        }
                        let p1 = t / p2;
                        if p1 > batch {
                            break; // p1 ascends as the divisor descends
                        }
                        push(Strategy::DataFilter { p1, p2 });
                    }
                }
                for t in 2..=sieve.tmax {
                    for &d in sieve.divisors(t).iter().rev() {
                        let p2 = d as usize;
                        if p2 > limits.min_spatial_size {
                            continue;
                        }
                        let p1 = t / p2;
                        if p1 > batch {
                            break;
                        }
                        let splits = split_memo
                            .entry(p2)
                            .or_insert_with(|| spatial_factorizations(p2, spatial_caps));
                        for &split in splits.iter() {
                            push(Strategy::DataSpatial { p1, split });
                        }
                    }
                }
            }
            PeSweep::PowersOfTwo => {
                // The powers-of-two cross products are tiny (log² many
                // pairs), so generating them unsorted and sorting per family
                // is cheaper than building a sieve.
                let mut tail: Vec<Strategy> = Vec::new();
                let filter_counts = pe_counts(2, limits.min_filters, sweep);
                let spatial_counts = pe_counts(2, limits.min_spatial_size, sweep);
                for p1 in pe_counts(1, batch, sweep) {
                    for &p2 in &filter_counts {
                        // Saturating: huge hostile batches must break out,
                        // not overflow.
                        if p1.saturating_mul(p2) > max_pes {
                            break; // PE counts are ascending
                        }
                        tail.push(Strategy::DataFilter { p1, p2 });
                    }
                    for &p2 in &spatial_counts {
                        if p1.saturating_mul(p2) > max_pes {
                            break;
                        }
                        let splits = split_memo
                            .entry(p2)
                            .or_insert_with(|| spatial_factorizations(p2, spatial_caps));
                        for &split in splits.iter() {
                            tail.push(Strategy::DataSpatial { p1, split });
                        }
                    }
                }
                tail.sort_by_key(strategy_sort_key);
                for s in tail {
                    push(s);
                }
            }
        }

        debug_assert!(
            candidates.windows(2).all(|w| strategy_sort_key(&w[0]) < strategy_sort_key(&w[1])),
            "sieve enumeration must emit strictly increasing sort keys"
        );
        StrategySpace { candidates, next: 0 }
    }

    /// The straightforward nested-loop enumeration [`StrategySpace::with_limits`]
    /// replaced: generate every family's cross product, then globally
    /// sort + dedup by [`strategy_sort_key`]. Kept as the equivalence-tested
    /// reference for the sieve-based enumerator and as the mechanical
    /// baseline of the kernel benchmark.
    pub fn with_limits_reference(
        batch: usize,
        constraints: &Constraints,
        limits: &ModelLimits,
    ) -> Self {
        let max_pes = constraints.max_pes.max(1);
        let sweep = constraints.sweep;
        let mut candidates: Vec<Strategy> = Vec::new();
        let mut push = |s: Strategy| {
            if s.total_pes() <= max_pes && limits.is_valid(s, batch) {
                candidates.push(s);
            }
        };

        push(Strategy::Serial);
        for p in pe_counts(1, max_pes.min(batch), sweep) {
            push(Strategy::Data { p });
        }
        let spatial_caps = &limits.min_spatial_extents;
        let mut split_memo: HashMap<usize, Vec<SpatialSplit>> = HashMap::new();
        for p in pe_counts(2, max_pes.min(limits.min_spatial_size), sweep) {
            let splits =
                split_memo.entry(p).or_insert_with(|| spatial_factorizations(p, spatial_caps));
            for &split in splits.iter() {
                push(Strategy::Spatial { split });
            }
        }
        for p in pe_counts(2, max_pes.min(limits.min_filters), sweep) {
            push(Strategy::Filter { p });
        }
        for p in pe_counts(2, max_pes.min(limits.min_channels_after_first), sweep) {
            push(Strategy::Channel { p });
        }
        let seg_cap = constraints.pipeline_segments.max(1).min(batch);
        for p in pe_counts(2, max_pes.min(limits.num_layers), sweep) {
            for segments in pe_counts(1, seg_cap, sweep) {
                push(Strategy::Pipeline { p, segments });
            }
        }
        let filter_counts = pe_counts(2, limits.min_filters, sweep);
        let spatial_counts = pe_counts(2, limits.min_spatial_size, sweep);
        for p1 in pe_counts(1, batch, sweep) {
            for &p2 in &filter_counts {
                if p1.saturating_mul(p2) > max_pes {
                    break;
                }
                push(Strategy::DataFilter { p1, p2 });
            }
            for &p2 in &spatial_counts {
                if p1.saturating_mul(p2) > max_pes {
                    break;
                }
                let splits = split_memo
                    .entry(p2)
                    .or_insert_with(|| spatial_factorizations(p2, spatial_caps));
                for &split in splits.iter() {
                    push(Strategy::DataSpatial { p1, split });
                }
            }
        }

        // The sort key is injective on candidates, so sorting makes any
        // duplicates adjacent and `dedup` removes them.
        candidates.sort_by_key(strategy_sort_key);
        candidates.dedup();
        StrategySpace { candidates, next: 0 }
    }

    /// Number of candidates **remaining** (not yet yielded by the iterator).
    /// On a freshly constructed space this is the total candidate count;
    /// it decreases as the iterator advances, consistently with
    /// [`StrategySpace::as_slice`] and [`ExactSizeIterator`].
    pub fn len(&self) -> usize {
        self.candidates.len() - self.next.min(self.candidates.len())
    }

    /// Whether no candidates remain (a fresh space never is empty: `Serial`
    /// always qualifies).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining candidates as a slice, without consuming the iterator.
    pub fn as_slice(&self) -> &[Strategy] {
        &self.candidates[self.next.min(self.candidates.len())..]
    }

    /// Consumes the space, returning the remaining candidates.
    pub fn into_vec(mut self) -> Vec<Strategy> {
        self.candidates.split_off(self.next.min(self.candidates.len()))
    }
}

impl Iterator for StrategySpace {
    type Item = Strategy;

    fn next(&mut self) -> Option<Strategy> {
        let item = self.candidates.get(self.next).copied();
        self.next += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.len();
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for StrategySpace {}

/// Deterministic enumeration order: by strategy family, then PE count, then
/// the family-specific parameters. Injective on valid candidates (the
/// omitted parameters are implied by the included ones), which is what lets
/// the enumerator deduplicate with sort+dedup.
pub(crate) fn strategy_sort_key(s: &Strategy) -> (u8, usize, usize, usize, usize) {
    let family = match s.kind() {
        StrategyKind::Serial => 0,
        StrategyKind::Data => 1,
        StrategyKind::Spatial => 2,
        StrategyKind::Filter => 3,
        StrategyKind::Channel => 4,
        StrategyKind::Pipeline => 5,
        StrategyKind::DataFilter => 6,
        StrategyKind::DataSpatial => 7,
    };
    let (a, b, c) = match *s {
        Strategy::Spatial { split } => (split.pw, split.ph, split.pd),
        Strategy::Pipeline { segments, .. } => (segments, 0, 0),
        Strategy::DataFilter { p1, p2 } => (p1, p2, 0),
        Strategy::DataSpatial { p1, split } => (p1, split.pw, split.ph),
        _ => (0, 0, 0),
    };
    (family, s.total_pes(), a, b, c)
}

/// All ordered factorizations of `p` into 2 or 3 spatial split factors
/// (`p = pw·ph` or `p = pw·ph·pd`, rank = `caps.len()`), keeping only those
/// where every factor fits its dimension: splitting a dimension into more
/// parts than its smallest extent (`caps`, see
/// [`Model::min_spatial_extents`]) is physically impossible even when the
/// *total* stays within `min_spatial_size`.
fn spatial_factorizations(p: usize, caps: &[usize]) -> Vec<SpatialSplit> {
    let cap = |dim: usize| caps.get(dim).copied().unwrap_or(1);
    let mut out = Vec::new();
    if caps.len() >= 3 {
        for pw in divisors(p) {
            let rest = p / pw;
            for ph in divisors(rest) {
                let pd = rest / ph;
                if pw <= cap(0) && ph <= cap(1) && pd <= cap(2) {
                    out.push(SpatialSplit { pw, ph, pd });
                }
            }
        }
    } else {
        for pw in divisors(p) {
            let ph = p / pw;
            if pw <= cap(0) && ph <= cap(1) {
                out.push(SpatialSplit { pw, ph, pd: 1 });
            }
        }
    }
    out
}

fn divisors(p: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            small.push(d);
            if d * d != p {
                large.push(p / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// A harmonic divisor sieve in CSR layout: for every total `2 ≤ T ≤ tmax`,
/// the divisors of `T` in `[2, dmax]`, ascending. Building costs
/// `Σ_{d ≤ dmax} tmax/d = O(tmax · ln dmax)` — proportional to the hybrid
/// candidate count it drives, so the total-major enumeration stays linear in
/// its output.
struct DivisorSieve {
    /// Largest total covered.
    tmax: usize,
    /// CSR row offsets: row `T`'s divisors live at `data[off[T]..off[T+1]]`.
    off: Vec<u32>,
    /// Concatenated divisor lists (each ascending).
    data: Vec<u32>,
}

impl DivisorSieve {
    fn build(tmax: usize, dmax: usize) -> Self {
        let dmax = dmax.min(tmax);
        let n = tmax + 1;
        let mut off = vec![0u32; n + 1];
        for d in 2..=dmax {
            let mut t = d;
            while t <= tmax {
                off[t + 1] += 1;
                t += d;
            }
        }
        for i in 1..=n {
            off[i] += off[i - 1];
        }
        let mut cursor: Vec<u32> = off[..n].to_vec();
        let mut data = vec![0u32; off[n] as usize];
        // Outer loop ascending in `d` ⇒ each row fills in ascending order.
        for d in 2..=dmax {
            let mut t = d;
            while t <= tmax {
                data[cursor[t] as usize] = d as u32;
                cursor[t] += 1;
                t += d;
            }
        }
        DivisorSieve { tmax, off, data }
    }

    fn divisors(&self, t: usize) -> &[u32] {
        &self.data[self.off[t] as usize..self.off[t + 1] as usize]
    }
}

/// One evaluated candidate in a [`SearchReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// The concrete strategy.
    pub strategy: Strategy,
    /// Its full projection (per-phase cost breakdown + memory).
    pub projection: Projection,
}

impl RankedCandidate {
    /// Projected epoch time of this candidate, the ranking key.
    pub fn epoch_time(&self) -> f64 {
        self.projection.cost.epoch_time()
    }
}

/// Full ranking order: epoch time, ties broken by the deterministic
/// enumeration key.
pub(crate) fn candidate_cmp(a: &RankedCandidate, b: &RankedCandidate) -> std::cmp::Ordering {
    a.epoch_time()
        .total_cmp(&b.epoch_time())
        .then_with(|| strategy_sort_key(&a.strategy).cmp(&strategy_sort_key(&b.strategy)))
}

/// The best candidate within one PE budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetWinner {
    /// The PE budget (candidates use at most this many PEs).
    pub max_pes: usize,
    /// The fastest feasible candidate within the budget.
    pub candidate: RankedCandidate,
}

/// The result of an exhaustive strategy search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Number of candidates the [`StrategySpace`] enumerated.
    pub enumerated: usize,
    /// Candidates discarded by the memory-capacity check before costing.
    pub pruned_by_memory: usize,
    /// Candidates skipped by *dynamic* branch-and-bound pruning (compute-only
    /// lower bound already worse than the running winners) before costing.
    /// Always 0 unless [`Constraints::top_k`] is set. The exact count depends
    /// on evaluation order and is therefore **not** deterministic across
    /// runs — only the ranked results are. The analytic kernel
    /// ([`crate::kernel`]) never uses this counter: its pruning is static and
    /// lands in `pruned_by_dominance` instead.
    pub pruned_by_bound: usize,
    /// Candidates discarded by the kernel's static dominance bound before
    /// costing: their compute-only lower bound provably exceeds what an
    /// already-known candidate achieves at every PE budget they belong to
    /// (see [`crate::kernel::StaticBounds`]). Unlike `pruned_by_bound` this
    /// count is **deterministic**: the bound is fixed before the scan starts
    /// and the per-chunk counts are accumulated commutatively, so any
    /// evaluation order produces the same number. Always 0 on the streaming
    /// search paths.
    pub pruned_by_dominance: usize,
    /// The costed candidates, fastest first (deterministic order): every
    /// feasible candidate when [`Constraints::top_k`] is `None`, otherwise
    /// the `k` best.
    pub ranked: Vec<RankedCandidate>,
    /// The fastest candidate within each power-of-two PE budget
    /// `1, 2, 4, …, constraints.max_pes`, ascending — tracked independently
    /// of `top_k`, so small-budget winners are reported even when they rank
    /// outside the global top-k. Budgets smaller than the smallest feasible
    /// candidate's PE count are omitted (don't index this positionally); a
    /// budget where nothing better fits repeats the previous budget's winner.
    pub best_per_budget: Vec<BudgetWinner>,
}

impl SearchReport {
    /// The overall winner: the fastest feasible candidate, if any survived
    /// the memory pruning.
    pub fn best(&self) -> Option<&RankedCandidate> {
        self.ranked.first()
    }

    /// Number of candidates that were actually costed.
    pub fn evaluated(&self) -> usize {
        self.enumerated - self.pruned_by_memory - self.pruned_by_bound - self.pruned_by_dominance
    }

    /// Total candidates discarded before costing, by any pruning stage.
    pub fn pruned(&self) -> usize {
        self.pruned_by_memory + self.pruned_by_bound + self.pruned_by_dominance
    }

    /// The `n` fastest ranked candidates (fewer when the ranking is
    /// shorter) — the winners a validation harness replays against
    /// measurements (see `paradl_core::validate`).
    pub fn top(&self, n: usize) -> &[RankedCandidate] {
        &self.ranked[..n.min(self.ranked.len())]
    }
}

/// Max-heap entry of the bounded top-k heap: the *worst* retained candidate
/// sits at the top so it can be evicted in `O(log k)`.
struct HeapEntry {
    /// The candidate's epoch time as IEEE-754 bits: epoch times are
    /// non-negative, so the bit pattern orders like the float value.
    time_bits: u64,
    key: (u8, usize, usize, usize, usize),
    candidate: RankedCandidate,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_bits, self.key).cmp(&(other.time_bits, other.key))
    }
}

/// Budget index of a PE count: the smallest `i` with `2^i ≥ p`.
pub(crate) fn budget_index(pes: usize) -> usize {
    pes.max(1).next_power_of_two().trailing_zeros() as usize
}

/// Lowers a shared non-negative f64 (stored as bits) towards `value`.
fn atomic_min(cell: &AtomicU64, value: f64) {
    let new_bits = value.to_bits();
    let mut current = cell.load(Ordering::Relaxed);
    while value < f64::from_bits(current) {
        match cell.compare_exchange_weak(current, new_bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(observed) => current = observed,
        }
    }
}

/// Shared state of one streaming search: prune counters, the per-budget
/// atomic best costs, and — when `top_k` is set — the bounded heap plus the
/// atomic k-th-best threshold that drives branch-and-bound pruning. All
/// updates are monotone (thresholds only decrease), so stale reads are
/// merely conservative and the final results are order-independent —
/// which is also what lets [`crate::grid::GridSweep`] interleave the chunks
/// of one query with other queries' work.
pub(crate) struct SearchShared {
    top_k: Option<usize>,
    /// Current k-th best epoch time (bits); `+∞` until the heap holds `k`.
    threshold: AtomicU64,
    /// Best epoch time seen per budget index (bits).
    budget_best: Vec<AtomicU64>,
    heap: Mutex<BinaryHeap<HeapEntry>>,
    pruned_memory: AtomicUsize,
    pruned_bound: AtomicUsize,
    pruned_dominance: AtomicUsize,
}

impl SearchShared {
    pub(crate) fn new(constraints: &Constraints) -> Self {
        let slots = budget_index(constraints.max_pes.max(1)) + 1;
        SearchShared {
            top_k: constraints.top_k,
            threshold: AtomicU64::new(f64::INFINITY.to_bits()),
            budget_best: (0..slots).map(|_| AtomicU64::new(f64::INFINITY.to_bits())).collect(),
            heap: Mutex::new(BinaryHeap::new()),
            pruned_memory: AtomicUsize::new(0),
            pruned_bound: AtomicUsize::new(0),
            pruned_dominance: AtomicUsize::new(0),
        }
    }

    /// Seeds the memory-pruned counter (used by the grid sweep, which
    /// memory-filters candidates once per (model, batch) before the
    /// per-cluster evaluation).
    pub(crate) fn set_memory_pruned(&self, n: usize) {
        self.pruned_memory.store(n, Ordering::Relaxed);
    }

    /// Number of PE-budget slots tracked by this search.
    pub(crate) fn num_budget_slots(&self) -> usize {
        self.budget_best.len()
    }

    /// Current best epoch time recorded for budget slot `idx` (`+∞` until a
    /// candidate of that budget is observed).
    pub(crate) fn budget_best_time(&self, idx: usize) -> f64 {
        f64::from_bits(self.budget_best[idx].load(Ordering::Relaxed))
    }

    /// Records one bound-pruned candidate (callers that inline the
    /// [`SearchShared::should_prune`] check, like the grid sweep's top-k
    /// path, use this to keep the report accounting consistent).
    pub(crate) fn count_bound_pruned(&self) {
        self.pruned_bound.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` statically dominance-pruned candidates (the kernel counts
    /// per chunk and adds in bulk; addition is commutative, so the total is
    /// order-independent and deterministic).
    pub(crate) fn count_dominance_pruned(&self, n: usize) {
        self.pruned_dominance.fetch_add(n, Ordering::Relaxed);
    }

    /// The `top_k` this search was configured with.
    pub(crate) fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Pre-tightens the top-k threshold from the kernel's seed panel: the
    /// k-th best seed time is an upper bound on the final k-th best overall,
    /// so candidates strictly above it can be rejected from the heap's fast
    /// path immediately instead of after `k` heap insertions. Seeds are real
    /// candidates that are re-offered during the normal scan, so priming
    /// never changes the final heap contents. No-op unless `top_k ≥ 1`.
    pub(crate) fn prime_threshold(&self, time: f64) {
        if matches!(self.top_k, Some(k) if k > 0) {
            atomic_min(&self.threshold, time);
        }
    }

    /// Whether a candidate with compute-only lower bound `lb` can be skipped:
    /// it can neither enter the top-k nor win any PE budget it belongs to.
    pub(crate) fn should_prune(&self, lb: f64, strategy: &Strategy) -> bool {
        if self.top_k.is_none() {
            return false;
        }
        let threshold = f64::from_bits(self.threshold.load(Ordering::Relaxed));
        if lb <= threshold {
            return false;
        }
        let idx = budget_index(strategy.total_pes());
        let budget = f64::from_bits(self.budget_best[idx].load(Ordering::Relaxed));
        lb > budget
    }

    /// Records an evaluated candidate in the budget table and top-k heap.
    fn observe(&self, candidate: &RankedCandidate) {
        self.record_budget(budget_index(candidate.strategy.total_pes()), candidate.epoch_time());
        self.offer_topk(candidate);
    }

    /// Lowers the budget slot's best time towards `time` (a no-op when
    /// `time` is not an improvement, so callers may skip it in that case).
    pub(crate) fn record_budget(&self, idx: usize, time: f64) {
        atomic_min(&self.budget_best[idx], time);
    }

    /// Current top-k threshold (the k-th best epoch time; `+∞` until the
    /// heap holds `k` candidates). Candidates strictly above it can never
    /// enter the heap — the threshold only decreases.
    pub(crate) fn threshold_time(&self) -> f64 {
        f64::from_bits(self.threshold.load(Ordering::Relaxed))
    }

    /// Offers an evaluated candidate to the bounded top-k heap (no-op when
    /// `top_k` is unset or the candidate is strictly worse than the current
    /// k-th best).
    pub(crate) fn offer_topk(&self, candidate: &RankedCandidate) {
        self.offer_topk_lazy(candidate.epoch_time(), &candidate.strategy, || *candidate);
    }

    /// [`SearchShared::offer_topk`] with the candidate's construction
    /// deferred: heap ordering is exactly `(epoch-time bits, strategy sort
    /// key)` — see [`HeapEntry`] — so admission is decided from the scalar
    /// `time` and the strategy alone, and `make` (typically a full
    /// [`CostEstimate`] assembly) runs only when the entry actually enters
    /// the heap. The candidate-evaluation kernel leans on this: of the
    /// millions of gate survivors it offers, only the handful that displace
    /// a heap entry pay for an estimate. `make` must produce a candidate
    /// whose epoch time is `time` (debug-asserted).
    pub(crate) fn offer_topk_lazy(
        &self,
        time: f64,
        strategy: &Strategy,
        make: impl FnOnce() -> RankedCandidate,
    ) {
        let Some(k) = self.top_k else { return };
        if k == 0 {
            return;
        }
        // Lock-free fast path: strictly worse than the current k-th best can
        // never enter the heap (the threshold only decreases).
        if time > self.threshold_time() {
            return;
        }
        let time_bits = time.to_bits();
        let key = strategy_sort_key(strategy);
        let mut heap = self.heap.lock().expect("top-k heap poisoned");
        if heap.len() < k {
            let candidate = make();
            debug_assert_eq!(candidate.epoch_time().to_bits(), time_bits);
            heap.push(HeapEntry { time_bits, key, candidate });
            if heap.len() == k {
                let worst = heap.peek().expect("non-empty heap");
                self.threshold.store(worst.time_bits, Ordering::Relaxed);
            }
        } else if let Some(worst) = heap.peek() {
            if (time_bits, key) < (worst.time_bits, worst.key) {
                let candidate = make();
                debug_assert_eq!(candidate.epoch_time().to_bits(), time_bits);
                heap.pop();
                heap.push(HeapEntry { time_bits, key, candidate });
                let worst = heap.peek().expect("non-empty heap");
                self.threshold.store(worst.time_bits, Ordering::Relaxed);
            }
        }
    }
}

/// Memory-prunes (against a per-PE memory value the caller already
/// computed), bound-prunes (against a precomputed compute-only lower
/// bound), then costs one candidate through the engine. Shared by the
/// streaming search below and the chunked SoA evaluation of
/// [`crate::grid::GridSweep`], whose prep tables supply `mem` and `lb` so
/// neither is recomputed per cell.
pub(crate) fn evaluate_pruned_with_bound(
    engine: &CostEngine<'_>,
    strategy: Strategy,
    mem: f64,
    lb: f64,
    constraints: &Constraints,
    shared: &SearchShared,
) -> Option<RankedCandidate> {
    if mem > constraints.memory_capacity_bytes {
        shared.pruned_memory.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    if shared.should_prune(lb, &strategy) {
        shared.pruned_bound.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let cost = engine.estimate_with_memory(strategy, mem);
    let candidate = RankedCandidate {
        strategy,
        projection: Projection { cost, fits_memory: true, within_scaling_limit: true },
    };
    shared.observe(&candidate);
    Some(candidate)
}

/// Memory-prunes, bound-prunes, then costs one candidate through the engine.
fn evaluate_streaming(
    engine: &CostEngine<'_>,
    strategy: Strategy,
    constraints: &Constraints,
    shared: &SearchShared,
) -> Option<RankedCandidate> {
    evaluate_pruned_with_bound(
        engine,
        strategy,
        engine.memory_per_pe(strategy),
        engine.lower_bound(strategy),
        constraints,
        shared,
    )
}

/// Assembles the final report from the streamed survivors. Order-independent:
/// `ranked` is re-sorted by the total candidate order (or drained from the
/// top-k heap) and the budget winners are minima under the same order, so
/// any interleaving of the evaluation produces the same report (modulo the
/// `pruned_by_bound` counter, which is documented as non-deterministic).
pub(crate) fn finish_report(
    enumerated: usize,
    survivors: Vec<RankedCandidate>,
    constraints: &Constraints,
    shared: SearchShared,
) -> SearchReport {
    let pruned_by_memory = shared.pruned_memory.load(Ordering::Relaxed);
    let pruned_by_bound = shared.pruned_bound.load(Ordering::Relaxed);
    let pruned_by_dominance = shared.pruned_dominance.load(Ordering::Relaxed);
    let budgets = powers_of_two(1, constraints.max_pes.max(1));

    let (ranked, best_per_budget) = match shared.top_k {
        None => {
            let mut ranked = survivors;
            ranked.sort_by(candidate_cmp);
            let mut best_per_budget = Vec::new();
            for &budget in &budgets {
                let winner = ranked.iter().find(|c| c.strategy.total_pes() <= budget).copied();
                if let Some(candidate) = winner {
                    best_per_budget.push(BudgetWinner { max_pes: budget, candidate });
                }
            }
            (ranked, best_per_budget)
        }
        Some(_) => {
            // Budget winners from every evaluated candidate (the bound
            // pruning guarantees no budget winner was skipped), independent
            // of the global top-k.
            let mut slot_best: Vec<Option<RankedCandidate>> = vec![None; budgets.len()];
            for c in &survivors {
                let idx = budget_index(c.strategy.total_pes());
                if let Some(slot) = slot_best.get_mut(idx) {
                    let better = slot
                        .map(|cur| candidate_cmp(c, &cur) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if better {
                        *slot = Some(*c);
                    }
                }
            }
            return finish_report_topk(enumerated, slot_best, constraints, shared);
        }
    };

    SearchReport {
        enumerated,
        pruned_by_memory,
        pruned_by_bound,
        pruned_by_dominance,
        ranked,
        best_per_budget,
    }
}

/// Top-k variant of [`finish_report`] taking the per-budget-slot best
/// candidates directly instead of the full survivor list. The grid sweep
/// maintains the slots incrementally during evaluation (the minimum under
/// [`candidate_cmp`] is order-independent), which avoids materializing the
/// hundreds of thousands of costed candidates a paper-scale cell produces
/// when only the `k` best and the budget winners are reported.
pub(crate) fn finish_report_topk(
    enumerated: usize,
    slot_best: Vec<Option<RankedCandidate>>,
    constraints: &Constraints,
    shared: SearchShared,
) -> SearchReport {
    let pruned_by_memory = shared.pruned_memory.load(Ordering::Relaxed);
    let pruned_by_bound = shared.pruned_bound.load(Ordering::Relaxed);
    let pruned_by_dominance = shared.pruned_dominance.load(Ordering::Relaxed);
    let heap = shared.heap.into_inner().expect("top-k heap poisoned");
    let ranked: Vec<RankedCandidate> =
        heap.into_sorted_vec().into_iter().map(|e| e.candidate).collect();
    let mut best_per_budget = Vec::new();
    let mut running: Option<RankedCandidate> = None;
    for (i, budget) in powers_of_two(1, constraints.max_pes.max(1)).into_iter().enumerate() {
        if let Some(c) = slot_best.get(i).copied().flatten() {
            let better = running
                .map(|cur| candidate_cmp(&c, &cur) == std::cmp::Ordering::Less)
                .unwrap_or(true);
            if better {
                running = Some(c);
            }
        }
        if let Some(candidate) = running {
            best_per_budget.push(BudgetWinner { max_pes: budget, candidate });
        }
    }
    SearchReport {
        enumerated,
        pruned_by_memory,
        pruned_by_bound,
        pruned_by_dominance,
        ranked,
        best_per_budget,
    }
}

impl<C: ComputeModel + ?Sized + Sync> Oracle<'_, C> {
    /// The exhaustive candidate space for this oracle's problem under
    /// `constraints`.
    pub fn strategy_space(&self, constraints: &Constraints) -> StrategySpace {
        StrategySpace::new(self.model, self.config.batch_size, constraints)
    }

    /// Exhaustive strategy search through the precomputed [`CostEngine`],
    /// evaluated in parallel across cores with rayon. Memory-infeasible
    /// candidates are pruned before the cost model runs; with
    /// [`Constraints::top_k`] set, candidates whose compute-only lower bound
    /// cannot beat the running winners are branch-and-bound pruned and only
    /// the `k` best are kept (bounded heap). Deterministic: returns exactly
    /// what [`Oracle::search_serial`] returns.
    ///
    /// Delegates to [`Oracle::answer`] with a ranked-mode
    /// [`crate::query::Query`] (the canonical entry point); the oracle's
    /// cached engine core makes repeated calls cheap.
    ///
    /// # Panics
    ///
    /// Panics if the engine refuses to build for a degenerate problem; use
    /// [`Oracle::answer`] for the fallible path.
    pub fn search(&self, constraints: &Constraints) -> SearchReport {
        let query = crate::query::Query {
            mode: match constraints.top_k {
                Some(k) => crate::query::QueryMode::TopK(k),
                None => crate::query::QueryMode::FullRank,
            },
            constraints: *constraints,
            ..crate::query::Query::default()
        };
        match self.answer(&query).expect("oracle engine build failed") {
            crate::query::QueryAnswer::Ranked(report) => report,
            _ => unreachable!("ranked query modes always produce ranked answers"),
        }
    }

    /// Like [`Oracle::search`], but evaluates through a [`CostEngine`] the
    /// caller already built (possibly [`CostEngine::rebatch`]ed — the
    /// candidate space is enumerated at the *engine's* current batch).
    #[deprecated(since = "0.6.0", note = "use Oracle::answer_with_engine with a ranked-mode Query")]
    pub fn search_with_engine(
        &self,
        engine: &CostEngine<'_>,
        constraints: &Constraints,
    ) -> SearchReport {
        self.search_impl(engine, constraints)
    }

    /// Search evaluation through an explicit engine — the shared body of
    /// [`Oracle::search`], the deprecated `search_with_engine`, and the
    /// ranked arms of `Oracle::answer_with_engine`. Runs the analytic
    /// evaluation kernel ([`crate::kernel`]): SoA prep columns, static
    /// dominance bounds, masked feasibility filtering and incremental cost
    /// deltas — returning exactly what the streaming search returns
    /// (property-tested), only faster.
    pub(crate) fn search_impl(
        &self,
        engine: &CostEngine<'_>,
        constraints: &Constraints,
    ) -> SearchReport {
        crate::kernel::kernel_search(engine, constraints)
    }

    /// The streaming (pre-kernel) search evaluation: every candidate is
    /// memory- and bound-checked then costed individually through `engine`,
    /// with rayon across cores. Kept as the mechanical baseline the analytic
    /// kernel is equivalence-tested and benchmarked against (per-query
    /// grid baselines in `paradl-bench` pin their "naive" side to this).
    pub fn search_streaming(
        &self,
        engine: &CostEngine<'_>,
        constraints: &Constraints,
    ) -> SearchReport {
        let candidates =
            StrategySpace::with_limits(engine.config().batch_size, constraints, engine.limits())
                .into_vec();
        let shared = SearchShared::new(constraints);
        let outcomes: Vec<Option<RankedCandidate>> = candidates
            .par_iter()
            .map(|&strategy| evaluate_streaming(engine, strategy, constraints, &shared))
            .collect();
        let survivors = outcomes.into_iter().flatten().collect();
        finish_report(candidates.len(), survivors, constraints, shared)
    }

    /// Single-threaded variant of [`Oracle::search`] (same engine, same
    /// pruning), used by the equivalence tests and as the parallel-speedup
    /// baseline. Returns bit-identical results to the parallel search.
    pub fn search_serial(&self, constraints: &Constraints) -> SearchReport {
        let engine = self.engine();
        let candidates =
            StrategySpace::with_limits(self.config.batch_size, constraints, engine.limits())
                .into_vec();
        let shared = SearchShared::new(constraints);
        let outcomes: Vec<Option<RankedCandidate>> = candidates
            .iter()
            .map(|&strategy| evaluate_streaming(&engine, strategy, constraints, &shared))
            .collect();
        let survivors = outcomes.into_iter().flatten().collect();
        finish_report(candidates.len(), survivors, constraints, shared)
    }

    /// The original (pre-engine) search path: every candidate re-walks the
    /// model through [`crate::cost::estimate_with_memory`], every feasible
    /// candidate is ranked, and no branch-and-bound pruning happens
    /// ([`Constraints::top_k`] is ignored). Kept as the equivalence-tested
    /// reference for the engine and as the baseline of the
    /// `paradl-bench` `engine` benchmark.
    pub fn search_reference(&self, constraints: &Constraints) -> SearchReport {
        let candidates = self.strategy_space(constraints).into_vec();
        let outcomes: Vec<Option<RankedCandidate>> = candidates
            .par_iter()
            .map(|&strategy| self.evaluate_reference(strategy, constraints))
            .collect();

        let mut ranked: Vec<RankedCandidate> = outcomes.into_iter().flatten().collect();
        let pruned_by_memory = candidates.len() - ranked.len();
        ranked.sort_by(candidate_cmp);

        let mut best_per_budget = Vec::new();
        for budget in powers_of_two(1, constraints.max_pes.max(1)) {
            let winner = ranked.iter().find(|c| c.strategy.total_pes() <= budget).copied();
            if let Some(candidate) = winner {
                best_per_budget.push(BudgetWinner { max_pes: budget, candidate });
            }
        }

        SearchReport {
            enumerated: candidates.len(),
            pruned_by_memory,
            pruned_by_bound: 0,
            pruned_by_dominance: 0,
            ranked,
            best_per_budget,
        }
    }

    /// Memory-prunes then costs one candidate through the reference
    /// (per-layer) cost model.
    fn evaluate_reference(
        &self,
        strategy: Strategy,
        constraints: &Constraints,
    ) -> Option<RankedCandidate> {
        let mem = memory_per_pe(self.model, &self.config, strategy);
        if mem > constraints.memory_capacity_bytes {
            return None;
        }
        let cost = estimate_with_memory(
            self.model,
            self.device,
            self.cluster,
            &self.config,
            strategy,
            mem,
        );
        let projection = Projection { cost, fits_memory: true, within_scaling_limit: true };
        Some(RankedCandidate { strategy, projection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::compute::DeviceProfile;
    use crate::config::TrainingConfig;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 64, (32, 32), 2, 2),
                Layer::conv2d("c2", 64, 128, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 128, &[16, 16]),
                Layer::fully_connected("fc", 128, 10),
            ],
        )
    }

    fn constraints() -> Constraints {
        Constraints { max_pes: 256, ..Constraints::default() }
    }

    fn oracle_parts() -> (Model, DeviceProfile, ClusterSpec, TrainingConfig) {
        (
            model(),
            DeviceProfile::v100(),
            ClusterSpec::paper_system(),
            TrainingConfig::small(8192, 64),
        )
    }

    #[test]
    fn space_covers_all_strategy_kinds() {
        let m = model();
        let space = StrategySpace::new(&m, 64, &constraints());
        let kinds: std::collections::HashSet<StrategyKind> =
            space.clone().map(|s| s.kind()).collect();
        for kind in StrategyKind::ALL {
            assert!(kinds.contains(&kind), "missing {kind} candidates");
        }
    }

    #[test]
    fn space_candidates_respect_limits_and_are_unique() {
        let m = model();
        let c = constraints();
        let space = StrategySpace::new(&m, 64, &c);
        let all: Vec<Strategy> = space.clone().collect();
        assert_eq!(all.len(), space.len());
        let unique: std::collections::HashSet<&Strategy> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "duplicate candidates");
        for s in &all {
            assert!(s.total_pes() <= c.max_pes, "{s} exceeds max_pes");
            assert!(s.validate(&m, 64).is_ok(), "{s} violates a scaling limit");
        }
    }

    #[test]
    fn len_reports_remaining_candidates() {
        let m = model();
        let mut space = StrategySpace::new(&m, 64, &constraints());
        let total = space.len();
        assert!(total > 2);
        assert_eq!(space.as_slice().len(), total);
        space.next();
        space.next();
        assert_eq!(space.len(), total - 2, "len must track the iterator");
        assert_eq!(space.as_slice().len(), total - 2);
        assert_eq!(space.clone().count(), total - 2);
        assert_eq!(space.clone().into_vec().len(), total - 2);
        // ExactSizeIterator agrees with the explicit len.
        let drained: Vec<Strategy> = space.by_ref().collect();
        assert_eq!(drained.len(), total - 2);
        assert!(space.is_empty());
        assert_eq!(space.len(), 0);
    }

    #[test]
    fn exhaustive_sweep_enumerates_every_admissible_pe_count() {
        let m = model();
        let c = Constraints {
            max_pes: 64,
            sweep: crate::oracle::PeSweep::Exhaustive,
            ..Default::default()
        };
        let space = StrategySpace::new(&m, 48, &c);
        let data_counts: Vec<usize> = space
            .clone()
            .filter_map(|s| match s {
                Strategy::Data { p } => Some(p),
                _ => None,
            })
            .collect();
        // Every p from 1 to min(max_pes, batch) = 48 must appear.
        assert_eq!(data_counts, (1..=48).collect::<Vec<_>>());
        // The power-of-two space is a strict subset.
        let pow2 = StrategySpace::new(&m, 48, &Constraints { max_pes: 64, ..Default::default() });
        let dense: std::collections::HashSet<Strategy> = space.collect();
        for s in pow2 {
            assert!(dense.contains(&s), "{s} missing from the exhaustive space");
        }
    }

    #[test]
    fn spatial_candidates_enumerate_factorizations() {
        let m = model();
        let space = StrategySpace::new(&m, 64, &constraints());
        let splits: Vec<SpatialSplit> = space
            .filter_map(|s| match s {
                Strategy::Spatial { split } => Some(split),
                _ => None,
            })
            .collect();
        // p = 4 admits 1×4, 2×2, 4×1 on a 2-D model.
        let of4: Vec<&SpatialSplit> = splits.iter().filter(|s| s.total() == 4).collect();
        assert_eq!(of4.len(), 3, "{of4:?}");
    }

    #[test]
    fn sieve_enumeration_matches_reference_enumeration() {
        let m = model();
        let limits = crate::engine::ModelLimits::of(&m);
        for sweep in [crate::oracle::PeSweep::PowersOfTwo, crate::oracle::PeSweep::Exhaustive] {
            let c = Constraints {
                max_pes: 256,
                sweep,
                pipeline_segments: 16,
                ..Constraints::default()
            };
            for batch in [17usize, 48, 64, 96] {
                let fast = StrategySpace::with_limits(batch, &c, &limits).into_vec();
                let reference = StrategySpace::with_limits_reference(batch, &c, &limits).into_vec();
                assert_eq!(fast, reference, "sweep {sweep:?}, batch {batch}");
            }
        }
    }

    #[test]
    fn kernel_survives_degenerate_constraint_edges() {
        // max_pes = 1 collapses the space to Serial-only and a single
        // budget slot; a tiny memory capacity memory-prunes everything.
        // Both must flow through the kernel's mask path without
        // over-pruning or a slot-index panic.
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let single = Constraints { max_pes: 1, top_k: Some(4), ..Constraints::default() };
        let report = oracle.search(&single);
        let serial = oracle.search_serial(&single);
        assert_eq!(report.enumerated, serial.enumerated);
        assert_eq!(report.ranked.len(), serial.ranked.len());
        assert!(!report.ranked.is_empty(), "Serial always fits");
        for (a, b) in report.ranked.iter().zip(&serial.ranked) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.projection, b.projection);
        }
        assert_eq!(report.best_per_budget.len(), serial.best_per_budget.len());

        let tiny = Constraints {
            max_pes: 256,
            memory_capacity_bytes: 1.0,
            top_k: Some(4),
            ..Constraints::default()
        };
        let starved = oracle.search(&tiny);
        assert!(starved.ranked.is_empty(), "nothing fits in one byte");
        assert_eq!(starved.pruned_by_memory, starved.enumerated);
        assert_eq!(starved.pruned_by_dominance, 0);
        assert!(starved.best_per_budget.is_empty());
    }

    #[test]
    fn parallel_and_serial_search_agree_exactly() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = constraints();
        let par = oracle.search(&c);
        let ser = oracle.search_serial(&c);
        assert_eq!(par.enumerated, ser.enumerated);
        assert_eq!(par.pruned_by_memory, ser.pruned_by_memory);
        assert_eq!(par.ranked.len(), ser.ranked.len());
        for (a, b) in par.ranked.iter().zip(&ser.ranked) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.projection, b.projection);
        }
        let (pb, sb) = (par.best().unwrap(), ser.best().unwrap());
        assert_eq!(pb.strategy, sb.strategy, "winner differs between parallel and serial");
    }

    #[test]
    fn parallel_and_serial_agree_with_pruning() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = Constraints { top_k: Some(5), ..constraints() };
        let par = oracle.search(&c);
        let ser = oracle.search_serial(&c);
        assert_eq!(par.ranked.len(), ser.ranked.len());
        for (a, b) in par.ranked.iter().zip(&ser.ranked) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.projection, b.projection);
        }
        assert_eq!(par.best_per_budget.len(), ser.best_per_budget.len());
        for (a, b) in par.best_per_budget.iter().zip(&ser.best_per_budget) {
            assert_eq!(a.max_pes, b.max_pes);
            assert_eq!(a.candidate.strategy, b.candidate.strategy);
        }
    }

    #[test]
    fn top_k_matches_prefix_of_full_ranking() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let full = oracle.search(&constraints());
        for k in [1usize, 3, 10] {
            let pruned = oracle.search(&Constraints { top_k: Some(k), ..constraints() });
            assert_eq!(pruned.enumerated, full.enumerated);
            assert_eq!(pruned.ranked.len(), k.min(full.ranked.len()));
            for (a, b) in pruned.ranked.iter().zip(&full.ranked) {
                assert_eq!(a.strategy, b.strategy, "top-{k} diverges from the full ranking");
                assert_eq!(a.projection, b.projection);
            }
            // Budget winners are tracked independently of top-k.
            assert_eq!(pruned.best_per_budget.len(), full.best_per_budget.len());
            for (a, b) in pruned.best_per_budget.iter().zip(&full.best_per_budget) {
                assert_eq!(a.max_pes, b.max_pes);
                assert_eq!(
                    a.candidate.strategy, b.candidate.strategy,
                    "budget {} winner",
                    a.max_pes
                );
            }
            // Accounting stays consistent.
            assert_eq!(pruned.evaluated() + pruned.pruned(), pruned.enumerated);
        }
    }

    #[test]
    fn engine_search_matches_reference_search() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = constraints();
        let fast = oracle.search(&c);
        let slow = oracle.search_reference(&c);
        assert_eq!(fast.enumerated, slow.enumerated);
        assert_eq!(fast.pruned_by_memory, slow.pruned_by_memory);
        assert_eq!(fast.ranked.len(), slow.ranked.len());
        // Phase times agree to ~1e-9 relative; compare by candidate (the
        // engine reassociates sums, so near-ties may swap rank positions).
        let mut fast_sorted = fast.ranked.clone();
        let mut slow_sorted = slow.ranked.clone();
        fast_sorted.sort_by_key(|c| strategy_sort_key(&c.strategy));
        slow_sorted.sort_by_key(|c| strategy_sort_key(&c.strategy));
        for (a, b) in fast_sorted.iter().zip(&slow_sorted) {
            assert_eq!(a.strategy, b.strategy);
            let (ta, tb) = (a.epoch_time(), b.epoch_time());
            assert!((ta - tb).abs() <= 1e-9 * ta.max(tb), "{}: {ta} vs {tb}", a.strategy);
        }
        let (fb, sb) = (fast.best().unwrap(), slow.best().unwrap());
        let (ta, tb) = (fb.epoch_time(), sb.epoch_time());
        assert!((ta - tb).abs() <= 1e-9 * ta.max(tb), "best diverged: {ta} vs {tb}");
    }

    #[test]
    fn search_prunes_under_tight_memory() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let tight = Constraints { memory_capacity_bytes: 1.0, max_pes: 64, ..Default::default() };
        let report = oracle.search(&tight);
        assert_eq!(report.pruned_by_memory, report.enumerated);
        assert!(report.ranked.is_empty());
        assert!(report.best().is_none());
        assert!(report.best_per_budget.is_empty());
    }

    #[test]
    fn budget_winners_are_monotone_in_budget() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let report = oracle.search(&constraints());
        assert!(!report.best_per_budget.is_empty());
        let mut prev_time = f64::INFINITY;
        let mut prev_budget = 0;
        for winner in &report.best_per_budget {
            assert!(winner.max_pes > prev_budget);
            assert!(winner.candidate.strategy.total_pes() <= winner.max_pes);
            // A larger budget can only help (the smaller budget's winner is
            // still admissible).
            assert!(winner.candidate.epoch_time() <= prev_time + 1e-12);
            prev_budget = winner.max_pes;
            prev_time = winner.candidate.epoch_time();
        }
        // The largest budget's winner is the global winner.
        let last = report.best_per_budget.last().unwrap();
        assert_eq!(last.candidate.strategy, report.best().unwrap().strategy);
    }

    #[test]
    fn search_winner_is_at_least_as_good_as_suggest() {
        let (m, d, cl, cfg) = oracle_parts();
        let oracle = Oracle::new(&m, &d, &cl, cfg);
        let c = Constraints::default();
        let best = oracle.search(&c).best().unwrap().projection;
        let suggested = oracle.suggest(&c).unwrap();
        assert!(best.cost.epoch_time() <= suggested.cost.epoch_time() + 1e-12);
    }

    #[test]
    fn divisors_and_factorizations_are_exhaustive() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(spatial_factorizations(4, &[32, 32]).len(), 3);
        // 8 = pw·ph·pd has 10 ordered factorizations into three factors.
        assert_eq!(spatial_factorizations(8, &[64, 64, 64]).len(), 10);
        for split in spatial_factorizations(8, &[64, 64, 64]) {
            assert_eq!(split.total(), 8);
        }
    }

    #[test]
    fn factorizations_respect_per_dimension_extents() {
        // 128 = pw·ph always needs a factor > 13 on a 13×13 plane, even
        // though 128 ≤ 13·13 = 169: no candidate must survive.
        assert!(spatial_factorizations(128, &[13, 13]).is_empty());
        // 8 on a 2×16 plane: only pw ∈ {1, 2} qualify.
        let splits = spatial_factorizations(8, &[2, 16]);
        assert_eq!(splits.len(), 2, "{splits:?}");
        for split in &splits {
            assert!(split.pw <= 2 && split.ph <= 16);
        }
    }

    #[test]
    fn space_never_splits_a_dimension_beyond_its_extent() {
        // AlexNet-like asymmetry: the deepest conv plane is 13×13, so
        // min_spatial_size = 169 admits totals up to 128, but no single
        // dimension may be split more than 13 ways.
        let m = Model::new(
            "deep",
            3,
            vec![227, 227],
            vec![
                Layer::conv2d("c1", 3, 96, (227, 227), 11, 4, 0),
                Layer::conv2d("c2", 96, 256, (13, 13), 3, 1, 1),
                Layer::global_pool("g", 256, &[13, 13]),
                Layer::fully_connected("fc", 256, 10),
            ],
        );
        let caps = m.min_spatial_extents();
        assert_eq!(caps, vec![13, 13]);
        let space = StrategySpace::new(&m, 256, &Constraints::default());
        let mut saw_spatial = false;
        for s in space {
            let split = match s {
                Strategy::Spatial { split } => split,
                Strategy::DataSpatial { split, .. } => split,
                _ => continue,
            };
            saw_spatial = true;
            assert!(split.pw <= 13 && split.ph <= 13, "{s} over-splits a 13-wide dimension");
        }
        assert!(saw_spatial, "expected spatial candidates");
    }
}
