//! Cluster / system specification.
//!
//! The paper's system is a multi-petaflop supercomputer with 4 V100 GPUs per
//! node (NVLink intra-node, PCIe to the host) and a 3-level fat-tree with two
//! EDR InfiniBand rails per node, full bisection intra-rack and 1:3
//! over-subscription inter-rack (§5.1). The oracle needs, for a communicator
//! spanning `p` PEs, the effective Hockney parameters of the slowest level
//! the communicator crosses — that is what [`ClusterSpec::comm_model`]
//! returns. The event-level topology (per-link sharing) lives in
//! `paradl-net`; this module is the analytical view.

use crate::comm::{CommModel, LinkParams};
use crate::compute::DeviceProfile;

/// Largest exponent of the power-of-two communicator tables (`2^24` = 16 Mi
/// PEs, far beyond any machine the oracle models). [`ClusterCache`] and the
/// collective tables of [`crate::engine::CostEngine`] cover communicator
/// sizes up to `2^MAX_LOG2_PES`; larger or non-power-of-two sizes fall back
/// to the closed-form Hockney formulas, which are themselves `O(1)`.
pub const MAX_LOG2_PES: usize = 24;

/// Hierarchy levels of the interconnect, ordered from fastest/closest to
/// slowest/farthest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommLevel {
    /// Between GPUs of the same node (NVLink / PCIe switch).
    IntraNode,
    /// Between nodes of the same rack (first-level switch).
    IntraRack,
    /// Between racks (core switches, possibly over-subscribed).
    InterRack,
}

/// Specification of the training system: device profile plus interconnect
/// hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-GPU compute profile.
    pub device: DeviceProfile,
    /// GPUs per compute node.
    pub gpus_per_node: usize,
    /// Compute nodes per rack.
    pub nodes_per_rack: usize,
    /// Number of racks (upper bound on the machine size).
    pub racks: usize,
    /// Intra-node link (NVLink).
    pub intra_node: LinkParams,
    /// Intra-rack link (InfiniBand, full bisection).
    pub intra_rack: LinkParams,
    /// Inter-rack link (InfiniBand, possibly over-subscribed).
    pub inter_rack: LinkParams,
}

impl ClusterSpec {
    /// The paper's evaluation system: 4 V100 per node, 17 nodes per rack,
    /// NVLink intra-node, EDR InfiniBand with full bisection intra-rack and
    /// 1:3 over-subscription inter-rack. Enough racks for 1024 GPUs.
    pub fn paper_system() -> Self {
        ClusterSpec {
            device: DeviceProfile::v100(),
            gpus_per_node: 4,
            nodes_per_rack: 17,
            racks: 16,
            intra_node: LinkParams::nvlink(),
            intra_rack: LinkParams::infiniband_edr(),
            inter_rack: LinkParams::infiniband_oversubscribed(),
        }
    }

    /// A small single-node workstation (useful for examples and tests).
    pub fn workstation(gpus: usize) -> Self {
        ClusterSpec {
            device: DeviceProfile::v100(),
            gpus_per_node: gpus,
            nodes_per_rack: 1,
            racks: 1,
            intra_node: LinkParams::nvlink(),
            intra_rack: LinkParams::pcie_gen3(),
            inter_rack: LinkParams::pcie_gen3(),
        }
    }

    /// Total GPUs available in the machine (saturating, so a hostile spec
    /// clamps instead of overflowing; `Query::vet` rejects such specs with a
    /// typed error before they reach the engine).
    pub fn total_gpus(&self) -> usize {
        self.gpus_per_node.saturating_mul(self.nodes_per_rack).saturating_mul(self.racks)
    }

    /// The slowest hierarchy level a communicator of `p` consecutive PEs must
    /// cross (PEs are ranked node-major, i.e. ranks 0..gpus_per_node share a
    /// node).
    pub fn level_for(&self, p: usize) -> CommLevel {
        if p <= self.gpus_per_node {
            CommLevel::IntraNode
        } else if p <= self.gpus_per_node * self.nodes_per_rack {
            CommLevel::IntraRack
        } else {
            CommLevel::InterRack
        }
    }

    /// Link parameters of a given hierarchy level.
    pub fn link(&self, level: CommLevel) -> LinkParams {
        match level {
            CommLevel::IntraNode => self.intra_node,
            CommLevel::IntraRack => self.intra_rack,
            CommLevel::InterRack => self.inter_rack,
        }
    }

    /// Analytical communication model for a communicator of `p` PEs: Hockney
    /// parameters of the slowest level crossed (the ring's bottleneck link),
    /// as the paper does when interpolating α/β per PE-count (§4.4).
    pub fn comm_model(&self, p: usize) -> CommModel {
        CommModel::new(self.link(self.level_for(p)))
    }

    /// Communication model for a communicator of `p` PEs that are *strided*
    /// across groups (e.g. the inter-group data-parallel Allreduce of hybrid
    /// strategies, where each group occupies one node): always crosses at
    /// least the node boundary.
    pub fn comm_model_inter_group(&self, groups: usize, group_size: usize) -> CommModel {
        let span = groups * group_size;
        let level = if span <= self.gpus_per_node {
            CommLevel::IntraNode
        } else if span <= self.gpus_per_node * self.nodes_per_rack {
            CommLevel::IntraRack
        } else {
            CommLevel::InterRack
        };
        CommModel::new(self.link(level))
    }

    /// Contention coefficient φ of the segmented Allreduce used by the
    /// Data+Filter hybrid: one Allreduce per GPU-of-a-node runs concurrently
    /// over the same inter-node link, so φ equals the number of segments
    /// sharing the link (the paper uses 2× for its two-rail nodes; with
    /// `gpus_per_node` segments over `rails = 2` rails this is
    /// `gpus_per_node / rails`). Topology-derived, so it is tabulated in
    /// [`ClusterCache`].
    pub fn segmented_allreduce_contention(&self, group_size: usize) -> f64 {
        let rails = 2.0;
        (group_size.min(self.gpus_per_node) as f64 / rails).max(1.0)
    }

    /// Builds the shareable [`ClusterCache`] of this cluster's
    /// topology-derived communication models.
    pub fn cache(&self) -> ClusterCache {
        ClusterCache::new(self)
    }
}

/// Topology-derived communication models of one cluster, tabulated for every
/// power-of-two communicator size up to `2^`[`MAX_LOG2_PES`] — everything a
/// [`crate::engine::CostEngine`] needs from the [`ClusterSpec`] to memoize
/// its gradient-exchange collective times, hoisted out of the engine so that
/// **every engine on the same cluster shares one cache** (wrap it in an
/// [`std::sync::Arc`]; that is what [`crate::grid::GridSweep`] does for a
/// multi-model query grid).
///
/// The cached models are *value-identical* to deriving them on the fly
/// through [`ClusterSpec::comm_model`] / [`ClusterSpec::comm_model_inter_group`] /
/// [`ClusterSpec::segmented_allreduce_contention`]: the cache only avoids the
/// repeated derivation, so engines built with and without a cache produce
/// byte-for-byte identical estimates.
#[derive(Debug, Clone)]
pub struct ClusterCache {
    /// The cluster the cache was derived from (used to sanity-check reuse).
    cluster: ClusterSpec,
    /// `pow2[k]` = [`ClusterSpec::comm_model`]`(2^k)`: the flat communicator
    /// of `2^k` consecutive PEs (also the inter-group model of any
    /// `groups × group_size` split with span `2^k`, which bottlenecks on the
    /// same hierarchy level).
    pow2: Vec<CommModel>,
    /// `intra[j]` = [`ClusterSpec::comm_model`]`(min(2^j, gpus_per_node))`:
    /// the intra-group communicator of a node-sized group of `2^j` PEs.
    intra: Vec<CommModel>,
    /// `phi[j]` = [`ClusterSpec::segmented_allreduce_contention`]`(2^j)`.
    phi: Vec<f64>,
}

impl ClusterCache {
    /// Tabulates every power-of-two communication model of `cluster`.
    pub fn new(cluster: &ClusterSpec) -> Self {
        let n = MAX_LOG2_PES + 1;
        ClusterCache {
            cluster: cluster.clone(),
            pow2: (0..n).map(|k| cluster.comm_model(1 << k)).collect(),
            intra: (0..n)
                .map(|j| cluster.comm_model((1 << j).min(cluster.gpus_per_node)))
                .collect(),
            phi: (0..n).map(|j| cluster.segmented_allreduce_contention(1 << j)).collect(),
        }
    }

    /// The cluster this cache was derived from.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Flat communicator model over `2^k` PEs.
    pub fn pow2(&self, k: usize) -> &CommModel {
        &self.pow2[k]
    }

    /// Inter-group communicator model of `2^i` groups of `2^j` PEs (spans
    /// `2^(i+j)` PEs, bottlenecking on the same level as a flat communicator
    /// of that size).
    pub fn inter_group(&self, i: usize, j: usize) -> &CommModel {
        &self.pow2[i + j]
    }

    /// Intra-group (node-capped) communicator model of a group of `2^j` PEs.
    pub fn intra(&self, j: usize) -> &CommModel {
        &self.intra[j]
    }

    /// Segmented-Allreduce contention φ of a group of `2^j` PEs.
    pub fn segmented_phi(&self, j: usize) -> f64 {
        self.phi[j]
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::paper_system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_holds_1024_gpus() {
        let c = ClusterSpec::paper_system();
        assert!(c.total_gpus() >= 1024);
    }

    #[test]
    fn level_selection_follows_hierarchy() {
        let c = ClusterSpec::paper_system();
        assert_eq!(c.level_for(2), CommLevel::IntraNode);
        assert_eq!(c.level_for(4), CommLevel::IntraNode);
        assert_eq!(c.level_for(8), CommLevel::IntraRack);
        assert_eq!(c.level_for(64), CommLevel::IntraRack);
        assert_eq!(c.level_for(512), CommLevel::InterRack);
    }

    #[test]
    fn larger_communicators_use_slower_links() {
        let c = ClusterSpec::paper_system();
        let intra = c.comm_model(4);
        let rack = c.comm_model(64);
        let inter = c.comm_model(1024);
        assert!(intra.link.beta <= rack.link.beta);
        assert!(rack.link.beta <= inter.link.beta);
    }

    #[test]
    fn inter_group_model_crosses_node_boundary() {
        let c = ClusterSpec::paper_system();
        // 16 groups of 4 GPUs each => spans 64 GPUs => intra-rack at least.
        let m = c.comm_model_inter_group(16, 4);
        assert_eq!(m.link, c.intra_rack);
        let m2 = c.comm_model_inter_group(256, 4);
        assert_eq!(m2.link, c.inter_rack);
    }

    #[test]
    fn workstation_is_single_node() {
        let c = ClusterSpec::workstation(8);
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.level_for(8), CommLevel::IntraNode);
    }

    #[test]
    fn cache_matches_on_the_fly_derivation() {
        for cluster in [ClusterSpec::paper_system(), ClusterSpec::workstation(6)] {
            let cache = cluster.cache();
            assert_eq!(cache.cluster(), &cluster);
            for k in 0..=MAX_LOG2_PES {
                assert_eq!(*cache.pow2(k), cluster.comm_model(1 << k), "pow2[{k}]");
                assert_eq!(
                    *cache.intra(k),
                    cluster.comm_model((1 << k).min(cluster.gpus_per_node)),
                    "intra[{k}]"
                );
                assert_eq!(
                    cache.segmented_phi(k),
                    cluster.segmented_allreduce_contention(1 << k),
                    "phi[{k}]"
                );
            }
            // The inter-group model only depends on the communicator span.
            for (i, j) in [(0, 2), (3, 1), (8, 4)] {
                assert_eq!(
                    *cache.inter_group(i, j),
                    cluster.comm_model_inter_group(1 << i, 1 << j)
                );
            }
        }
    }
}
