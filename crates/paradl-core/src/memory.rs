//! Per-PE memory requirement estimation (paper Table 3, memory column, and
//! Eqs. 2, 4, 7, 8, 14, 16, 17, 20).
//!
//! The naive per-layer aggregation (inputs + activations + weights + biases +
//! all three gradients) is reduced by the memory-reuse factor `γ` to account
//! for framework buffer reuse (§4.2). The `2·` factors in the formulas fold
//! the gradients of the corresponding tensors (`|dL/dx| = |x|`, etc.).

use crate::config::TrainingConfig;
use crate::model::Model;
use crate::strategy::Strategy;

/// Maximum memory (bytes) required on one PE for the given strategy.
pub fn memory_per_pe(model: &Model, config: &TrainingConfig, strategy: Strategy) -> f64 {
    let b = config.batch_size as f64;
    let delta = config.bytes_per_item;
    let gamma = config.memory_reuse;

    let per_layer = |act_div: f64, weight_div: f64, batch: f64| -> f64 {
        model
            .layers
            .iter()
            .map(|l| {
                let acts = 2.0 * batch * (l.input_size() + l.output_size()) as f64 / act_div;
                let weights = 2.0 * l.weight_count() as f64 / weight_div;
                let bias = l.bias_count() as f64;
                acts + weights + bias
            })
            .sum::<f64>()
    };

    let raw = match strategy {
        // M_serial = δ Σ (2B(|x|+|y|) + 2|w| + |bi|)
        Strategy::Serial => per_layer(1.0, 1.0, b),
        // M_data: micro-batch B/p per PE, full weights.
        Strategy::Data { p } => per_layer(1.0, 1.0, b / p as f64),
        // M_spatial: activations split by p, full batch, full weights.
        Strategy::Spatial { split } => per_layer(split.total() as f64, 1.0, b),
        // M_filter / M_channel: full activations, weights split by p.
        Strategy::Filter { p } | Strategy::Channel { p } => per_layer(1.0, p as f64, b),
        // M_pipeline: the maximum over composite layers of the serial
        // per-group memory.
        Strategy::Pipeline { p, .. } => {
            let groups = model.balanced_pipeline_groups(p);
            groups
                .iter()
                .map(|range| pipeline_group_raw(model, b, range.clone()))
                .fold(0.0, f64::max)
        }
        // M_df: activations split by the data groups p1, weights by p2.
        Strategy::DataFilter { p1, p2 } => per_layer(p1 as f64, p2 as f64, b),
        // M_ds: activations split by p = p1·p2 (batch by p1, spatial by p2),
        // full weights.
        Strategy::DataSpatial { p1, split } => per_layer((p1 * split.total()) as f64, 1.0, b),
    };

    gamma * delta * raw
}

/// Raw (pre-`γδ`) memory of one pipeline stage spanning the layer `range`:
/// `Σ_l (2B(|x_l|+|y_l|) + 2|w_l| + |bi_l|)` — the per-stage term the
/// search's [`crate::engine::CostEngine`] reproduces through prefix sums.
pub(crate) fn pipeline_group_raw(model: &Model, b: f64, range: std::ops::Range<usize>) -> f64 {
    model.layers[range]
        .iter()
        .map(|l| {
            2.0 * b * (l.input_size() + l.output_size()) as f64
                + 2.0 * l.weight_count() as f64
                + l.bias_count() as f64
        })
        .sum::<f64>()
}

/// Whether the strategy fits into a per-PE memory capacity (bytes).
pub fn fits_in_memory(
    model: &Model,
    config: &TrainingConfig,
    strategy: Strategy,
    capacity_bytes: f64,
) -> bool {
    memory_per_pe(model, config, strategy) <= capacity_bytes
}

/// Memory capacity of one V100 GPU (16 GB), the paper's device.
pub const V100_MEMORY_BYTES: f64 = 16.0 * 1024.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::strategy::SpatialSplit;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![64, 64],
            vec![
                Layer::conv2d("c1", 3, 32, (64, 64), 3, 1, 1),
                Layer::pool2d("p1", 32, (64, 64), 2, 2),
                Layer::conv2d("c2", 32, 64, (32, 32), 3, 1, 1),
                Layer::global_pool("g", 64, &[32, 32]),
                Layer::fully_connected("fc", 64, 10),
            ],
        )
    }

    fn cfg() -> TrainingConfig {
        TrainingConfig::small(4096, 64)
    }

    #[test]
    fn data_parallel_memory_shrinks_with_p_but_not_to_zero() {
        let m = model();
        let c = cfg();
        let serial = memory_per_pe(&m, &c, Strategy::Serial);
        let d8 = memory_per_pe(&m, &c, Strategy::Data { p: 8 });
        let d64 = memory_per_pe(&m, &c, Strategy::Data { p: 64 });
        assert!(d8 < serial);
        assert!(d64 < d8);
        // Weights are replicated, so memory never drops below the weight term.
        let weight_floor = 2.0 * m.total_weights() as f64 * c.bytes_per_item * c.memory_reuse;
        assert!(d64 > weight_floor * 0.99);
    }

    #[test]
    fn filter_memory_keeps_full_activations() {
        let m = model();
        let c = cfg();
        let serial = memory_per_pe(&m, &c, Strategy::Serial);
        let f = memory_per_pe(&m, &c, Strategy::Filter { p: 8 });
        // Activations dominate this model, so filter parallelism saves little
        // (the paper's "Redundancy in Memory" limitation).
        assert!(f < serial);
        assert!(f > serial * 0.5);
    }

    #[test]
    fn spatial_memory_divides_activations() {
        let m = model();
        let c = cfg();
        let serial = memory_per_pe(&m, &c, Strategy::Serial);
        let s = memory_per_pe(&m, &c, Strategy::Spatial { split: SpatialSplit::balanced_2d(16) });
        assert!(s < serial / 4.0);
    }

    #[test]
    fn pipeline_memory_is_max_group() {
        let m = model();
        let c = cfg();
        let serial = memory_per_pe(&m, &c, Strategy::Serial);
        let p = memory_per_pe(&m, &c, Strategy::Pipeline { p: 2, segments: 4 });
        assert!(p < serial);
        assert!(p > serial / m.num_layers() as f64);
    }

    #[test]
    fn data_at_p1_equals_serial() {
        let m = model();
        let c = cfg();
        let serial = memory_per_pe(&m, &c, Strategy::Serial);
        let d1 = memory_per_pe(&m, &c, Strategy::Data { p: 1 });
        assert!((serial - d1).abs() < 1e-6);
    }

    #[test]
    fn gamma_scales_linearly() {
        let m = model();
        let mut c = cfg();
        c.memory_reuse = 1.0;
        let full = memory_per_pe(&m, &c, Strategy::Serial);
        c.memory_reuse = 0.5;
        let half = memory_per_pe(&m, &c, Strategy::Serial);
        assert!((half * 2.0 - full).abs() < 1e-6);
    }

    #[test]
    fn fits_in_memory_respects_capacity() {
        let m = model();
        let c = cfg();
        assert!(fits_in_memory(&m, &c, Strategy::Serial, V100_MEMORY_BYTES));
        assert!(!fits_in_memory(&m, &c, Strategy::Serial, 1024.0));
    }

    #[test]
    fn hybrid_df_splits_both_dimensions() {
        let m = model();
        let c = cfg();
        let data = memory_per_pe(&m, &c, Strategy::Data { p: 4 });
        let filter = memory_per_pe(&m, &c, Strategy::Filter { p: 4 });
        let df = memory_per_pe(&m, &c, Strategy::DataFilter { p1: 4, p2: 4 });
        assert!(df < data);
        assert!(df < filter);
    }
}
