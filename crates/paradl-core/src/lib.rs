//! # paradl-core
//!
//! The ParaDL oracle: an analytical performance, communication and memory
//! model for distributed CNN training under data, spatial, filter, channel,
//! pipeline and hybrid parallelism — a Rust reproduction of
//! *"An Oracle for Guiding Large-Scale Model/Hybrid Parallel Training of
//! Convolutional Neural Networks"* (HPDC 2021).
//!
//! The crate is organized around four inputs and one output:
//!
//! * a [`model::Model`] — the CNN as a list of [`layer::Layer`]s,
//! * a [`compute::ComputeModel`] — per-layer `FW`/`BW`/`WU` times (the
//!   paper's empirical parametrization; [`compute::DeviceProfile`] provides
//!   an analytical substitute),
//! * a [`cluster::ClusterSpec`] — the interconnect hierarchy providing
//!   Hockney α–β parameters per communicator size,
//! * a [`config::TrainingConfig`] — dataset size `D`, mini-batch `B`, datum
//!   width `δ`, memory-reuse factor `γ`,
//!
//! and the [`oracle::Oracle`] produces [`cost::CostEstimate`]s — per-phase
//! time breakdowns and per-PE memory — for any [`strategy::Strategy`].
//!
//! ```
//! use paradl_core::prelude::*;
//!
//! // A toy 3-layer CNN.
//! let model = Model::new(
//!     "toy", 3, vec![32, 32],
//!     vec![
//!         Layer::conv2d("c1", 3, 16, (32, 32), 3, 1, 1),
//!         Layer::global_pool("g", 16, &[32, 32]),
//!         Layer::fully_connected("fc", 16, 10),
//!     ],
//! );
//! let device = DeviceProfile::v100();
//! let cluster = ClusterSpec::paper_system();
//! let config = TrainingConfig::small(4096, 64);
//! let oracle = Oracle::new(&model, &device, &cluster, config);
//!
//! let projection = oracle.project(Strategy::Data { p: 16 });
//! assert!(projection.cost.epoch_time() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod cluster;
pub mod comm;
pub mod compute;
pub mod config;
pub mod cost;
pub mod engine;
pub mod grid;
pub mod jsonio;
pub mod kernel;
pub mod layer;
pub mod limits;
pub mod memory;
pub mod model;
pub mod oracle;
pub mod query;
pub mod scaling;
pub mod search;
pub mod strategy;
pub mod validate;
pub mod vet;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::calibrate::{CalSample, CalibratedCostModel, Calibration, FamilyScale};
    pub use crate::cluster::{ClusterCache, ClusterSpec, CommLevel};
    pub use crate::comm::{CollectiveAlgorithm, CommModel, LinkParams};
    pub use crate::compute::{ComputeModel, DeviceProfile, LayerTimes, TabulatedProfile};
    pub use crate::config::TrainingConfig;
    pub use crate::cost::{estimate, estimate_with_memory, CostEstimate, PhaseBreakdown};
    pub use crate::engine::{
        cluster_fingerprint, engine_fingerprint, CostEngine, EngineCache, EngineCacheStats,
        EngineError, ModelLimits,
    };
    pub use crate::grid::{
        GridCell, GridModel, GridQuery, GridReport, GridStageTimings, GridSweep, QueryGrid,
    };
    pub use crate::jsonio::{Json, JsonError};
    pub use crate::layer::{Layer, LayerKind};
    pub use crate::limits::{diagnose_default, table6, Issue, IssueClass};
    pub use crate::memory::{fits_in_memory, memory_per_pe, V100_MEMORY_BYTES};
    pub use crate::model::Model;
    pub use crate::oracle::{
        breakdown_accuracy, projection_accuracy, Constraints, Oracle, PeSweep, Projection,
    };
    pub use crate::query::{Query, QueryAnswer, QueryMode};
    pub use crate::scaling::{powers_of_two, speedup_over, sweep, ScalingMode, SweepPoint};
    pub use crate::search::{BudgetWinner, RankedCandidate, SearchReport, StrategySpace};
    pub use crate::strategy::{SpatialSplit, Strategy, StrategyKind};
    pub use crate::validate::{
        spearman_rho, CellFidelity, ErrorSample, ErrorStats, FamilyFidelity, FidelityReport,
    };
    pub use crate::vet::{VetError, DEFAULT_CANDIDATE_CAP};
}
