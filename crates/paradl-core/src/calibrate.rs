//! Calibration loop: fitting per-family overhead parameters from conformance
//! replays (closing the paper's §5.2 oracle-vs-measured loop).
//!
//! The analytic cost model is deliberately framework-free: it projects pure
//! algorithm time (paper Table 3) while a real training run — and the
//! `paradl-sim` stand-in for one — pays framework overheads on top. The §5.2
//! conformance sweep shows this as a *systematic, per-family bias*: the
//! `data+filter` hybrid's segmented Allreduce is under-projected while its
//! layer-wise collectives are over-projected, and the framework's per-layer
//! split/concat glue adds a fixed per-iteration latency the model does not
//! know about. Because the biases are phase-structured and family-specific,
//! they can be fitted and removed without touching the cost model itself.
//!
//! This module provides that closed loop:
//!
//! * [`CalSample`] — one replay observation: the oracle's per-phase
//!   projection for a concrete strategy against the measured total time,
//! * [`Calibration`] — per-[`StrategyKind`] parameter vectors
//!   ([`FamilyScale`]) fitted by [`Calibration::fit`]: a deterministic,
//!   closed-form weighted least-squares solve (weights `1/measured²`, i.e.
//!   squared *relative* error — the quantity §5.2 reports) over a ladder of
//!   regressor bases, followed by a bias-zeroing rescale so each family's
//!   mean signed relative error on its training samples is driven to zero,
//! * [`CalibratedCostModel`] — a decorator over [`CostEngine`] that applies
//!   the parameters to finished estimates in O(1).
//!
//! **Bit-consistency.** Calibration multiplies *finished* phase breakdowns;
//! the engine's internal batch-last [`CommCoef`](crate::engine) path — the
//! `fixed + batch·per_sample` helpers and their `to_bits` reconstruction
//! asserts — runs uncalibrated underneath and keeps holding verbatim.
//! Scaling the coefficients themselves would be algebraically equivalent
//! but *not* bit-equivalent (floating-point multiplication does not
//! distribute), so the decorator scales after reconstruction, never before.
//! A direct consequence: [`Calibration::identity`] is bit-identical to the
//! uncalibrated engine (`1.0 * x == x` and `x + 0.0 == x` bitwise for every
//! finite non-negative `x`, and the engine verifies its outputs finite at
//! build time).
//!
//! **Determinism.** The fit is closed-form — no iterative optimizer, no
//! RNG — so equal samples produce an equal `Calibration` down to the bits.
//! The `seed` field records the provenance of the replay harness that
//! generated the samples (the conformance base seed), so a committed
//! calibration names the exact replay population it was fitted on.

use crate::cost::{CostEstimate, PhaseBreakdown};
use crate::engine::CostEngine;
use crate::jsonio::Json;
use crate::oracle::Projection;
use crate::strategy::{Strategy, StrategyKind};

/// One calibration observation: the oracle's projected per-phase times
/// (per-epoch seconds) for a concrete strategy, against the measured (or
/// simulated) total time of the same run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalSample {
    /// The strategy the replay executed.
    pub strategy: Strategy,
    /// Projected per-epoch compute time (`PhaseBreakdown::compute`).
    pub compute: f64,
    /// Projected per-epoch gradient-exchange time.
    pub grad: f64,
    /// Projected per-epoch layer-wise (FB) collective time.
    pub fbc: f64,
    /// Projected per-epoch halo-exchange time.
    pub halo: f64,
    /// Projected per-epoch pipeline point-to-point time.
    pub p2p: f64,
    /// Iterations per epoch (carrier of additive per-iteration overheads).
    pub iterations: f64,
    /// Measured per-epoch total time.
    pub measured: f64,
}

impl CalSample {
    /// Builds a sample from a projected estimate and a measured total.
    pub fn from_estimate(cost: &CostEstimate, measured: f64) -> CalSample {
        let e = &cost.per_epoch;
        CalSample {
            strategy: cost.strategy,
            compute: e.compute(),
            grad: e.gradient_exchange,
            fbc: e.fb_collective,
            halo: e.halo_exchange,
            p2p: e.pipeline_p2p,
            iterations: cost.iterations as f64,
            measured,
        }
    }

    /// Projected communication total (all four comm phases).
    pub fn comm(&self) -> f64 {
        self.grad + self.fbc + self.halo + self.p2p
    }

    /// Whether the sample can participate in a fit: every projected term
    /// and the measured time finite, and the measured time positive (a
    /// zero or negative measurement carries no scale information).
    pub fn usable(&self) -> bool {
        self.compute.is_finite()
            && self.grad.is_finite()
            && self.fbc.is_finite()
            && self.halo.is_finite()
            && self.p2p.is_finite()
            && self.iterations.is_finite()
            && self.measured.is_finite()
            && self.measured > 0.0
    }

    /// The regressor vector of the sample in fit-basis order.
    fn features(&self) -> [f64; NUM_FEATURES] {
        [
            self.compute,
            self.grad,
            self.fbc,
            self.halo,
            self.p2p,
            self.iterations,
            self.grad * (split_degree(&self.strategy) - 1.0),
        ]
    }
}

/// Intra-group split degree of a strategy: the number of PEs each conv
/// layer's work is divided over — the knob the framework's imperfect-scaling
/// overhead grows with, and the number of concurrent segmented-Allreduce
/// rings of the data+filter hybrid.
fn split_degree(strategy: &Strategy) -> f64 {
    match *strategy {
        Strategy::Filter { p } | Strategy::Channel { p } => p as f64,
        Strategy::DataFilter { p2, .. } => p2 as f64,
        _ => 1.0,
    }
}

/// Number of regressors in the full fit basis: compute, the four
/// communication phases, iterations (additive latency), and the
/// gradient×(split−1) interaction.
const NUM_FEATURES: usize = 7;

/// Regressor indices of the fit basis (documentation of `features()` order).
#[cfg(test)]
const F_COMPUTE: usize = 0;
#[cfg(test)]
const F_GRAD: usize = 1;
#[cfg(test)]
const F_ITER: usize = 5;
#[cfg(test)]
const F_GRAD_SPLIT: usize = 6;

/// The fitted overhead parameters of one strategy family: multiplicative
/// scales per projected phase, an additive per-iteration latency, and a
/// split-degree interaction on the gradient exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyScale {
    /// Multiplier on the compute phases (forward/backward + weight update).
    pub compute_scale: f64,
    /// Multiplier on the gradient-exchange phase (at split degree 1).
    pub grad_scale: f64,
    /// Multiplier on the layer-wise (FB) collective phase.
    pub fbc_scale: f64,
    /// Multiplier on the halo-exchange phase.
    pub halo_scale: f64,
    /// Multiplier on the pipeline point-to-point phase.
    pub p2p_scale: f64,
    /// Additive overhead in seconds per iteration (framework glue such as
    /// per-layer split/concat latency), accounted against the
    /// forward/backward phase.
    pub iteration_overhead: f64,
    /// Increment of the gradient-exchange multiplier per unit of
    /// `split_degree − 1` (self-contention of concurrent segmented rings).
    pub grad_split_scale: f64,
    /// How many usable replay samples the family was fitted on (0 means
    /// the family fell back to identity).
    pub samples: usize,
}

impl FamilyScale {
    /// The do-nothing parameters.
    pub const IDENTITY: FamilyScale = FamilyScale {
        compute_scale: 1.0,
        grad_scale: 1.0,
        fbc_scale: 1.0,
        halo_scale: 1.0,
        p2p_scale: 1.0,
        iteration_overhead: 0.0,
        grad_split_scale: 0.0,
        samples: 0,
    };

    /// Whether every parameter is at its identity value.
    pub fn is_identity(&self) -> bool {
        self.compute_scale == 1.0
            && self.grad_scale == 1.0
            && self.fbc_scale == 1.0
            && self.halo_scale == 1.0
            && self.p2p_scale == 1.0
            && self.iteration_overhead == 0.0
            && self.grad_split_scale == 0.0
    }

    /// The parameter vector in [`CalSample::features`] order.
    fn coefficients(&self) -> [f64; NUM_FEATURES] {
        [
            self.compute_scale,
            self.grad_scale,
            self.fbc_scale,
            self.halo_scale,
            self.p2p_scale,
            self.iteration_overhead,
            self.grad_split_scale,
        ]
    }

    /// Builds a scale from a coefficient vector over a regressor subset:
    /// unfitted parameters stay at identity (no evidence, no adjustment).
    fn from_fit(cols: &[usize], beta: &[f64], samples: usize) -> FamilyScale {
        let mut coef = FamilyScale::IDENTITY.coefficients();
        for (&c, &b) in cols.iter().zip(beta) {
            coef[c] = b;
        }
        FamilyScale {
            compute_scale: coef[0],
            grad_scale: coef[1],
            fbc_scale: coef[2],
            halo_scale: coef[3],
            p2p_scale: coef[4],
            iteration_overhead: coef[5],
            grad_split_scale: coef[6],
            samples,
        }
    }

    /// Whether the parameters are admissible as a calibration: every phase
    /// multiplier positive and finite, the additive and interaction terms
    /// non-negative and finite. Guarantees calibrated times of non-negative
    /// finite estimates stay non-negative and finite.
    fn admissible(&self) -> bool {
        let positive =
            [self.compute_scale, self.grad_scale, self.fbc_scale, self.halo_scale, self.p2p_scale];
        positive.iter().all(|v| v.is_finite() && *v > 0.0)
            && self.iteration_overhead.is_finite()
            && self.iteration_overhead >= 0.0
            && self.grad_split_scale.is_finite()
            && self.grad_split_scale >= 0.0
    }
}

/// Index of a family in [`StrategyKind::ALL`] (the storage order of
/// [`Calibration`]).
fn family_index(kind: StrategyKind) -> usize {
    StrategyKind::ALL.iter().position(|&k| k == kind).expect("every kind is in ALL")
}

/// Per-family overhead calibration, fitted from conformance replays. Apply
/// with [`Calibration::apply_estimate`] or through a
/// [`CalibratedCostModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Parameters in [`StrategyKind::ALL`] order.
    scales: [FamilyScale; StrategyKind::ALL.len()],
    /// Base seed of the replay harness the training samples came from
    /// (provenance only — the fit itself is closed-form).
    pub seed: u64,
}

impl Calibration {
    /// The identity calibration: every family at the identity parameters.
    pub fn identity() -> Calibration {
        Calibration { scales: [FamilyScale::IDENTITY; StrategyKind::ALL.len()], seed: 0 }
    }

    /// Whether every family is at the identity parameters.
    pub fn is_identity(&self) -> bool {
        self.scales.iter().all(FamilyScale::is_identity)
    }

    /// The fitted parameters of `kind`.
    pub fn scale_for(&self, kind: StrategyKind) -> FamilyScale {
        self.scales[family_index(kind)]
    }

    /// Total usable samples across all families.
    pub fn num_samples(&self) -> usize {
        self.scales.iter().map(|s| s.samples).sum()
    }

    /// Fits per-family parameters from replay samples. Deterministic: the
    /// closed-form solve involves no RNG, so equal inputs give bit-equal
    /// outputs; `seed` only records where the samples came from.
    ///
    /// Per family the fit evaluates a ladder of weighted least-squares
    /// candidates (weights `1/measured²`) of decreasing expressiveness —
    ///
    /// 1. per-phase scales + per-iteration latency + gradient×split
    ///    interaction,
    /// 2. per-phase scales + per-iteration latency,
    /// 3. per-phase scales,
    /// 4. one compute scale and one aggregate communication scale,
    /// 5. a single common scale zeroing the bias directly,
    /// 6. the identity —
    ///
    /// each restricted to the regressors actually present in the family's
    /// samples, rejected unless admissible (positive phase multipliers,
    /// non-negative latency/interaction), rescaled to zero the family's
    /// mean signed relative error, and scored by mean training accuracy
    /// (§5.2's metric); the best admissible candidate wins, ties preferring
    /// the earlier (more expressive) one. Because the identity is always a
    /// candidate, a fitted family can never score below its uncalibrated
    /// training accuracy, and because every fitted candidate is bias-zeroed,
    /// the fit never increases a family's |mean signed error| on its own
    /// training samples. Families with no usable sample stay identity.
    pub fn fit(samples: &[CalSample], seed: u64) -> Calibration {
        let mut scales = [FamilyScale::IDENTITY; StrategyKind::ALL.len()];
        for (i, &kind) in StrategyKind::ALL.iter().enumerate() {
            let family: Vec<CalSample> = samples
                .iter()
                .filter(|s| s.strategy.kind() == kind && s.usable())
                .copied()
                .collect();
            if family.is_empty() {
                continue;
            }
            let mut best = FamilyScale { samples: family.len(), ..FamilyScale::IDENTITY };
            let mut best_accuracy = mean_accuracy(&family, &best);
            let ladder: [&[usize]; 3] =
                [&[0, 1, 2, 3, 4, 5, 6], &[0, 1, 2, 3, 4, 5], &[0, 1, 2, 3, 4]];
            let candidates = ladder
                .iter()
                .map(|cols| wls_candidate(&family, cols))
                .chain([compute_comm_candidate(&family), common_scale(&family)]);
            for candidate in candidates.flatten() {
                let candidate = rezero_bias(&family, candidate);
                if !candidate.admissible() {
                    continue;
                }
                let accuracy = mean_accuracy(&family, &candidate);
                if accuracy > best_accuracy {
                    best = candidate;
                    best_accuracy = accuracy;
                }
            }
            scales[i] = best;
        }
        Calibration { scales, seed }
    }

    /// Applies the calibration to a finished estimate: each time phase is
    /// multiplied by its family parameter, the per-iteration latency is
    /// added to the forward/backward phase, and the gradient exchange
    /// additionally grows with the strategy's split degree; memory and
    /// iteration count are untouched (calibration corrects time bias, not
    /// footprints). O(1).
    pub fn apply_estimate(&self, cost: &CostEstimate) -> CostEstimate {
        let s = self.scale_for(cost.strategy.kind());
        let e = &cost.per_epoch;
        let grad_scale = s.grad_scale + s.grad_split_scale * (split_degree(&cost.strategy) - 1.0);
        CostEstimate {
            strategy: cost.strategy,
            per_epoch: PhaseBreakdown {
                forward_backward: e.forward_backward * s.compute_scale
                    + s.iteration_overhead * cost.iterations as f64,
                weight_update: e.weight_update * s.compute_scale,
                gradient_exchange: e.gradient_exchange * grad_scale,
                fb_collective: e.fb_collective * s.fbc_scale,
                halo_exchange: e.halo_exchange * s.halo_scale,
                pipeline_p2p: e.pipeline_p2p * s.p2p_scale,
            },
            iterations: cost.iterations,
            memory_per_pe_bytes: cost.memory_per_pe_bytes,
        }
    }

    /// Applies the calibration to a projection: the cost estimate is
    /// rescaled ([`Calibration::apply_estimate`]); the feasibility flags
    /// are untouched (memory and scaling limits are not time quantities).
    pub fn apply_projection(&self, projection: &Projection) -> Projection {
        Projection { cost: self.apply_estimate(&projection.cost), ..*projection }
    }

    /// Calibrated total epoch time of a projected sample (the quantity the
    /// conformance loop compares against the measured side).
    pub fn project(&self, sample: &CalSample) -> f64 {
        let coef = self.scale_for(sample.strategy.kind()).coefficients();
        sample.features().iter().zip(coef).map(|(x, c)| x * c).sum()
    }

    /// Serializes the calibration (family table + provenance seed).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::num(self.seed as f64)),
            (
                "families",
                Json::Arr(
                    StrategyKind::ALL
                        .iter()
                        .map(|&kind| {
                            let s = self.scale_for(kind);
                            Json::obj([
                                ("family", Json::str(kind.to_string())),
                                ("compute_scale", Json::num(s.compute_scale)),
                                ("grad_scale", Json::num(s.grad_scale)),
                                ("fbc_scale", Json::num(s.fbc_scale)),
                                ("halo_scale", Json::num(s.halo_scale)),
                                ("p2p_scale", Json::num(s.p2p_scale)),
                                ("iteration_overhead", Json::num(s.iteration_overhead)),
                                ("grad_split_scale", Json::num(s.grad_split_scale)),
                                ("samples", Json::count(s.samples)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a calibration serialized by [`Calibration::to_json`]. Errors
    /// (never panics) on missing fields, unknown family names or
    /// inadmissible parameters — this sits on the serve daemon's
    /// untrusted-input path.
    pub fn from_json(json: &Json) -> Result<Calibration, String> {
        let seed =
            json.get("seed").and_then(Json::number).ok_or("calibration missing seed")? as u64;
        let mut cal = Calibration::identity();
        cal.seed = seed;
        let families =
            json.get("families").and_then(Json::array).ok_or("calibration missing families")?;
        for f in families {
            let name =
                f.get("family").and_then(Json::string).ok_or("calibration family missing name")?;
            let kind = StrategyKind::ALL
                .iter()
                .copied()
                .find(|k| k.to_string() == name)
                .ok_or_else(|| format!("unknown calibration family {name:?}"))?;
            let field = |key: &str| -> Result<f64, String> {
                f.get(key)
                    .and_then(Json::number)
                    .ok_or_else(|| format!("calibration family {name:?} missing {key}"))
            };
            let scale = FamilyScale {
                compute_scale: field("compute_scale")?,
                grad_scale: field("grad_scale")?,
                fbc_scale: field("fbc_scale")?,
                halo_scale: field("halo_scale")?,
                p2p_scale: field("p2p_scale")?,
                iteration_overhead: field("iteration_overhead")?,
                grad_split_scale: field("grad_split_scale")?,
                samples: f.get("samples").and_then(Json::usize).unwrap_or(0),
            };
            if !scale.admissible() {
                return Err(format!("calibration family {name:?} has inadmissible parameters"));
            }
            cal.scales[family_index(kind)] = scale;
        }
        Ok(cal)
    }
}

/// Mean §5.2 accuracy of a candidate over training samples.
fn mean_accuracy(samples: &[CalSample], scale: &FamilyScale) -> f64 {
    let coef = scale.coefficients();
    let sum: f64 = samples
        .iter()
        .map(|s| {
            let p: f64 = s.features().iter().zip(&coef).map(|(x, c)| x * c).sum();
            crate::oracle::projection_accuracy(p, s.measured)
        })
        .sum();
    sum / samples.len() as f64
}

/// Weighted least-squares fit of `measured ≈ Σ βᵢ·featureᵢ` over a regressor
/// subset, weights `1/measured²` (squared relative error). Regressors that
/// are zero in every sample are dropped (their parameter stays identity);
/// returns `None` when fewer samples than remaining regressors or when the
/// normal system is singular.
fn wls_candidate(samples: &[CalSample], cols: &[usize]) -> Option<FamilyScale> {
    let cols: Vec<usize> =
        cols.iter().copied().filter(|&c| samples.iter().any(|s| s.features()[c] != 0.0)).collect();
    if cols.is_empty() || samples.len() < cols.len() {
        return None;
    }
    let k = cols.len();
    // Normal equations [M | v] of the weighted system.
    let mut m = vec![vec![0.0f64; k + 1]; k];
    for s in samples {
        let x = s.features();
        let w = 1.0 / (s.measured * s.measured);
        for (i, &ci) in cols.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                m[i][j] += w * x[ci] * x[cj];
            }
            m[i][k] += w * x[ci] * s.measured;
        }
    }
    let beta = solve_normal_equations(m)?;
    Some(FamilyScale::from_fit(&cols, &beta, samples.len()))
}

/// Solves the augmented normal system `[M | v]` by Gauss–Jordan elimination
/// with partial pivoting (deterministic — pivot choice depends only on the
/// values). Returns `None` on a (near-)singular system, measured against
/// the largest diagonal magnitude so the test is scale-free.
fn solve_normal_equations(mut m: Vec<Vec<f64>>) -> Option<Vec<f64>> {
    let k = m.len();
    let magnitude = (0..k).map(|i| m[i][i].abs()).fold(0.0f64, f64::max);
    if !(magnitude.is_finite() && magnitude > 0.0) {
        return None;
    }
    for col in 0..k {
        let piv = (col..k).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if !(m[piv][col].is_finite() && m[piv][col].abs() > 1e-12 * magnitude) {
            return None;
        }
        m.swap(col, piv);
        let pivot_row = m[col].clone();
        for (row, r) in m.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let f = r[col] / pivot_row[col];
            for (rj, pj) in r.iter_mut().zip(&pivot_row).skip(col) {
                *rj -= f * pj;
            }
        }
    }
    let beta: Vec<f64> = (0..k).map(|i| m[i][k] / m[i][i]).collect();
    beta.iter().all(|b| b.is_finite()).then_some(beta)
}

/// The 2-parameter candidate: one scale on compute, one on the aggregate of
/// all communication phases (applied to each phase identically).
fn compute_comm_candidate(samples: &[CalSample]) -> Option<FamilyScale> {
    let (mut scc, mut scm, mut smm, mut scy, mut smy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for s in samples {
        let w = 1.0 / (s.measured * s.measured);
        let comm = s.comm();
        scc += w * s.compute * s.compute;
        scm += w * s.compute * comm;
        smm += w * comm * comm;
        scy += w * s.compute * s.measured;
        smy += w * comm * s.measured;
    }
    let det = scc * smm - scm * scm;
    if !(det.is_finite() && det.abs() > 1e-12 * scc.max(smm).powi(2).max(f64::MIN_POSITIVE)) {
        return None;
    }
    let a = (smm * scy - scm * smy) / det;
    let b = (scc * smy - scm * scy) / det;
    Some(FamilyScale {
        compute_scale: a,
        grad_scale: b,
        fbc_scale: b,
        halo_scale: b,
        p2p_scale: b,
        samples: samples.len(),
        ..FamilyScale::IDENTITY
    })
}

/// A single common scale on every phase, chosen so the mean signed relative
/// error over the samples is exactly zero: `s = n / Σ (totalᵢ/measuredᵢ)`.
fn common_scale(samples: &[CalSample]) -> Option<FamilyScale> {
    let ratio_sum: f64 = samples.iter().map(|s| (s.compute + s.comm()) / s.measured).sum();
    if !(ratio_sum.is_finite() && ratio_sum > 0.0) {
        return None;
    }
    let s = samples.len() as f64 / ratio_sum;
    if !(s.is_finite() && s > 0.0) {
        return None;
    }
    Some(FamilyScale {
        compute_scale: s,
        grad_scale: s,
        fbc_scale: s,
        halo_scale: s,
        p2p_scale: s,
        samples: samples.len(),
        ..FamilyScale::IDENTITY
    })
}

/// Rescales a candidate so its mean signed relative error on the samples is
/// zero: with predictions `pᵢ`, multiply every parameter by
/// `t = n / Σ (pᵢ/measuredᵢ)`. A least-squares solve minimizes squared
/// error, which tolerates residual bias; the §5.2 headline metric is the
/// *signed* error, so the bias is zeroed explicitly. (Scaling the additive
/// latency together with the multiplicative terms preserves the model
/// shape, and a positive `t` preserves admissibility.) Falls back to the
/// unrescaled candidate when `t` is degenerate.
fn rezero_bias(samples: &[CalSample], scale: FamilyScale) -> FamilyScale {
    let coef = scale.coefficients();
    let ratio_sum: f64 = samples
        .iter()
        .map(|s| {
            let p: f64 = s.features().iter().zip(&coef).map(|(x, c)| x * c).sum();
            p / s.measured
        })
        .sum();
    if !(ratio_sum.is_finite() && ratio_sum > 0.0) {
        return scale;
    }
    let t = samples.len() as f64 / ratio_sum;
    if !(t.is_finite() && t > 0.0) {
        return scale;
    }
    FamilyScale {
        compute_scale: scale.compute_scale * t,
        grad_scale: scale.grad_scale * t,
        fbc_scale: scale.fbc_scale * t,
        halo_scale: scale.halo_scale * t,
        p2p_scale: scale.p2p_scale * t,
        iteration_overhead: scale.iteration_overhead * t,
        grad_split_scale: scale.grad_split_scale * t,
        samples: scale.samples,
    }
}

/// A calibrated view over a [`CostEngine`]: the same O(1) estimate surface,
/// with the fitted per-family parameters applied to every finished
/// breakdown. The engine underneath is untouched — its batch-last
/// `CommCoef` reconstruction path (and the kernel's bit-equality asserts)
/// run exactly as they do uncalibrated.
pub struct CalibratedCostModel<'e, 'a> {
    engine: &'e CostEngine<'a>,
    calibration: Calibration,
}

impl<'e, 'a> CalibratedCostModel<'e, 'a> {
    /// Wraps an engine with a calibration.
    pub fn new(engine: &'e CostEngine<'a>, calibration: Calibration) -> Self {
        CalibratedCostModel { engine, calibration }
    }

    /// The calibration being applied.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The uncalibrated engine underneath.
    pub fn engine(&self) -> &CostEngine<'a> {
        self.engine
    }

    /// Calibrated estimate: the engine's O(1) estimate with the family's
    /// parameters applied to the time phases (memory is reported
    /// uncalibrated).
    pub fn estimate(&self, strategy: Strategy) -> CostEstimate {
        self.calibration.apply_estimate(&self.engine.estimate(strategy))
    }

    /// Calibrated per-epoch total time, O(1).
    pub fn epoch_time(&self, strategy: Strategy) -> f64 {
        self.estimate(strategy).epoch_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::compute::DeviceProfile;
    use crate::config::TrainingConfig;
    use crate::layer::Layer;
    use crate::model::Model;

    fn sample(strategy: Strategy, compute: f64, comm: f64, measured: f64) -> CalSample {
        // Puts the whole communication budget on the phase the strategy
        // family actually uses, like real estimates do.
        let (mut grad, mut fbc, mut halo, mut p2p) = (0.0, 0.0, 0.0, 0.0);
        match strategy.kind() {
            StrategyKind::Filter | StrategyKind::Channel => fbc = comm,
            StrategyKind::Spatial => halo = comm,
            StrategyKind::Pipeline => p2p = comm,
            _ => grad = comm,
        }
        CalSample { strategy, compute, grad, fbc, halo, p2p, iterations: 1.0, measured }
    }

    fn signed_errors(samples: &[CalSample], cal: &Calibration) -> f64 {
        samples.iter().map(|s| (cal.project(s) - s.measured) / s.measured).sum::<f64>()
            / samples.len() as f64
    }

    #[test]
    fn fit_recovers_exact_multiplicative_bias() {
        // Measured = 1.3·compute + 2.0·grad exactly, with grad growing
        // quadratically so the two columns are not collinear: the fit must
        // recover the scales and the calibrated projections become exact.
        let samples: Vec<CalSample> = (1..=8)
            .map(|i| {
                let c = i as f64;
                let m = 0.1 * c * c;
                sample(Strategy::Data { p: 1 << i }, c, m, 1.3 * c + 2.0 * m)
            })
            .collect();
        let cal = Calibration::fit(&samples, 7);
        let s = cal.scale_for(StrategyKind::Data);
        assert!((s.compute_scale - 1.3).abs() < 1e-6, "{s:?}");
        assert!((s.grad_scale - 2.0).abs() < 1e-6, "{s:?}");
        assert_eq!(s.samples, 8);
        assert_eq!(cal.seed, 7);
        for s in &samples {
            assert!((cal.project(s) - s.measured).abs() < 1e-9 * s.measured);
        }
        // Untouched families stay identity.
        assert!(cal.scale_for(StrategyKind::Pipeline).is_identity());
    }

    #[test]
    fn fit_recovers_split_interaction_and_latency() {
        // DataFilter population with a per-iteration latency and a
        // gradient multiplier that grows with the split degree — the full
        // ladder rung must recover all parameters near-exactly.
        let mut samples = Vec::new();
        for (i, &p2) in [2usize, 2, 4, 4, 8, 8, 16, 16].iter().enumerate() {
            let c = 1.0 + i as f64;
            let g = 0.4 * c * c;
            let iters = 50.0 + 10.0 * i as f64;
            let measured = 1.2 * c + (1.5 + 0.25 * (p2 as f64 - 1.0)) * g + 0.02 * iters;
            samples.push(CalSample {
                strategy: Strategy::DataFilter { p1: 2, p2 },
                compute: c,
                grad: g,
                fbc: 0.0,
                halo: 0.0,
                p2p: 0.0,
                iterations: iters,
                measured,
            });
        }
        let cal = Calibration::fit(&samples, 11);
        let s = cal.scale_for(StrategyKind::DataFilter);
        assert!((s.compute_scale - 1.2).abs() < 1e-6, "{s:?}");
        assert!((s.grad_scale - 1.5).abs() < 1e-6, "{s:?}");
        assert!((s.grad_split_scale - 0.25).abs() < 1e-6, "{s:?}");
        assert!((s.iteration_overhead - 0.02).abs() < 1e-6, "{s:?}");
        for s in &samples {
            assert!((cal.project(s) - s.measured).abs() < 1e-9 * s.measured);
        }
    }

    #[test]
    fn fit_zero_comm_family_falls_back_to_common_scale() {
        // Serial samples have no communication: the per-phase systems are
        // degenerate and the common-scale path must still remove the bias.
        let samples: Vec<CalSample> =
            (1..=5).map(|i| sample(Strategy::Serial, i as f64, 0.0, 1.5 * i as f64)).collect();
        let cal = Calibration::fit(&samples, 0);
        let s = cal.scale_for(StrategyKind::Serial);
        assert!((s.compute_scale - 1.5).abs() < 1e-9, "{s:?}");
        assert!(signed_errors(&samples, &cal).abs() < 1e-12);
    }

    #[test]
    fn fit_zeroes_training_bias_even_with_noise() {
        // Noisy measurements around 1.4× the projection: the mean signed
        // relative error after calibration must be ~0 and never larger in
        // magnitude than before.
        let noise = [1.1, 0.92, 1.05, 0.97, 1.15, 0.88];
        let samples: Vec<CalSample> = noise
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let c = (i + 1) as f64;
                sample(Strategy::Data { p: 1 << i }, c, 0.3 * c, 1.4 * 1.3 * c * n)
            })
            .collect();
        let before = signed_errors(&samples, &Calibration::identity()).abs();
        let cal = Calibration::fit(&samples, 1);
        let after = signed_errors(&samples, &cal).abs();
        assert!(after <= before + 1e-9, "bias grew: {before} -> {after}");
        assert!(after < 1e-9, "bias not zeroed: {after}");
    }

    #[test]
    fn fit_rejects_inadmissible_candidates() {
        // A population engineered so an unconstrained per-phase solve wants
        // a negative compute coefficient (measured *shrinks* as compute
        // grows): the fitted calibration must still be admissible — no
        // negative multipliers ever reach the query surface.
        let samples: Vec<CalSample> = (1..=6)
            .map(|i| {
                let c = i as f64;
                sample(Strategy::Data { p: 1 << i }, c, 10.0 * c * c, 30.0 * c * c - 0.5 * c)
            })
            .collect();
        let cal = Calibration::fit(&samples, 2);
        let s = cal.scale_for(StrategyKind::Data);
        assert!(s.admissible(), "{s:?}");
        assert!(s.compute_scale > 0.0 && s.grad_scale > 0.0);
    }

    #[test]
    fn fit_ignores_degenerate_samples() {
        let good: Vec<CalSample> = (1..=4)
            .map(|i| sample(Strategy::Data { p: i }, i as f64, 1.0, 2.0 * i as f64))
            .collect();
        let mut poisoned = good.clone();
        poisoned.push(sample(Strategy::Data { p: 32 }, 1.0, 1.0, f64::NAN));
        poisoned.push(sample(Strategy::Data { p: 64 }, 1.0, 1.0, f64::INFINITY));
        poisoned.push(sample(Strategy::Data { p: 128 }, 1.0, 1.0, 0.0));
        poisoned.push(sample(Strategy::Data { p: 256 }, f64::NAN, 1.0, 1.0));
        let a = Calibration::fit(&good, 3);
        let b = Calibration::fit(&poisoned, 3);
        assert_eq!(a.scale_for(StrategyKind::Data), b.scale_for(StrategyKind::Data));
    }

    #[test]
    fn fit_of_no_samples_is_identity() {
        let cal = Calibration::fit(&[], 9);
        assert!(cal.is_identity());
        assert_eq!(cal.num_samples(), 0);
    }

    #[test]
    fn apply_estimate_scales_time_phases_only() {
        let mut cal = Calibration::identity();
        cal.scales[family_index(StrategyKind::Data)] = FamilyScale {
            compute_scale: 2.0,
            grad_scale: 3.0,
            iteration_overhead: 0.1,
            ..FamilyScale::IDENTITY
        };
        let cost = CostEstimate {
            strategy: Strategy::Data { p: 4 },
            per_epoch: PhaseBreakdown {
                forward_backward: 1.0,
                weight_update: 0.5,
                gradient_exchange: 0.25,
                fb_collective: 0.0,
                halo_exchange: 0.0,
                pipeline_p2p: 0.0,
            },
            iterations: 10,
            memory_per_pe_bytes: 1e9,
        };
        let out = cal.apply_estimate(&cost);
        // forward_backward 1.0·2 + 0.1·10 iterations = 3.0, update 0.5·2.
        assert_eq!(out.per_epoch.compute(), 4.0);
        assert_eq!(out.per_epoch.communication(), 0.75);
        assert_eq!(out.iterations, 10);
        assert_eq!(out.memory_per_pe_bytes, 1e9);
        assert_eq!(out.strategy, cost.strategy);
    }

    #[test]
    fn apply_estimate_grows_gradient_scale_with_split_degree() {
        let mut cal = Calibration::identity();
        cal.scales[family_index(StrategyKind::DataFilter)] =
            FamilyScale { grad_scale: 2.0, grad_split_scale: 0.5, ..FamilyScale::IDENTITY };
        let base = CostEstimate {
            strategy: Strategy::DataFilter { p1: 4, p2: 4 },
            per_epoch: PhaseBreakdown {
                forward_backward: 0.0,
                weight_update: 0.0,
                gradient_exchange: 1.0,
                fb_collective: 0.0,
                halo_exchange: 0.0,
                pipeline_p2p: 0.0,
            },
            iterations: 1,
            memory_per_pe_bytes: 0.0,
        };
        // p2 = 4 → gradient multiplier 2.0 + 0.5·3 = 3.5.
        assert_eq!(cal.apply_estimate(&base).per_epoch.gradient_exchange, 3.5);
    }

    fn toy_engine_model() -> Model {
        Model::new(
            "cal-toy",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 16, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 16, (32, 32), 2, 2),
                Layer::conv2d("c2", 16, 32, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 32, &[16, 16]),
                Layer::fully_connected("fc", 32, 10),
            ],
        )
    }

    #[test]
    fn identity_model_is_bit_identical_to_engine() {
        let model = toy_engine_model();
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let config = TrainingConfig::small(4096, 64);
        let engine = CostEngine::new(&model, &device, &cluster, config).unwrap();
        let calibrated = CalibratedCostModel::new(&engine, Calibration::identity());
        for s in [
            Strategy::Serial,
            Strategy::Data { p: 8 },
            Strategy::Filter { p: 4 },
            Strategy::DataFilter { p1: 4, p2: 4 },
            Strategy::Pipeline { p: 4, segments: 8 },
        ] {
            let raw = engine.estimate(s);
            let cal = calibrated.estimate(s);
            assert_eq!(raw.epoch_time().to_bits(), cal.epoch_time().to_bits(), "{s}");
            assert_eq!(raw, cal, "{s}");
        }
    }

    #[test]
    fn calibrated_model_scales_engine_estimates() {
        let model = toy_engine_model();
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let config = TrainingConfig::small(4096, 64);
        let engine = CostEngine::new(&model, &device, &cluster, config).unwrap();
        let mut cal = Calibration::identity();
        cal.scales[family_index(StrategyKind::Filter)] =
            FamilyScale { fbc_scale: 2.0, ..FamilyScale::IDENTITY };
        let calibrated = CalibratedCostModel::new(&engine, cal);
        let s = Strategy::Filter { p: 4 };
        let raw = engine.estimate(s);
        let out = calibrated.estimate(s);
        assert_eq!(out.per_epoch.compute(), raw.per_epoch.compute());
        assert!(
            (out.per_epoch.communication() - 2.0 * raw.per_epoch.communication()).abs() < 1e-12
        );
        assert_eq!(calibrated.epoch_time(s), out.epoch_time());
    }

    #[test]
    fn json_round_trip_preserves_scales() {
        let samples: Vec<CalSample> = (1..=6)
            .map(|i| {
                let c = i as f64;
                sample(Strategy::DataFilter { p1: 2, p2: 1 << i }, c, 0.4 * c * c, 1.7 * c)
            })
            .chain((1..=4).map(|i| sample(Strategy::Serial, i as f64, 0.0, 1.2 * i as f64)))
            .collect();
        let cal = Calibration::fit(&samples, 0x5EED);
        let json = cal.to_json();
        let back = Calibration::from_json(&json).unwrap();
        assert_eq!(cal, back);
        // Render/parse round trip too (the wire path).
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(Calibration::from_json(&reparsed).unwrap(), cal);
    }

    #[test]
    fn from_json_rejects_bad_input() {
        assert!(Calibration::from_json(&Json::obj([("seed", Json::num(1.0))]))
            .unwrap_err()
            .contains("families"));
        let family = |name: &str, compute: f64| {
            Json::obj([
                ("seed", Json::num(0.0)),
                (
                    "families",
                    Json::Arr(vec![Json::obj([
                        ("family", Json::str(name)),
                        ("compute_scale", Json::num(compute)),
                        ("grad_scale", Json::num(1.0)),
                        ("fbc_scale", Json::num(1.0)),
                        ("halo_scale", Json::num(1.0)),
                        ("p2p_scale", Json::num(1.0)),
                        ("iteration_overhead", Json::num(0.0)),
                        ("grad_split_scale", Json::num(0.0)),
                    ])]),
                ),
            ])
        };
        assert!(Calibration::from_json(&family("warp", 1.0)).unwrap_err().contains("unknown"));
        assert!(Calibration::from_json(&family("data", -2.0))
            .unwrap_err()
            .contains("inadmissible"));
        assert!(Calibration::from_json(&family("data", f64::NAN))
            .unwrap_err()
            .contains("inadmissible"));
    }

    #[test]
    fn feature_index_constants_match_feature_order() {
        let s = CalSample {
            strategy: Strategy::DataFilter { p1: 2, p2: 4 },
            compute: 1.0,
            grad: 2.0,
            fbc: 3.0,
            halo: 4.0,
            p2p: 5.0,
            iterations: 6.0,
            measured: 1.0,
        };
        let f = s.features();
        assert_eq!(f[F_COMPUTE], 1.0);
        assert_eq!(f[F_GRAD], 2.0);
        assert_eq!(f[F_ITER], 6.0);
        assert_eq!(f[F_GRAD_SPLIT], 2.0 * 3.0); // grad · (p2 − 1)
    }
}
