//! Oracle-vs-measured fidelity reporting (paper §5.2).
//!
//! The paper's central evaluation does not stop at ranking strategies fast —
//! it checks that the oracle's projections *track measured training steps*
//! (§5.2: projection accuracy per strategy family, Figure 3's per-bar
//! accuracy labels, the 86.74%-average headline). This module provides the
//! report types for that comparison, independent of where the measurements
//! come from: each [`ErrorSample`] pairs one projected time with one measured
//! time for a concrete strategy, and [`FidelityReport::from_cells`]
//! aggregates samples into
//!
//! * **per-strategy-family error statistics** ([`FamilyFidelity`]): signed
//!   relative error (does the oracle over- or under-project this family?),
//!   the absolute-percentage-error distribution (mean / median / p90 / max),
//!   and the paper's accuracy metric ([`crate::oracle::projection_accuracy`]),
//! * **per-cell rank correlation** ([`CellFidelity`]): Spearman's ρ between
//!   the oracle's ordering of a cell's candidates and the measured ordering —
//!   the oracle's *guidance* value (picking the right strategy) is preserved
//!   even where absolute projections drift,
//! * **overall statistics** across every sample.
//!
//! The measured side in this repository is the `paradl-sim` simulator; its
//! `conformance` module runs grid sweeps through the simulator and builds
//! these reports. Keeping the types here (next to [`crate::grid`]) lets any
//! other measurement source — traces from a real cluster, a different
//! simulator — reuse the same report format.

use crate::grid::GridQuery;
use crate::oracle::projection_accuracy;
use crate::strategy::{Strategy, StrategyKind};

/// One oracle-vs-measured comparison point: the projected and measured times
/// (same unit on both sides — the conformance harness uses per-epoch
/// seconds) of one concrete strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSample {
    /// The strategy both sides evaluated.
    pub strategy: Strategy,
    /// The oracle's projected time.
    pub projected: f64,
    /// The measured (or simulated) time.
    pub measured: f64,
}

impl ErrorSample {
    /// Signed relative error `(projected − measured) / measured`: negative
    /// when the oracle under-projects (measured runs are slower than
    /// promised), positive when it over-projects.
    pub fn signed_error(&self) -> f64 {
        if self.measured <= 0.0 {
            return 0.0;
        }
        (self.projected - self.measured) / self.measured
    }

    /// Absolute percentage error `|projected − measured| / measured`.
    pub fn ape(&self) -> f64 {
        self.signed_error().abs()
    }

    /// The paper's §5.2 accuracy metric `1 − APE`, clamped at 0.
    pub fn accuracy(&self) -> f64 {
        projection_accuracy(self.projected, self.measured)
    }
}

/// Summary statistics over a set of [`ErrorSample`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of samples aggregated.
    pub samples: usize,
    /// Mean signed relative error (systematic bias of the projections).
    pub mean_signed_error: f64,
    /// Mean absolute percentage error.
    pub mean_ape: f64,
    /// Median (p50) absolute percentage error.
    pub p50_ape: f64,
    /// 90th-percentile absolute percentage error.
    pub p90_ape: f64,
    /// Worst absolute percentage error.
    pub max_ape: f64,
    /// Mean of the paper's accuracy metric (`1 − APE`, clamped at 0).
    pub mean_accuracy: f64,
}

impl ErrorStats {
    /// Aggregates `samples`; returns `None` when no *usable* sample
    /// remains. Degenerate samples — a non-finite projected or measured
    /// time, or a measured time ≤ 0 — are filtered out first: a single
    /// `NaN`/`inf` measurement would otherwise poison every mean in the
    /// report (`mean_ape`/`mean_accuracy` → inf/NaN), and a zero
    /// measurement carries no error information (every relative metric is
    /// undefined on it). The `samples` count reflects only the aggregated
    /// (usable) samples.
    pub fn of(samples: &[ErrorSample]) -> Option<ErrorStats> {
        let usable: Vec<&ErrorSample> = samples
            .iter()
            .filter(|s| s.projected.is_finite() && s.measured.is_finite() && s.measured > 0.0)
            .collect();
        if usable.is_empty() {
            return None;
        }
        let n = usable.len() as f64;
        let mut apes: Vec<f64> = usable.iter().map(|s| s.ape()).collect();
        apes.sort_by(f64::total_cmp);
        Some(ErrorStats {
            samples: usable.len(),
            mean_signed_error: usable.iter().map(|s| s.signed_error()).sum::<f64>() / n,
            mean_ape: apes.iter().sum::<f64>() / n,
            p50_ape: percentile(&apes, 0.50),
            p90_ape: percentile(&apes, 0.90),
            max_ape: *apes.last().expect("non-empty"),
            mean_accuracy: usable.iter().map(|s| s.accuracy()).sum::<f64>() / n,
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Error statistics of one strategy family, mirroring the per-strategy rows
/// of the paper's §5.2 accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyFidelity {
    /// The strategy family.
    pub family: StrategyKind,
    /// Aggregated error statistics of the family's samples.
    pub stats: ErrorStats,
}

/// Fidelity of one grid cell: how well the oracle's candidate ordering
/// matches the measured ordering of the same candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFidelity {
    /// The grid cell the samples belong to.
    pub query: GridQuery,
    /// The cell's comparison points, in the oracle's ranked order.
    pub samples: Vec<ErrorSample>,
    /// Spearman rank correlation between the oracle's ordering and the
    /// measured ordering of the cell's candidates; `None` when fewer than
    /// two candidates (or zero rank variance) make it undefined.
    pub rank_correlation: Option<f64>,
    /// Error statistics over the cell's samples.
    pub stats: ErrorStats,
}

/// The oracle-vs-measured fidelity report: the shape of §5.2's accuracy
/// tables, computed over the winners of a grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Per-cell fidelity, in grid evaluation order.
    pub cells: Vec<CellFidelity>,
    /// Per-strategy-family statistics, in [`StrategyKind::ALL`] order
    /// (families without samples are omitted).
    pub families: Vec<FamilyFidelity>,
    /// Statistics over every sample of the report.
    pub overall: ErrorStats,
    /// Mean Spearman ρ over the cells where it is defined; `None` when no
    /// cell has one.
    pub mean_rank_correlation: Option<f64>,
}

impl FidelityReport {
    /// Builds a report from per-cell samples (each cell's samples in the
    /// oracle's ranked order). Returns `None` when no cell carries samples.
    pub fn from_cells(cells: Vec<(GridQuery, Vec<ErrorSample>)>) -> Option<FidelityReport> {
        let all: Vec<ErrorSample> =
            cells.iter().flat_map(|(_, samples)| samples.iter().copied()).collect();
        let overall = ErrorStats::of(&all)?;

        let cells: Vec<CellFidelity> = cells
            .into_iter()
            .filter_map(|(query, samples)| {
                // A cell whose every sample is degenerate (see
                // [`ErrorStats::of`]) is dropped like an empty one.
                let stats = ErrorStats::of(&samples)?;
                let projected: Vec<f64> = samples.iter().map(|s| s.projected).collect();
                let measured: Vec<f64> = samples.iter().map(|s| s.measured).collect();
                Some(CellFidelity {
                    query,
                    rank_correlation: spearman_rho(&projected, &measured),
                    stats,
                    samples,
                })
            })
            .collect();

        let families = StrategyKind::ALL
            .iter()
            .filter_map(|&family| {
                let samples: Vec<ErrorSample> =
                    all.iter().filter(|s| s.strategy.kind() == family).copied().collect();
                ErrorStats::of(&samples).map(|stats| FamilyFidelity { family, stats })
            })
            .collect();

        let rhos: Vec<f64> = cells.iter().filter_map(|c| c.rank_correlation).collect();
        let mean_rank_correlation =
            if rhos.is_empty() { None } else { Some(rhos.iter().sum::<f64>() / rhos.len() as f64) };

        Some(FidelityReport { cells, families, overall, mean_rank_correlation })
    }

    /// The family statistics for `family`, if any sample had it.
    pub fn family(&self, family: StrategyKind) -> Option<&FamilyFidelity> {
        self.families.iter().find(|f| f.family == family)
    }

    /// Total number of comparison points in the report.
    pub fn num_samples(&self) -> usize {
        self.overall.samples
    }
}

/// Fractional ranks of `values` (1-based, ties get the average rank — the
/// standard treatment for Spearman's ρ).
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j hold tied values; their shared rank is the average
        // of the 1-based positions.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two paired samples: the Pearson
/// correlation of their fractional ranks (average ranks on ties). Returns
/// `None` for fewer than two pairs or when either side has zero rank
/// variance (all values tied), where ρ is undefined.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "spearman_rho: unpaired samples");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let (ra, rb) = (fractional_ranks(a), fractional_ranks(b));
    let mean = (n + 1) as f64 / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let (da, db) = (ra[i] - mean, rb[i] - mean);
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a * var_b).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(strategy: Strategy, projected: f64, measured: f64) -> ErrorSample {
        ErrorSample { strategy, projected, measured }
    }

    #[test]
    fn error_sample_metrics_match_definitions() {
        let s = sample(Strategy::Data { p: 4 }, 90.0, 100.0);
        assert!((s.signed_error() + 0.1).abs() < 1e-12);
        assert!((s.ape() - 0.1).abs() < 1e-12);
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
        let over = sample(Strategy::Serial, 120.0, 100.0);
        assert!(over.signed_error() > 0.0);
        assert_eq!(sample(Strategy::Serial, 1.0, 0.0).signed_error(), 0.0);
    }

    #[test]
    fn stats_aggregate_distribution() {
        let samples: Vec<ErrorSample> = [1.0f64, 1.1, 0.8, 1.3]
            .iter()
            .map(|&p| sample(Strategy::Data { p: 2 }, p, 1.0))
            .collect();
        let stats = ErrorStats::of(&samples).unwrap();
        assert_eq!(stats.samples, 4);
        assert!((stats.max_ape - 0.3).abs() < 1e-12);
        assert!((stats.mean_ape - 0.15).abs() < 1e-12);
        // Signed errors: 0, +0.1, −0.2, +0.3 → mean +0.05.
        assert!((stats.mean_signed_error - 0.05).abs() < 1e-12);
        assert!(stats.p50_ape <= stats.p90_ape && stats.p90_ape <= stats.max_ape);
        assert!(ErrorStats::of(&[]).is_none());
    }

    #[test]
    fn stats_filter_degenerate_samples() {
        // One NaN, one inf, one zero-measured and one non-finite-projected
        // sample must not poison the means of the three good samples.
        let good = [1.1f64, 0.9, 1.0];
        let mut samples: Vec<ErrorSample> =
            good.iter().map(|&p| sample(Strategy::Data { p: 2 }, p, 1.0)).collect();
        let clean = ErrorStats::of(&samples).unwrap();
        samples.push(sample(Strategy::Data { p: 4 }, 1.0, f64::NAN));
        samples.push(sample(Strategy::Data { p: 8 }, 1.0, f64::INFINITY));
        samples.push(sample(Strategy::Data { p: 16 }, 1.0, 0.0));
        samples.push(sample(Strategy::Data { p: 32 }, f64::INFINITY, 1.0));
        let stats = ErrorStats::of(&samples).unwrap();
        assert_eq!(stats, clean, "degenerate samples changed the statistics");
        assert_eq!(stats.samples, 3);
        assert!(stats.mean_ape.is_finite() && stats.mean_accuracy.is_finite());
        assert!(stats.mean_signed_error.is_finite());
    }

    #[test]
    fn stats_of_only_degenerate_samples_is_none() {
        let samples = [
            sample(Strategy::Serial, 1.0, f64::NAN),
            sample(Strategy::Serial, 1.0, 0.0),
            sample(Strategy::Serial, 1.0, -2.0),
        ];
        assert!(ErrorStats::of(&samples).is_none());
    }

    #[test]
    fn report_drops_cells_with_only_degenerate_samples() {
        let q = |m: usize| GridQuery { model: m, cluster: 0, batch: 64 };
        let cells = vec![
            (q(0), vec![sample(Strategy::Data { p: 2 }, 1.0, 1.0)]),
            (q(1), vec![sample(Strategy::Serial, 1.0, f64::NAN)]),
        ];
        let report = FidelityReport::from_cells(cells).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.num_samples(), 1);
        assert!(report.overall.mean_accuracy.is_finite());
    }

    #[test]
    fn spearman_detects_perfect_and_inverted_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_rho(&a, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&a, &down).unwrap() + 1.0).abs() < 1e-12);
        assert!(spearman_rho(&a[..1], &up[..1]).is_none());
        assert!(spearman_rho(&a, &[5.0, 5.0, 5.0, 5.0]).is_none());
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        // b has a tie; correlation should be strictly between 0 and 1.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 2.0, 3.0];
        let rho = spearman_rho(&a, &b).unwrap();
        assert!(rho > 0.9 && rho < 1.0, "rho = {rho}");
        assert_eq!(fractional_ranks(&b), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn report_groups_by_family_and_cell() {
        let q = |m: usize| GridQuery { model: m, cluster: 0, batch: 64 };
        let cells = vec![
            (
                q(0),
                vec![
                    sample(Strategy::Data { p: 4 }, 10.0, 11.0),
                    sample(Strategy::Filter { p: 4 }, 20.0, 26.0),
                    sample(Strategy::Data { p: 8 }, 30.0, 31.0),
                ],
            ),
            (q(1), vec![sample(Strategy::Serial, 5.0, 5.0)]),
            (q(2), vec![]),
        ];
        let report = FidelityReport::from_cells(cells).unwrap();
        assert_eq!(report.num_samples(), 4);
        assert_eq!(report.cells.len(), 2, "empty cells are dropped");
        assert_eq!(report.family(StrategyKind::Data).unwrap().stats.samples, 2);
        assert_eq!(report.family(StrategyKind::Filter).unwrap().stats.samples, 1);
        assert!(report.family(StrategyKind::Pipeline).is_none());
        // First cell's projected and measured orders agree → ρ = 1.
        assert!((report.cells[0].rank_correlation.unwrap() - 1.0).abs() < 1e-12);
        // Single-sample cell has no defined ρ, so the mean comes from cell 0.
        assert!(report.cells[1].rank_correlation.is_none());
        assert!((report.mean_rank_correlation.unwrap() - 1.0).abs() < 1e-12);
        // Data parallelism is projected more accurately than filter here.
        let data = report.family(StrategyKind::Data).unwrap().stats.mean_accuracy;
        let filter = report.family(StrategyKind::Filter).unwrap().stats.mean_accuracy;
        assert!(data > filter);
    }

    #[test]
    fn report_of_no_samples_is_none() {
        assert!(FidelityReport::from_cells(vec![]).is_none());
        let q = GridQuery { model: 0, cluster: 0, batch: 1 };
        assert!(FidelityReport::from_cells(vec![(q, vec![])]).is_none());
    }
}
