//! Scaling sweeps: evaluate a strategy family over a range of PE counts under
//! weak or strong scaling, the way the paper's Figure 3 / Figure 5 sweeps are
//! organized.

use crate::compute::ComputeModel;
use crate::config::TrainingConfig;
use crate::cost::CostEstimate;
use crate::oracle::{Constraints, Oracle};
use crate::strategy::{Strategy, StrategyKind};

/// How the global mini-batch evolves with the PE count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// Weak scaling: `B = samples_per_pe × p` (the paper's default, §4.2).
    Weak {
        /// Samples assigned to each PE.
        samples_per_pe: usize,
    },
    /// Strong scaling: `B` fixed regardless of `p` (used for filter/channel
    /// parallelism in Figure 3).
    Strong {
        /// The fixed global batch size.
        batch_size: usize,
    },
}

impl ScalingMode {
    /// The global batch size at `p` PEs.
    pub fn batch_at(&self, p: usize) -> usize {
        match *self {
            ScalingMode::Weak { samples_per_pe } => samples_per_pe * p,
            ScalingMode::Strong { batch_size } => batch_size,
        }
    }
}

/// One point of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Number of PEs.
    pub pes: usize,
    /// Global batch size used at this point.
    pub batch_size: usize,
    /// The concrete strategy evaluated.
    pub strategy: Strategy,
    /// The oracle's cost estimate.
    pub cost: CostEstimate,
    /// Whether the point respects memory and scaling limits.
    pub feasible: bool,
}

/// Sweeps a strategy family over the given PE counts.
pub fn sweep<C: ComputeModel + ?Sized>(
    oracle: &Oracle<'_, C>,
    kind: StrategyKind,
    pe_counts: &[usize],
    mode: ScalingMode,
    constraints: &Constraints,
) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(pe_counts.len());
    for &p in pe_counts {
        let batch = mode.batch_at(p).max(1);
        let config = TrainingConfig { batch_size: batch, ..oracle.config };
        let strategy = oracle.instantiate(kind, p, constraints.pipeline_segments);
        let proj = oracle.project_with(strategy, &config);
        let feasible = proj.cost.memory_per_pe_bytes <= constraints.memory_capacity_bytes
            && strategy.validate(oracle.model, batch).is_ok();
        points.push(SweepPoint { pes: p, batch_size: batch, strategy, cost: proj.cost, feasible });
    }
    points
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn powers_of_two(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = lo.max(1);
    while p <= hi {
        v.push(p);
        // Checked: `hi` near `usize::MAX` would otherwise overflow the doubling.
        match p.checked_mul(2) {
            Some(next) => p = next,
            None => break,
        }
    }
    v
}

/// Speedup of each sweep point relative to the first point of a baseline
/// sweep (used by Figure 5: spatial+data speedup over pure spatial).
pub fn speedup_over(points: &[SweepPoint], baseline: &SweepPoint) -> Vec<(usize, f64)> {
    let base = baseline.cost.epoch_time();
    points.iter().map(|pt| (pt.pes, base / pt.cost.epoch_time().max(f64::MIN_POSITIVE))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::compute::DeviceProfile;
    use crate::layer::Layer;
    use crate::model::Model;

    fn setup() -> (Model, DeviceProfile, ClusterSpec, TrainingConfig) {
        let model = Model::new(
            "m",
            3,
            vec![64, 64],
            vec![
                Layer::conv2d("c1", 3, 64, (64, 64), 3, 1, 1),
                Layer::pool2d("p1", 64, (64, 64), 2, 2),
                Layer::conv2d("c2", 64, 128, (32, 32), 3, 1, 1),
                Layer::global_pool("g", 128, &[32, 32]),
                Layer::fully_connected("fc", 128, 10),
            ],
        );
        (
            model,
            DeviceProfile::v100(),
            ClusterSpec::paper_system(),
            TrainingConfig::small(65536, 64),
        )
    }

    #[test]
    fn powers_of_two_range() {
        assert_eq!(powers_of_two(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(powers_of_two(1, 1), vec![1]);
        assert!(powers_of_two(8, 4).is_empty());
    }

    #[test]
    fn weak_scaling_keeps_per_pe_compute_constant() {
        let (m, d, c, cfg) = setup();
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let pts = sweep(
            &oracle,
            StrategyKind::Data,
            &[16, 32, 64],
            ScalingMode::Weak { samples_per_pe: 32 },
            &Constraints::default(),
        );
        assert_eq!(pts.len(), 3);
        // Under weak scaling per-iteration forward/backward time stays flat.
        let t16 = pts[0].cost.per_iteration().forward_backward;
        let t64 = pts[2].cost.per_iteration().forward_backward;
        assert!((t16 - t64).abs() / t16 < 1e-9);
        // Communication grows with p.
        assert!(
            pts[2].cost.per_iteration().gradient_exchange
                > pts[0].cost.per_iteration().gradient_exchange
        );
    }

    #[test]
    fn strong_scaling_shrinks_per_pe_compute() {
        let (m, d, c, cfg) = setup();
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let pts = sweep(
            &oracle,
            StrategyKind::Filter,
            &[4, 8, 16],
            ScalingMode::Strong { batch_size: 32 },
            &Constraints::default(),
        );
        assert!(pts[2].cost.per_epoch.forward_backward < pts[0].cost.per_epoch.forward_backward);
    }

    #[test]
    fn infeasible_points_are_flagged() {
        let (m, d, c, cfg) = setup();
        let oracle = Oracle::new(&m, &d, &c, cfg);
        // Filter parallelism is limited by min_l F_l = 10 (the fc layer).
        let pts = sweep(
            &oracle,
            StrategyKind::Filter,
            &[8, 16],
            ScalingMode::Strong { batch_size: 32 },
            &Constraints::default(),
        );
        assert!(pts[0].feasible);
        assert!(!pts[1].feasible);
    }

    #[test]
    fn speedup_is_relative_to_baseline() {
        let (m, d, c, cfg) = setup();
        let oracle = Oracle::new(&m, &d, &c, cfg);
        let pts = sweep(
            &oracle,
            StrategyKind::Data,
            &[16, 32],
            ScalingMode::Strong { batch_size: 512 },
            &Constraints::default(),
        );
        let sp = speedup_over(&pts, &pts[0]);
        assert!((sp[0].1 - 1.0).abs() < 1e-12);
        assert!(sp[1].1 > 1.0);
    }
}
