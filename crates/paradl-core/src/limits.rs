//! Limitation / bottleneck detection (paper §5.3 and Table 6).
//!
//! From a set of projections the oracle derives the qualitative summary the
//! paper presents in Table 6: which parallel strategies are exposed to which
//! limitation (inherent to the strategy) or bottleneck (caused by the
//! framework or system), and in which training phase.

use crate::cost::CostEstimate;
use crate::memory::V100_MEMORY_BYTES;
use crate::strategy::StrategyKind;
use std::fmt;

/// Whether an issue is a limitation inherent to the strategy (L) or a
/// bottleneck caused by framework/system components (B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueClass {
    /// Inherent limitation of the parallel strategy.
    Limitation,
    /// Bottleneck introduced by the framework or system.
    Bottleneck,
}

/// Training phase affected by an issue (Table 6 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// I/O and pre-processing.
    Io,
    /// Forward and backward propagation.
    ForwardBackward,
    /// Gradient exchange.
    GradientExchange,
    /// Weight update.
    WeightUpdate,
}

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Issue {
    /// Category grouping (Communication, Memory Capacity, Computation, Scaling).
    pub category: &'static str,
    /// Limitation or bottleneck.
    pub class: IssueClass,
    /// Short remark matching the paper's Remarks column.
    pub remark: &'static str,
    /// Strategy families affected.
    pub strategies: Vec<StrategyKind>,
    /// Training phases affected.
    pub phases: Vec<Phase>,
    /// Whether the issue also appears in distributed inference.
    pub appears_in_inference: bool,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = match self.class {
            IssueClass::Limitation => "L",
            IssueClass::Bottleneck => "B",
        };
        let strategies: Vec<String> = self.strategies.iter().map(|s| s.to_string()).collect();
        write!(f, "{:<14} {} {:<22} [{}]", self.category, class, self.remark, strategies.join(", "))
    }
}

/// The static limitation/bottleneck matrix of Table 6.
pub fn table6() -> Vec<Issue> {
    use StrategyKind::*;
    vec![
        Issue {
            category: "Communication",
            class: IssueClass::Limitation,
            remark: "Gradient-exchange",
            strategies: vec![Data, Spatial, DataFilter, DataSpatial],
            phases: vec![Phase::GradientExchange],
            appears_in_inference: false,
        },
        Issue {
            category: "Communication",
            class: IssueClass::Limitation,
            remark: "Layer-wise comm.",
            strategies: vec![Filter, Channel, DataFilter],
            phases: vec![Phase::ForwardBackward],
            appears_in_inference: true,
        },
        Issue {
            category: "Communication",
            class: IssueClass::Bottleneck,
            remark: "P2P communication",
            strategies: vec![Spatial, Pipeline, DataSpatial],
            phases: vec![Phase::ForwardBackward, Phase::GradientExchange],
            appears_in_inference: true,
        },
        Issue {
            category: "Communication",
            class: IssueClass::Bottleneck,
            remark: "Network congestion",
            strategies: vec![Data, Spatial, Pipeline, Filter, Channel, DataFilter, DataSpatial],
            phases: vec![Phase::ForwardBackward, Phase::GradientExchange],
            appears_in_inference: true,
        },
        Issue {
            category: "Memory",
            class: IssueClass::Bottleneck,
            remark: "Memory redundancy",
            strategies: vec![Data, Spatial, Pipeline, Filter, Channel, DataFilter, DataSpatial],
            phases: vec![
                Phase::Io,
                Phase::ForwardBackward,
                Phase::GradientExchange,
                Phase::WeightUpdate,
            ],
            appears_in_inference: true,
        },
        Issue {
            category: "Memory",
            class: IssueClass::Bottleneck,
            remark: "Memory stalling",
            strategies: vec![Data, Spatial, Pipeline, Filter, Channel, DataFilter, DataSpatial],
            phases: vec![
                Phase::Io,
                Phase::ForwardBackward,
                Phase::GradientExchange,
                Phase::WeightUpdate,
            ],
            appears_in_inference: true,
        },
        Issue {
            category: "Computation",
            class: IssueClass::Limitation,
            remark: "Weight update",
            strategies: vec![Data, Spatial, Pipeline, Filter, Channel, DataFilter, DataSpatial],
            phases: vec![Phase::WeightUpdate],
            appears_in_inference: false,
        },
        Issue {
            category: "Computation",
            class: IssueClass::Limitation,
            remark: "Workload balancing",
            strategies: vec![Pipeline],
            phases: vec![Phase::ForwardBackward, Phase::WeightUpdate],
            appears_in_inference: true,
        },
        Issue {
            category: "Computation",
            class: IssueClass::Bottleneck,
            remark: "Comp. redundancy",
            strategies: vec![Filter, Channel, DataFilter],
            phases: vec![Phase::ForwardBackward, Phase::WeightUpdate],
            appears_in_inference: true,
        },
        Issue {
            category: "Scaling",
            class: IssueClass::Limitation,
            remark: "Number of PEs",
            strategies: vec![Data, Spatial, Pipeline, Filter, Channel, DataFilter, DataSpatial],
            phases: vec![
                Phase::Io,
                Phase::ForwardBackward,
                Phase::GradientExchange,
                Phase::WeightUpdate,
            ],
            appears_in_inference: true,
        },
    ]
}

/// A quantitative diagnosis derived from a concrete projection: which issues
/// are *active* (i.e. contribute a significant share of the projected time or
/// exceed memory capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Detected active issues with the fraction of the epoch they account for
    /// (or the memory overshoot ratio for memory issues).
    pub findings: Vec<(String, f64)>,
}

/// Diagnoses a projection: flags communication phases that exceed
/// `comm_threshold` of the epoch time, weight update above `wu_threshold` of
/// compute, and memory above the capacity.
pub fn diagnose(
    estimate: &CostEstimate,
    memory_capacity: f64,
    comm_threshold: f64,
    wu_threshold: f64,
) -> Diagnosis {
    let mut findings = Vec::new();
    let total = estimate.per_epoch.total().max(f64::MIN_POSITIVE);
    let b = &estimate.per_epoch;

    let mut check = |name: &str, value: f64| {
        let frac = value / total;
        if frac > comm_threshold {
            findings.push((name.to_string(), frac));
        }
    };
    check("gradient-exchange communication", b.gradient_exchange);
    check("layer-wise collective communication", b.fb_collective);
    check("halo-exchange communication", b.halo_exchange);
    check("pipeline P2P communication", b.pipeline_p2p);

    let compute = b.compute().max(f64::MIN_POSITIVE);
    if b.weight_update / compute > wu_threshold {
        findings.push(("weight update share of compute".to_string(), b.weight_update / compute));
    }

    if estimate.memory_per_pe_bytes > memory_capacity {
        findings.push((
            "memory capacity exceeded".to_string(),
            estimate.memory_per_pe_bytes / memory_capacity,
        ));
    }

    Diagnosis { findings }
}

/// Convenience wrapper using the V100 capacity and the paper-ish thresholds
/// (communication phases above 25% of the epoch, weight update above 10% of
/// compute).
pub fn diagnose_default(estimate: &CostEstimate) -> Diagnosis {
    diagnose(estimate, V100_MEMORY_BYTES, 0.25, 0.10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::compute::DeviceProfile;
    use crate::config::TrainingConfig;
    use crate::cost::estimate;
    use crate::layer::Layer;
    use crate::model::Model;
    use crate::strategy::Strategy;

    #[test]
    fn table6_has_ten_rows_like_the_paper() {
        let rows = table6();
        assert_eq!(rows.len(), 10);
        // Network congestion and scaling affect every strategy.
        let congestion = rows.iter().find(|r| r.remark == "Network congestion").unwrap();
        assert_eq!(congestion.strategies.len(), 7);
        // Workload balancing is pipeline-only.
        let wb = rows.iter().find(|r| r.remark == "Workload balancing").unwrap();
        assert_eq!(wb.strategies, vec![StrategyKind::Pipeline]);
        // Gradient exchange does not appear in inference.
        let ge = rows.iter().find(|r| r.remark == "Gradient-exchange").unwrap();
        assert!(!ge.appears_in_inference);
    }

    #[test]
    fn diagnose_flags_layerwise_comm_for_filter_parallelism() {
        let model = Model::new(
            "m",
            3,
            vec![64, 64],
            vec![
                Layer::conv2d("c1", 3, 64, (64, 64), 3, 1, 1),
                Layer::conv2d("c2", 64, 64, (64, 64), 3, 1, 1),
                Layer::global_pool("g", 64, &[64, 64]),
                Layer::fully_connected("fc", 64, 10),
            ],
        );
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let est = estimate(&model, &device, &cluster, &cfg, Strategy::Filter { p: 32 });
        let diag = diagnose_default(&est);
        assert!(
            diag.findings.iter().any(|(name, _)| name.contains("layer-wise")),
            "filter parallelism at scale should be flagged as comm-bound: {:?}",
            diag.findings
        );
    }

    #[test]
    fn diagnose_flags_memory_overrun() {
        let model =
            Model::new("m", 3, vec![64, 64], vec![Layer::conv2d("c1", 3, 64, (64, 64), 3, 1, 1)]);
        let device = DeviceProfile::v100();
        let cluster = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(8192, 64);
        let est = estimate(&model, &device, &cluster, &cfg, Strategy::Serial);
        let diag = diagnose(&est, 1.0, 0.25, 0.10);
        assert!(diag.findings.iter().any(|(n, _)| n.contains("memory")));
    }

    #[test]
    fn issue_display_is_readable() {
        let row = &table6()[0];
        let s = row.to_string();
        assert!(s.contains("Communication"));
        assert!(s.contains("Gradient-exchange"));
    }
}
