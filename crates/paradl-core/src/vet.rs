//! Hostile-input vetting for the query surface.
//!
//! A syntactically valid wire frame can still carry a semantically hostile
//! payload: a model with zero-sized layers, a cluster whose links have NaN
//! bandwidth, a batch size of zero (which would divide by zero in
//! [`crate::config::TrainingConfig::iterations_per_epoch`]), or constraints
//! that ask the exhaustive enumeration for 2^40 candidates. [`Query::vet`]
//! composes the existing per-type `validate` fragments with new
//! [`crate::cluster::ClusterSpec`] / [`Constraints`] / mode checks and an
//! analytic pre-estimate of the candidate-enumeration work, so degenerate
//! specs are refused with a structured [`VetError`] *before* any engine
//! build or search runs.
//!
//! The same `vet` pass runs on both the standalone [`Query::run`] path and
//! the `paradl-serve` daemon's admission path, which is what keeps local and
//! served accept/reject decisions identical (asserted by the `paradl-fuzz`
//! harness).

use crate::cluster::ClusterSpec;
use crate::model::Model;
use crate::oracle::{Constraints, PeSweep};
use crate::query::{Query, QueryMode};

/// Default admission cap on the estimated candidate-enumeration work of a
/// ranked query (see [`Query::vet_with_cap`]). Generous enough for every
/// workload the paper evaluates — the CosmoFlow exhaustive space at 16 Ki
/// PEs is ≈ 226 k candidates — while refusing the astronomically large
/// spaces a hostile `batch`/`max_pes`/`sweep` combination can request.
pub const DEFAULT_CANDIDATE_CAP: u64 = 4_000_000;

/// A structured vetting failure: which field of the query was unacceptable,
/// why, and whether resubmitting the same query could ever succeed.
///
/// `retryable` is `false` for every check in this module — a vet rejection
/// is deterministic, so the daemon classifies it as a non-retryable
/// `BadRequest` and clients should fix the query instead of resending it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VetError {
    /// Dotted path of the offending field, e.g. `"cluster.device.peak_flops"`.
    pub field: String,
    /// Human-readable reason the value was refused.
    pub reason: String,
    /// Whether resubmitting the identical query could succeed. Always
    /// `false` today; carried on the wire so the retry classification
    /// survives future retryable checks (e.g. admission-load caps).
    pub retryable: bool,
}

impl VetError {
    fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        VetError { field: field.into(), reason: reason.into(), retryable: false }
    }
}

impl std::fmt::Display for VetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.field, self.reason)
    }
}

impl std::error::Error for VetError {}

/// A float that must be finite and strictly positive (rates, capacities).
fn finite_positive(field: &str, v: f64) -> Result<(), VetError> {
    if !v.is_finite() {
        return Err(VetError::new(field, format!("must be finite, got {v}")));
    }
    if v <= 0.0 {
        return Err(VetError::new(field, format!("must be positive, got {v}")));
    }
    Ok(())
}

/// A float that must be finite and non-negative (latencies, inverse rates).
fn finite_non_negative(field: &str, v: f64) -> Result<(), VetError> {
    if !v.is_finite() {
        return Err(VetError::new(field, format!("must be finite, got {v}")));
    }
    if v < 0.0 {
        return Err(VetError::new(field, format!("must be non-negative, got {v}")));
    }
    Ok(())
}

/// A count that must be at least one.
fn at_least_one(field: &str, v: usize) -> Result<(), VetError> {
    if v == 0 {
        return Err(VetError::new(field, "must be at least 1"));
    }
    Ok(())
}

/// Vets a cluster specification: non-zero shape, a machine size that does
/// not overflow, and finite, sane link/device rates. [`ClusterSpec`] has no
/// inherent `validate` (the in-process constructors are correct by
/// construction); this is the wire-facing check.
fn vet_cluster(cluster: &ClusterSpec) -> Result<(), VetError> {
    at_least_one("cluster.gpus_per_node", cluster.gpus_per_node)?;
    at_least_one("cluster.nodes_per_rack", cluster.nodes_per_rack)?;
    at_least_one("cluster.racks", cluster.racks)?;
    cluster
        .gpus_per_node
        .checked_mul(cluster.nodes_per_rack)
        .and_then(|n| n.checked_mul(cluster.racks))
        .ok_or_else(|| VetError::new("cluster", "total GPU count overflows"))?;

    let d = &cluster.device;
    finite_positive("cluster.device.peak_flops", d.peak_flops)?;
    finite_positive("cluster.device.conv_efficiency", d.conv_efficiency)?;
    finite_positive("cluster.device.memory_bound_efficiency", d.memory_bound_efficiency)?;
    finite_non_negative("cluster.device.kernel_overhead", d.kernel_overhead)?;
    finite_positive("cluster.device.update_elements_per_sec", d.update_elements_per_sec)?;

    for (name, link) in [
        ("cluster.intra_node", &cluster.intra_node),
        ("cluster.intra_rack", &cluster.intra_rack),
        ("cluster.inter_rack", &cluster.inter_rack),
    ] {
        finite_non_negative(&format!("{name}.alpha"), link.alpha)?;
        finite_non_negative(&format!("{name}.beta"), link.beta)?;
    }
    Ok(())
}

/// Number of PE counts `pe_counts(lo, hi, sweep)` yields — the closed form
/// of the enumeration loop lengths in [`crate::search::StrategySpace`].
fn sweep_len(lo: usize, hi: usize, sweep: PeSweep) -> u64 {
    let lo = lo.max(1);
    if hi < lo {
        return 0;
    }
    match sweep {
        // Counts lo·2^k ≤ hi, matching `powers_of_two(lo, hi)`.
        PeSweep::PowersOfTwo => u64::from((hi / lo).ilog2()) + 1,
        PeSweep::Exhaustive => (hi - lo) as u64 + 1,
    }
}

/// Heuristic fan-out of the per-PE-count spatial factorizations: each
/// spatial PE count expands into its valid `(pw, ph[, pd])` splits. Small
/// in practice (divisor counts of realistic extents); a constant keeps the
/// estimate a cheap upper-ish bound rather than an exact census.
const SPATIAL_FANOUT: u64 = 4;

/// Analytic pre-estimate of the *work* (loop iterations, which also bounds
/// the candidate count) [`crate::search::StrategySpace::with_limits`] would
/// spend enumerating this problem, mirroring its loop structure with
/// saturating arithmetic. Deliberately counts the data+filter /
/// data+spatial outer `p1` loop at its full length: under an exhaustive
/// sweep that loop runs `batch` iterations even when almost no pair
/// survives the `p1·p2 ≤ max_pes` break — the actual DoS vector a huge
/// batch opens.
fn enumeration_work(model: &Model, batch: usize, c: &Constraints) -> u64 {
    let max_pes = c.max_pes.max(1);
    let sweep = c.sweep;
    let min_filters = model.min_filters();
    let min_spatial = model.min_spatial_size();
    let len = |lo: usize, hi: usize| sweep_len(lo, hi, sweep);

    let mut work: u64 = 1; // Serial
    work = work.saturating_add(len(1, max_pes.min(batch))); // Data
    work = work.saturating_add(len(2, max_pes.min(min_spatial)).saturating_mul(SPATIAL_FANOUT));
    work = work.saturating_add(len(2, max_pes.min(min_filters))); // Filter
    work = work.saturating_add(len(2, max_pes.min(model.min_channels_after_first())));
    let seg_cap = c.pipeline_segments.max(1).min(batch);
    work = work
        .saturating_add(len(2, max_pes.min(model.num_layers())).saturating_mul(len(1, seg_cap)));
    // Hybrid enumerations: `batch` outer iterations plus the surviving
    // (p1, p2) pairs, bounded by outer × inner.
    let outer = len(1, batch);
    let inner =
        len(2, min_filters).saturating_add(len(2, min_spatial).saturating_mul(SPATIAL_FANOUT));
    work.saturating_add(outer).saturating_add(outer.saturating_mul(inner.min(max_pes as u64)))
}

impl Query {
    /// Vets a standalone query against the default admission cap
    /// ([`DEFAULT_CANDIDATE_CAP`]); see [`Query::vet_with_cap`].
    pub fn vet(&self) -> Result<(), VetError> {
        self.vet_with_cap(DEFAULT_CANDIDATE_CAP)
    }

    /// Vets a standalone query: presence of the full workload, the
    /// per-type `validate` fragments (model layers, training config),
    /// cluster sanity (non-zero shape, finite positive rates), constraint
    /// and mode sanity, and — for the ranked modes — an analytic
    /// pre-estimate of the enumeration work against `candidate_cap`.
    ///
    /// Runs before any engine build, on both the local [`Query::run`] path
    /// and the serve daemon's admission path, so the two reject identically.
    pub fn vet_with_cap(&self, candidate_cap: u64) -> Result<(), VetError> {
        let model =
            self.model.as_ref().ok_or_else(|| VetError::new("model", "query has no model"))?;
        let config = self.config.ok_or_else(|| VetError::new("config", "query has no config"))?;
        let cluster = self
            .cluster
            .as_ref()
            .ok_or_else(|| VetError::new("cluster", "query has no cluster"))?;

        model.validate().map_err(|e| VetError::new("model", e))?;
        config.validate().map_err(|e| VetError::new("config", format!("invalid config: {e}")))?;
        vet_cluster(cluster)?;

        at_least_one("constraints.max_pes", self.constraints.max_pes)?;
        finite_positive(
            "constraints.memory_capacity_bytes",
            self.constraints.memory_capacity_bytes,
        )?;
        if let QueryMode::Survey { pes } = self.mode {
            // p = 0 divides per-sample times by zero downstream.
            at_least_one("mode.pes", pes)?;
        }

        // Ranked modes enumerate the full candidate space; refuse problems
        // whose enumeration alone would stall the evaluator. (`top_k = 0`
        // and an empty feasible space are fine — they yield typed empty
        // answers — it is the enumeration *work* that must stay bounded.)
        if matches!(self.mode, QueryMode::TopK(_) | QueryMode::FullRank) {
            let constraints = self.effective_constraints();
            let work = enumeration_work(model, config.batch_size, &constraints);
            if work > candidate_cap {
                return Err(VetError::new(
                    "constraints",
                    format!(
                        "candidate enumeration work ≈ {work} exceeds the admission cap \
                         {candidate_cap}; reduce max_pes or batch_size, or use the \
                         powers_of_two sweep"
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::config::TrainingConfig;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "toy",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 64, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 64, (32, 32), 2, 2),
                Layer::global_pool("g", 64, &[16, 16]),
                Layer::fully_connected("fc", 64, 10),
            ],
        )
    }

    fn good() -> Query {
        Query::top_k(5)
            .with_model(model())
            .with_config(TrainingConfig::small(8192, 64))
            .with_cluster(ClusterSpec::paper_system())
    }

    #[test]
    fn a_sane_query_vets_clean() {
        assert_eq!(good().vet(), Ok(()));
    }

    #[test]
    fn missing_workload_parts_name_their_field() {
        assert_eq!(Query::suggest().vet().unwrap_err().field, "model");
        let e = Query::suggest().with_model(model()).vet().unwrap_err();
        assert_eq!(e.field, "config");
        let e = Query::suggest()
            .with_model(model())
            .with_config(TrainingConfig::small(8192, 64))
            .vet()
            .unwrap_err();
        assert_eq!(e.field, "cluster");
    }

    #[test]
    fn vet_rejections_are_never_retryable() {
        let mut q = good();
        q.config = Some(TrainingConfig::small(8, 64));
        let e = q.vet().unwrap_err();
        assert!(!e.retryable);
        assert!(e.to_string().contains("invalid config"), "{e}");
    }

    #[test]
    fn degenerate_clusters_are_refused() {
        let mut q = good();
        let mut cluster = ClusterSpec::paper_system();
        cluster.gpus_per_node = 0;
        q.cluster = Some(cluster.clone());
        assert_eq!(q.vet().unwrap_err().field, "cluster.gpus_per_node");

        cluster.gpus_per_node = usize::MAX;
        cluster.nodes_per_rack = 2;
        q.cluster = Some(cluster.clone());
        assert_eq!(q.vet().unwrap_err().field, "cluster");

        cluster = ClusterSpec::paper_system();
        cluster.device.peak_flops = f64::NAN;
        q.cluster = Some(cluster.clone());
        assert_eq!(q.vet().unwrap_err().field, "cluster.device.peak_flops");

        cluster = ClusterSpec::paper_system();
        cluster.device.peak_flops = 0.0;
        q.cluster = Some(cluster.clone());
        assert!(q.vet().unwrap_err().reason.contains("positive"));

        cluster = ClusterSpec::paper_system();
        cluster.intra_rack.beta = f64::INFINITY;
        q.cluster = Some(cluster);
        assert_eq!(q.vet().unwrap_err().field, "cluster.intra_rack.beta");
    }

    #[test]
    fn hostile_constraints_and_modes_are_refused() {
        let mut q = good();
        q.constraints.max_pes = 0;
        assert_eq!(q.vet().unwrap_err().field, "constraints.max_pes");

        let mut q = good();
        q.constraints.memory_capacity_bytes = f64::NAN;
        assert_eq!(q.vet().unwrap_err().field, "constraints.memory_capacity_bytes");

        let mut q = good().with_mode(QueryMode::Survey { pes: 0 });
        assert_eq!(q.vet().unwrap_err().field, "mode.pes");
        q.mode = QueryMode::Survey { pes: 16 };
        assert_eq!(q.vet(), Ok(()));
    }

    #[test]
    fn enumeration_blowups_hit_the_admission_cap() {
        // Structurally valid but extreme: an exhaustive sweep over a huge
        // batch makes the hybrid p1 loop alone run ~2^40 iterations.
        let mut q = good();
        q.config = Some(TrainingConfig::small(1 << 41, 1 << 40));
        q.constraints.max_pes = usize::MAX;
        q.constraints.sweep = PeSweep::Exhaustive;
        let e = q.vet().unwrap_err();
        assert_eq!(e.field, "constraints");
        assert!(e.reason.contains("admission cap"), "{e}");

        // The same extremes under the powers-of-two sweep are cheap, and
        // non-ranked modes never enumerate — both must pass.
        q.constraints.sweep = PeSweep::PowersOfTwo;
        assert_eq!(q.vet(), Ok(()));
        q.constraints.sweep = PeSweep::Exhaustive;
        q.mode = QueryMode::Suggest;
        assert_eq!(q.vet(), Ok(()));
    }

    #[test]
    fn the_paper_workloads_clear_the_cap_with_room() {
        // The served load-generator workload (ResNet-50-ish shape, batch
        // 1024, exhaustive, 1024 PEs) must be admitted.
        let mut q = good();
        q.config = Some(TrainingConfig::imagenet(1024));
        q.constraints.max_pes = 1024;
        q.constraints.sweep = PeSweep::Exhaustive;
        assert_eq!(q.vet(), Ok(()));
        let work = enumeration_work(q.model.as_ref().unwrap(), 1024, &q.effective_constraints());
        assert!(work < DEFAULT_CANDIDATE_CAP / 2, "estimate {work} leaves no headroom");
    }

    #[test]
    fn sweep_len_matches_the_enumeration_helpers() {
        use crate::scaling::powers_of_two;
        for (lo, hi) in [(1usize, 1usize), (1, 64), (2, 63), (2, 64), (1, 1000), (5, 4)] {
            assert_eq!(
                sweep_len(lo, hi, PeSweep::PowersOfTwo),
                powers_of_two(lo, hi).len() as u64,
                "powers_of_two({lo}, {hi})"
            );
            let exhaustive = (lo.max(1)..=hi).count() as u64;
            assert_eq!(sweep_len(lo, hi, PeSweep::Exhaustive), exhaustive, "({lo}, {hi})");
        }
    }
}
