//! Empirical-parameter substitute: per-layer compute times (`FW_l`, `BW_l`,
//! `WU_l`).
//!
//! The paper profiles the average per-sample forward/backward time of each
//! layer on the target GPU and feeds those numbers to the oracle (§4.4). We
//! do not have the authors' V100 profiles, so this module provides a
//! [`DeviceProfile`] that derives per-layer times analytically from FLOP
//! counts, a peak throughput, per-layer-kind efficiency factors and a fixed
//! kernel-launch overhead. Any other source of per-layer times (e.g. a table
//! loaded from a benchmark database) can be supplied by implementing
//! [`ComputeModel`].

use crate::layer::{Layer, LayerKind};

/// Per-layer compute-time source. Times are **per sample** for forward and
/// backward, and **per iteration** for the weight update, matching the
/// definitions of `FW_l`, `BW_l` and `WU_l` in the paper.
pub trait ComputeModel {
    /// Forward time of `layer` for a single sample, in seconds.
    fn forward_time(&self, layer: &Layer) -> f64;
    /// Backward time of `layer` for a single sample, in seconds.
    fn backward_time(&self, layer: &Layer) -> f64;
    /// Weight-update time of `layer` for one iteration, in seconds.
    fn weight_update_time(&self, layer: &Layer) -> f64;

    /// Forward time when only a `fraction` (0, 1] of the layer's work is
    /// assigned to this PE (model-parallel splits). The default divides the
    /// arithmetic part and keeps the fixed overhead, which captures the
    /// "convolution does not scale perfectly" effect the paper observes
    /// (Figure 8).
    fn forward_time_split(&self, layer: &Layer, fraction: f64) -> f64 {
        self.forward_time(layer) * fraction
    }

    /// Backward analogue of [`ComputeModel::forward_time_split`].
    fn backward_time_split(&self, layer: &Layer, fraction: f64) -> f64 {
        self.backward_time(layer) * fraction
    }
}

/// Analytical device profile: `time = FLOPs / (peak · efficiency(kind)) +
/// overhead`. The efficiency factors default to values representative of
/// cuDNN-era GPU kernels (convolutions near peak, memory-bound layers far
/// below it).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Peak throughput in FLOP/s (e.g. 15.7e12 for V100 FP32, 125e12 for
    /// tensor-core FP16).
    pub peak_flops: f64,
    /// Efficiency of convolution / FC kernels relative to peak.
    pub conv_efficiency: f64,
    /// Efficiency of memory-bound layers (pooling, ReLU, BN, add).
    pub memory_bound_efficiency: f64,
    /// Fixed per-layer kernel-launch overhead in seconds.
    pub kernel_overhead: f64,
    /// Weight-update throughput in elements/s (SGD is memory-bound).
    pub update_elements_per_sec: f64,
}

impl DeviceProfile {
    /// A profile representative of a single NVIDIA V100 (the paper's GPU):
    /// 15.7 TFLOP/s FP32 peak, convolutions at ~55% of peak, memory-bound
    /// layers at ~5%, 5 µs launch overhead, 30 G updated weights/s.
    pub fn v100() -> Self {
        DeviceProfile {
            peak_flops: 15.7e12,
            conv_efficiency: 0.55,
            memory_bound_efficiency: 0.05,
            kernel_overhead: 5e-6,
            update_elements_per_sec: 30e9,
        }
    }

    /// A deliberately slow profile useful in tests (1 GFLOP/s, no overhead).
    pub fn reference_cpu() -> Self {
        DeviceProfile {
            peak_flops: 1e9,
            conv_efficiency: 1.0,
            memory_bound_efficiency: 1.0,
            kernel_overhead: 0.0,
            update_elements_per_sec: 1e9,
        }
    }

    fn efficiency(&self, kind: LayerKind) -> f64 {
        match kind {
            LayerKind::Conv | LayerKind::FullyConnected => self.conv_efficiency,
            _ => self.memory_bound_efficiency,
        }
    }
}

impl ComputeModel for DeviceProfile {
    fn forward_time(&self, layer: &Layer) -> f64 {
        let eff = self.efficiency(layer.kind).max(1e-6);
        layer.flops_forward() as f64 / (self.peak_flops * eff) + self.kernel_overhead
    }

    fn backward_time(&self, layer: &Layer) -> f64 {
        let eff = self.efficiency(layer.kind).max(1e-6);
        layer.flops_backward() as f64 / (self.peak_flops * eff) + self.kernel_overhead
    }

    fn weight_update_time(&self, layer: &Layer) -> f64 {
        if layer.param_count() == 0 {
            return 0.0;
        }
        layer.param_count() as f64 / self.update_elements_per_sec + self.kernel_overhead
    }

    fn forward_time_split(&self, layer: &Layer, fraction: f64) -> f64 {
        let eff = self.efficiency(layer.kind).max(1e-6);
        layer.flops_forward() as f64 * fraction / (self.peak_flops * eff) + self.kernel_overhead
    }

    fn backward_time_split(&self, layer: &Layer, fraction: f64) -> f64 {
        let eff = self.efficiency(layer.kind).max(1e-6);
        layer.flops_backward() as f64 * fraction / (self.peak_flops * eff) + self.kernel_overhead
    }
}

/// Per-layer compute times tabulated once from a [`ComputeModel`], so hot
/// paths (the search's [`crate::engine::CostEngine`]) can read them as plain
/// array lookups instead of re-deriving FLOP counts and efficiencies for
/// every candidate strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTimes {
    /// `FW_l`: per-sample forward time of each layer, in seconds.
    pub forward: Vec<f64>,
    /// `BW_l`: per-sample backward time of each layer, in seconds.
    pub backward: Vec<f64>,
    /// `WU_l`: per-iteration weight-update time of each layer, in seconds.
    pub weight_update: Vec<f64>,
}

impl LayerTimes {
    /// Evaluates `device` once per layer of `model` and stores the results.
    pub fn tabulate<C: ComputeModel + ?Sized>(model: &crate::model::Model, device: &C) -> Self {
        LayerTimes {
            forward: model.layers.iter().map(|l| device.forward_time(l)).collect(),
            backward: model.layers.iter().map(|l| device.backward_time(l)).collect(),
            weight_update: model.layers.iter().map(|l| device.weight_update_time(l)).collect(),
        }
    }

    /// `Σ_l (FW_l + BW_l)`: forward+backward time of one sample through the
    /// whole model (summed in layer order, matching the direct cost model).
    pub fn fw_bw_per_sample(&self) -> f64 {
        self.forward.iter().zip(&self.backward).map(|(f, b)| f + b).sum()
    }

    /// `Σ_l WU_l`: weight-update time of one iteration for the whole model.
    pub fn wu_per_iteration(&self) -> f64 {
        self.weight_update.iter().sum()
    }
}

/// A compute model backed by an explicit per-layer table of measured times,
/// mirroring the paper's empirical parametrization. Falls back to an inner
/// analytical profile for layers missing from the table.
#[derive(Debug, Clone)]
pub struct TabulatedProfile {
    /// Measured `(forward, backward, weight-update)` seconds per layer name.
    pub entries: std::collections::HashMap<String, (f64, f64, f64)>,
    /// Fallback profile for layers without an entry.
    pub fallback: DeviceProfile,
}

impl TabulatedProfile {
    /// Creates an empty table with the given fallback.
    pub fn new(fallback: DeviceProfile) -> Self {
        TabulatedProfile { entries: std::collections::HashMap::new(), fallback }
    }

    /// Records a measured entry for `layer_name`.
    pub fn insert(&mut self, layer_name: impl Into<String>, fw: f64, bw: f64, wu: f64) {
        self.entries.insert(layer_name.into(), (fw, bw, wu));
    }
}

impl ComputeModel for TabulatedProfile {
    fn forward_time(&self, layer: &Layer) -> f64 {
        self.entries
            .get(&layer.name)
            .map(|e| e.0)
            .unwrap_or_else(|| self.fallback.forward_time(layer))
    }

    fn backward_time(&self, layer: &Layer) -> f64 {
        self.entries
            .get(&layer.name)
            .map(|e| e.1)
            .unwrap_or_else(|| self.fallback.backward_time(layer))
    }

    fn weight_update_time(&self, layer: &Layer) -> f64 {
        self.entries
            .get(&layer.name)
            .map(|e| e.2)
            .unwrap_or_else(|| self.fallback.weight_update_time(layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_time_scales_with_flops() {
        let p = DeviceProfile::reference_cpu();
        let small = Layer::conv2d("s", 8, 8, (16, 16), 3, 1, 1);
        let large = Layer::conv2d("l", 64, 64, (16, 16), 3, 1, 1);
        assert!(p.forward_time(&large) > p.forward_time(&small));
        // With unit efficiency and no overhead the ratio equals the FLOP ratio.
        let ratio = p.forward_time(&large) / p.forward_time(&small);
        let flop_ratio = large.flops_forward() as f64 / small.flops_forward() as f64;
        assert!((ratio - flop_ratio).abs() < 1e-9);
    }

    #[test]
    fn backward_costs_more_than_forward_for_conv() {
        let p = DeviceProfile::v100();
        let l = Layer::conv2d("c", 64, 64, (56, 56), 3, 1, 1);
        assert!(p.backward_time(&l) > p.forward_time(&l));
    }

    #[test]
    fn weight_update_zero_for_weightless_layers() {
        let p = DeviceProfile::v100();
        let r = Layer::relu("r", 64, &[56, 56]);
        assert_eq!(p.weight_update_time(&r), 0.0);
        let c = Layer::conv2d("c", 64, 64, (56, 56), 3, 1, 1);
        assert!(p.weight_update_time(&c) > 0.0);
    }

    #[test]
    fn split_time_keeps_kernel_overhead() {
        let p = DeviceProfile::v100();
        let l = Layer::conv2d("c", 64, 128, (56, 56), 3, 1, 1);
        let full = p.forward_time(&l);
        let half = p.forward_time_split(&l, 0.5);
        // Splitting halves the arithmetic but not the overhead.
        assert!(half > full / 2.0);
        assert!(half < full);
    }

    #[test]
    fn tabulated_profile_prefers_measurements() {
        let mut t = TabulatedProfile::new(DeviceProfile::v100());
        let l = Layer::conv2d("conv1", 3, 64, (224, 224), 7, 2, 3);
        t.insert("conv1", 1.0, 2.0, 0.5);
        assert_eq!(t.forward_time(&l), 1.0);
        assert_eq!(t.backward_time(&l), 2.0);
        assert_eq!(t.weight_update_time(&l), 0.5);
        let other = Layer::conv2d("conv2", 64, 64, (56, 56), 3, 1, 1);
        assert!(t.forward_time(&other) > 0.0);
    }
}
