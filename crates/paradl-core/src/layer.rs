//! Layer and tensor-shape notation (paper Table 2).
//!
//! A CNN model is a sequence of [`Layer`]s. Each layer `l` is described by the
//! shapes of its tensors:
//!
//! * input `x_l[N, C_l, X^d_l]` — `N` samples, `C_l` channels, a `d`-dimensional
//!   spatial tuple `X^d_l` (e.g. `W_l × H_l` for 2-D convolutions),
//! * output (activation) `y_l[N, F_l, Y^d_l]`,
//! * weight `w_l[C_l, F_l, K^d_l]` and bias `bi_l[F_l]`,
//! * gradients `dL/dy_l`, `dL/dw_l`, `dL/dx_l` with matching shapes.
//!
//! Non-convolution layers are expressed with the same notation, exactly as in
//! the paper: a fully-connected layer is a convolution whose kernel equals the
//! input spatial size; element-wise layers (ReLU) have `F = C` and no weights;
//! channel-wise layers (pooling, batch-norm) keep `F = C`.

use std::fmt;

/// Kind of a CNN layer. The analytical model only needs the tensor shapes and
/// the arithmetic-intensity class, both captured here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// d-dimensional convolution with weights `[C, F, K^d]`.
    Conv,
    /// Spatial pooling (max or average); channel-wise, no weights.
    Pool,
    /// Batch normalization; channel-wise, 2 learnable vectors of length `F`.
    BatchNorm,
    /// Element-wise activation; no weights, `F = C`.
    ReLU,
    /// Fully-connected layer expressed as a convolution with kernel = input
    /// spatial size, producing a `[N, F, 1]` output.
    FullyConnected,
    /// Element-wise residual addition of two equally-shaped activations.
    Add,
    /// Global average pooling reducing the spatial dimensions to `1`.
    GlobalPool,
}

impl LayerKind {
    /// Whether the layer carries learnable weights that participate in the
    /// gradient exchange.
    pub fn has_weights(self) -> bool {
        matches!(self, LayerKind::Conv | LayerKind::FullyConnected | LayerKind::BatchNorm)
    }

    /// Whether the layer is a convolution-like operator whose filters can be
    /// split by the filter/channel strategies.
    pub fn is_conv_like(self) -> bool {
        matches!(self, LayerKind::Conv | LayerKind::FullyConnected)
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv => "conv",
            LayerKind::Pool => "pool",
            LayerKind::BatchNorm => "bnorm",
            LayerKind::ReLU => "relu",
            LayerKind::FullyConnected => "fc",
            LayerKind::Add => "add",
            LayerKind::GlobalPool => "gpool",
        };
        f.write_str(s)
    }
}

/// A single layer of a CNN, described per-sample (the batch dimension `N` is
/// supplied by the training configuration, not stored here).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable name, e.g. `conv2_1`.
    pub name: String,
    /// Operator class.
    pub kind: LayerKind,
    /// Input channels `C_l`.
    pub in_channels: usize,
    /// Output channels `F_l` (filters).
    pub out_channels: usize,
    /// Input spatial extents `X^d_l` (length = spatial dimensionality `d`).
    pub in_spatial: Vec<usize>,
    /// Kernel extents `K^d_l` (same length as `in_spatial`; empty or all-1 for
    /// layers without a spatial kernel).
    pub kernel: Vec<usize>,
    /// Stride per spatial dimension.
    pub stride: Vec<usize>,
    /// Zero padding per spatial dimension (symmetric).
    pub padding: Vec<usize>,
}

impl Layer {
    /// 2-D convolution layer constructor.
    pub fn conv2d(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        in_hw: (usize, usize),
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Conv,
            in_channels,
            out_channels,
            in_spatial: vec![in_hw.0, in_hw.1],
            kernel: vec![kernel, kernel],
            stride: vec![stride, stride],
            padding: vec![padding, padding],
        }
    }

    /// 3-D convolution layer constructor (e.g. CosmoFlow).
    pub fn conv3d(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        in_dhw: (usize, usize, usize),
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Conv,
            in_channels,
            out_channels,
            in_spatial: vec![in_dhw.0, in_dhw.1, in_dhw.2],
            kernel: vec![kernel; 3],
            stride: vec![stride; 3],
            padding: vec![padding; 3],
        }
    }

    /// 2-D pooling layer constructor.
    pub fn pool2d(
        name: impl Into<String>,
        channels: usize,
        in_hw: (usize, usize),
        kernel: usize,
        stride: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            in_channels: channels,
            out_channels: channels,
            in_spatial: vec![in_hw.0, in_hw.1],
            kernel: vec![kernel, kernel],
            stride: vec![stride, stride],
            padding: vec![0, 0],
        }
    }

    /// 3-D pooling layer constructor.
    pub fn pool3d(
        name: impl Into<String>,
        channels: usize,
        in_dhw: (usize, usize, usize),
        kernel: usize,
        stride: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            in_channels: channels,
            out_channels: channels,
            in_spatial: vec![in_dhw.0, in_dhw.1, in_dhw.2],
            kernel: vec![kernel; 3],
            stride: vec![stride; 3],
            padding: vec![0; 3],
        }
    }

    /// Batch-normalization layer over `channels` feature maps.
    pub fn batch_norm(name: impl Into<String>, channels: usize, spatial: &[usize]) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::BatchNorm,
            in_channels: channels,
            out_channels: channels,
            in_spatial: spatial.to_vec(),
            kernel: vec![1; spatial.len()],
            stride: vec![1; spatial.len()],
            padding: vec![0; spatial.len()],
        }
    }

    /// Element-wise ReLU.
    pub fn relu(name: impl Into<String>, channels: usize, spatial: &[usize]) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::ReLU,
            in_channels: channels,
            out_channels: channels,
            in_spatial: spatial.to_vec(),
            kernel: vec![1; spatial.len()],
            stride: vec![1; spatial.len()],
            padding: vec![0; spatial.len()],
        }
    }

    /// Fully-connected layer from a flattened `in_features` input to
    /// `out_features` outputs. Expressed as a convolution whose kernel covers
    /// the whole input (paper §2.2).
    pub fn fully_connected(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            in_channels: in_features,
            out_channels: out_features,
            in_spatial: vec![1],
            kernel: vec![1],
            stride: vec![1],
            padding: vec![0],
        }
    }

    /// Residual addition of two activations of identical shape.
    pub fn add(name: impl Into<String>, channels: usize, spatial: &[usize]) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Add,
            in_channels: channels,
            out_channels: channels,
            in_spatial: spatial.to_vec(),
            kernel: vec![1; spatial.len()],
            stride: vec![1; spatial.len()],
            padding: vec![0; spatial.len()],
        }
    }

    /// Global average pooling collapsing the spatial dimensions.
    pub fn global_pool(name: impl Into<String>, channels: usize, spatial: &[usize]) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::GlobalPool,
            in_channels: channels,
            out_channels: channels,
            in_spatial: spatial.to_vec(),
            kernel: spatial.to_vec(),
            stride: vec![1; spatial.len()],
            padding: vec![0; spatial.len()],
        }
    }

    /// Spatial dimensionality `d` of the layer.
    pub fn spatial_dims(&self) -> usize {
        self.in_spatial.len()
    }

    /// Output spatial extents `Y^d_l` derived from input, kernel, stride and
    /// padding with the usual convolution arithmetic
    /// `Y = (X + 2·pad − K) / stride + 1`.
    pub fn out_spatial(&self) -> Vec<usize> {
        match self.kind {
            LayerKind::FullyConnected => vec![1],
            LayerKind::GlobalPool => vec![1; self.in_spatial.len()],
            LayerKind::ReLU | LayerKind::BatchNorm | LayerKind::Add => self.in_spatial.clone(),
            LayerKind::Conv | LayerKind::Pool => self
                .in_spatial
                .iter()
                .zip(self.kernel.iter())
                .zip(self.stride.iter().zip(self.padding.iter()))
                .map(|((&x, &k), (&s, &p))| {
                    let padded = x + 2 * p;
                    if padded < k {
                        1
                    } else {
                        (padded - k) / s + 1
                    }
                })
                .collect(),
        }
    }

    /// `|X^d_l|`: number of elements in one input channel.
    pub fn in_spatial_size(&self) -> usize {
        self.in_spatial.iter().product()
    }

    /// `|Y^d_l|`: number of elements in one output channel.
    pub fn out_spatial_size(&self) -> usize {
        self.out_spatial().iter().product()
    }

    /// `|x_l|` per sample: `C_l · |X^d_l|`.
    pub fn input_size(&self) -> usize {
        match self.kind {
            LayerKind::FullyConnected => self.in_channels,
            _ => self.in_channels * self.in_spatial_size(),
        }
    }

    /// `|y_l|` per sample: `F_l · |Y^d_l|`.
    pub fn output_size(&self) -> usize {
        match self.kind {
            LayerKind::FullyConnected => self.out_channels,
            _ => self.out_channels * self.out_spatial_size(),
        }
    }

    /// `|w_l|`: number of weight elements.
    pub fn weight_count(&self) -> usize {
        match self.kind {
            LayerKind::Conv => {
                self.in_channels * self.out_channels * self.kernel.iter().product::<usize>()
            }
            LayerKind::FullyConnected => self.in_channels * self.out_channels,
            // Scale and shift vectors.
            LayerKind::BatchNorm => 2 * self.out_channels,
            _ => 0,
        }
    }

    /// `|bi_l|`: number of bias elements.
    pub fn bias_count(&self) -> usize {
        match self.kind {
            LayerKind::Conv | LayerKind::FullyConnected => self.out_channels,
            _ => 0,
        }
    }

    /// Trainable parameters of the layer (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weight_count() + self.bias_count()
    }

    /// Forward-pass floating point operations for one sample.
    ///
    /// Convolutions cost `2·K^d·C·F·|Y|` MACs-as-FLOPs; FC costs `2·C·F`;
    /// the remaining layers are a small constant per activation element.
    pub fn flops_forward(&self) -> u64 {
        let out = self.out_spatial_size() as u64;
        match self.kind {
            LayerKind::Conv => {
                2 * self.kernel.iter().product::<usize>() as u64
                    * self.in_channels as u64
                    * self.out_channels as u64
                    * out
            }
            LayerKind::FullyConnected => 2 * self.in_channels as u64 * self.out_channels as u64,
            LayerKind::Pool => {
                self.kernel.iter().product::<usize>() as u64 * self.out_channels as u64 * out
            }
            LayerKind::BatchNorm => 4 * self.out_channels as u64 * out,
            LayerKind::ReLU | LayerKind::Add => self.out_channels as u64 * out,
            LayerKind::GlobalPool => self.in_channels as u64 * self.in_spatial_size() as u64,
        }
    }

    /// Backward-pass FLOPs for one sample (gradient w.r.t. data plus gradient
    /// w.r.t. weights); roughly twice the forward cost for conv-like layers.
    pub fn flops_backward(&self) -> u64 {
        match self.kind {
            LayerKind::Conv | LayerKind::FullyConnected => 2 * self.flops_forward(),
            _ => self.flops_forward(),
        }
    }

    /// Weight-update FLOPs per iteration (SGD: one multiply-add per weight).
    pub fn flops_weight_update(&self) -> u64 {
        2 * self.param_count() as u64
    }

    /// Size (elements) of the halo region that must be exchanged per sample
    /// when the spatial dimensions are split over `splits` parts per
    /// dimension (paper §3.2). A convolution with kernel `K` needs
    /// `⌊K/2⌋` rows/columns from each logically-neighbouring partition; the
    /// exchanged volume is the cross-section of the tensor orthogonal to each
    /// split dimension times the halo width times the number of interior
    /// boundaries.
    pub fn halo_size(&self, splits: &[usize]) -> usize {
        if !matches!(self.kind, LayerKind::Conv | LayerKind::Pool) {
            return 0;
        }
        let d = self.spatial_dims();
        let mut total = 0usize;
        for dim in 0..d {
            let parts = splits.get(dim).copied().unwrap_or(1);
            if parts <= 1 {
                continue;
            }
            let k = self.kernel.get(dim).copied().unwrap_or(1);
            if k <= 1 {
                continue;
            }
            let halo_width = k / 2;
            // Cross-section: product of the other spatial extents.
            let cross: usize = self
                .in_spatial
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != dim)
                .map(|(_, &x)| x)
                .product();
            total += self.in_channels * halo_width * cross;
        }
        total
    }

    /// Checks internal consistency (matching vector lengths, non-zero dims).
    pub fn validate(&self) -> Result<(), String> {
        let d = self.in_spatial.len();
        if d == 0 {
            return Err(format!("layer {}: empty spatial shape", self.name));
        }
        if self.kernel.len() != d || self.stride.len() != d || self.padding.len() != d {
            return Err(format!(
                "layer {}: kernel/stride/padding rank mismatch (spatial d={d})",
                self.name
            ));
        }
        if self.in_channels == 0 || self.out_channels == 0 {
            return Err(format!("layer {}: zero channel count", self.name));
        }
        if self.in_spatial.contains(&0) {
            return Err(format!("layer {}: zero spatial extent", self.name));
        }
        if self.stride.contains(&0) {
            return Err(format!("layer {}: zero stride", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_output_shape_matches_formula() {
        let l = Layer::conv2d("c1", 3, 64, (224, 224), 3, 1, 1);
        assert_eq!(l.out_spatial(), vec![224, 224]);
        let l = Layer::conv2d("c2", 64, 128, (224, 224), 3, 2, 1);
        assert_eq!(l.out_spatial(), vec![112, 112]);
        let l = Layer::conv2d("c3", 3, 64, (227, 227), 11, 4, 0);
        assert_eq!(l.out_spatial(), vec![55, 55]);
    }

    #[test]
    fn conv3d_output_shape() {
        let l = Layer::conv3d("c3d", 4, 16, (128, 128, 128), 3, 1, 1);
        assert_eq!(l.out_spatial(), vec![128, 128, 128]);
        assert_eq!(l.spatial_dims(), 3);
    }

    #[test]
    fn pooling_halves_spatial() {
        let l = Layer::pool2d("p1", 64, (112, 112), 2, 2);
        assert_eq!(l.out_spatial(), vec![56, 56]);
        assert_eq!(l.weight_count(), 0);
        assert_eq!(l.param_count(), 0);
    }

    #[test]
    fn fc_as_convolution() {
        let l = Layer::fully_connected("fc", 4096, 1000);
        assert_eq!(l.output_size(), 1000);
        assert_eq!(l.input_size(), 4096);
        assert_eq!(l.weight_count(), 4096 * 1000);
        assert_eq!(l.bias_count(), 1000);
    }

    #[test]
    fn conv_param_count() {
        // 3x3 conv, 64 -> 128 channels: 64*128*9 weights + 128 biases.
        let l = Layer::conv2d("c", 64, 128, (56, 56), 3, 1, 1);
        assert_eq!(l.weight_count(), 64 * 128 * 9);
        assert_eq!(l.param_count(), 64 * 128 * 9 + 128);
    }

    #[test]
    fn relu_and_bn_preserve_shape_and_have_expected_params() {
        let r = Layer::relu("r", 256, &[28, 28]);
        assert_eq!(r.output_size(), 256 * 28 * 28);
        assert_eq!(r.param_count(), 0);
        let b = Layer::batch_norm("b", 256, &[28, 28]);
        assert_eq!(b.output_size(), 256 * 28 * 28);
        assert_eq!(b.param_count(), 512);
    }

    #[test]
    fn conv_flops_match_hand_calculation() {
        // 3x3, C=64, F=64, out 56x56 -> 2*9*64*64*3136
        let l = Layer::conv2d("c", 64, 64, (56, 56), 3, 1, 1);
        assert_eq!(l.flops_forward(), 2 * 9 * 64 * 64 * 56 * 56);
        assert_eq!(l.flops_backward(), 2 * l.flops_forward());
    }

    #[test]
    #[allow(clippy::identity_op)] // the 1 spells out the K/2 halo-width factor
    fn halo_size_for_spatial_split() {
        // Split W into 2 parts: halo = C * (K/2) * H per boundary-facing side.
        let l = Layer::conv2d("c", 3, 64, (224, 224), 3, 1, 1);
        let halo = l.halo_size(&[2, 1]);
        assert_eq!(halo, 3 * 1 * 224);
        // 1x1 convolution needs no halo.
        let l1 = Layer::conv2d("c1", 64, 64, (56, 56), 1, 1, 0);
        assert_eq!(l1.halo_size(&[2, 2]), 0);
        // ReLU never needs a halo.
        let r = Layer::relu("r", 8, &[10, 10]);
        assert_eq!(r.halo_size(&[2, 2]), 0);
    }

    #[test]
    fn global_pool_collapses_spatial() {
        let g = Layer::global_pool("g", 2048, &[7, 7]);
        assert_eq!(g.out_spatial(), vec![1, 1]);
        assert_eq!(g.output_size(), 2048);
    }

    #[test]
    fn validation_catches_bad_layers() {
        let mut l = Layer::conv2d("c", 3, 64, (224, 224), 3, 1, 1);
        l.stride = vec![0, 1];
        assert!(l.validate().is_err());
        let mut l2 = Layer::conv2d("c", 3, 64, (224, 224), 3, 1, 1);
        l2.kernel = vec![3];
        assert!(l2.validate().is_err());
        let ok = Layer::conv2d("c", 3, 64, (224, 224), 3, 1, 1);
        assert!(ok.validate().is_ok());
    }
}
