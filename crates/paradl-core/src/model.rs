//! CNN model description: an ordered list of [`Layer`]s plus the dataset
//! input shape, with aggregate queries used by the cost model (total
//! parameters, total activation size, per-layer iteration helpers).

use crate::layer::{Layer, LayerKind};

/// A CNN model as seen by the oracle: an ordered sequence of layers applied to
/// an input of `input_channels × input_spatial` per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Human-readable model name, e.g. `ResNet-50`.
    pub name: String,
    /// Channels of the dataset sample (3 for ImageNet, 4 for CosmoFlow).
    pub input_channels: usize,
    /// Spatial extents of the dataset sample.
    pub input_spatial: Vec<usize>,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Creates a model; the layer list must be non-empty and self-consistent.
    pub fn new(
        name: impl Into<String>,
        input_channels: usize,
        input_spatial: Vec<usize>,
        layers: Vec<Layer>,
    ) -> Self {
        Model { name: name.into(), input_channels, input_spatial, layers }
    }

    /// Number of layers `G`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters `Σ_l (|w_l| + |bi_l|)`.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total weight elements `Σ_l |w_l|` (the buffer exchanged by the
    /// gradient-exchange Allreduce).
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Total activation elements per sample `Σ_l |y_l|`.
    pub fn total_activations(&self) -> usize {
        self.layers.iter().map(|l| l.output_size()).sum()
    }

    /// Total input elements per sample `Σ_l |x_l|`.
    pub fn total_inputs(&self) -> usize {
        self.layers.iter().map(|l| l.input_size()).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn total_flops_forward(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_forward()).sum()
    }

    /// Total backward FLOPs per sample.
    pub fn total_flops_backward(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_backward()).sum()
    }

    /// Minimum number of filters over conv-like layers — the scaling limit of
    /// filter parallelism (`p ≤ min_l F_l`, paper Table 3).
    pub fn min_filters(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.kind.is_conv_like())
            .map(|l| l.out_channels)
            .min()
            .unwrap_or(1)
    }

    /// Minimum number of input channels over conv-like layers — the scaling
    /// limit of channel parallelism. The paper notes the first layer (3
    /// channels for ImageNet) is excluded because channel parallelism is
    /// applied from the second layer; we expose both variants.
    pub fn min_channels(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.kind.is_conv_like())
            .map(|l| l.in_channels)
            .min()
            .unwrap_or(1)
    }

    /// Minimum input channels excluding the first conv layer (paper §4.5.1:
    /// channel parallelism is implemented from the second layer on).
    pub fn min_channels_after_first(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.kind.is_conv_like())
            .skip(1)
            .map(|l| l.in_channels)
            .min()
            .unwrap_or_else(|| self.min_channels())
    }

    /// Minimum spatial plane size `min_l (W_l × H_l)` — the scaling limit of
    /// spatial parallelism.
    pub fn min_spatial_size(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv | LayerKind::Pool))
            .map(|l| l.in_spatial_size())
            .min()
            .unwrap_or(1)
    }

    /// Per-dimension minimum spatial extents over the conv/pool layers, in
    /// the same dimension order as [`Model::input_spatial`]. Bounds each
    /// factor of a spatial split: splitting a dimension into more parts than
    /// its smallest extent is physically impossible. Falls back to
    /// `input_spatial` when the model has no conv/pool layers.
    pub fn min_spatial_extents(&self) -> Vec<usize> {
        let rank = self.input_spatial.len();
        let mut mins = self.input_spatial.clone();
        for layer in
            self.layers.iter().filter(|l| matches!(l.kind, LayerKind::Conv | LayerKind::Pool))
        {
            for (dim, &extent) in layer.in_spatial.iter().take(rank).enumerate() {
                mins[dim] = mins[dim].min(extent);
            }
        }
        mins
    }

    /// Layers that carry weights (participate in gradient exchange).
    pub fn weighted_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.kind.has_weights())
    }

    /// Validates every layer and the chaining of activation shapes where the
    /// model is a simple chain (residual `Add` layers are allowed to break
    /// strict chaining since they merge a skip connection).
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err(format!("model {}: no layers", self.name));
        }
        for l in &self.layers {
            l.validate().map_err(|e| format!("model {}: {e}", self.name))?;
        }
        Ok(())
    }

    /// Splits the layer list into `p` contiguous groups whose forward FLOPs
    /// are as balanced as possible (greedy prefix partitioning). Used by the
    /// pipeline strategy. Returns the layer-index ranges of each group.
    pub fn balanced_pipeline_groups(&self, p: usize) -> Vec<std::ops::Range<usize>> {
        assert!(p >= 1);
        let p = p.min(self.layers.len());
        let total: u64 = self.layers.iter().map(|l| l.flops_forward() + l.flops_backward()).sum();
        let target = total as f64 / p as f64;
        let mut groups = Vec::with_capacity(p);
        let mut start = 0usize;
        let mut acc = 0f64;
        for (i, l) in self.layers.iter().enumerate() {
            acc += (l.flops_forward() + l.flops_backward()) as f64;
            let remaining_groups = p - groups.len();
            let remaining_layers = self.layers.len() - i - 1;
            // Close the group when we reach the target, but always leave at
            // least one layer per remaining group.
            if groups.len() < p - 1 && (acc >= target || remaining_layers < (remaining_groups - 1))
            {
                groups.push(start..i + 1);
                start = i + 1;
                acc = 0.0;
            }
        }
        groups.push(start..self.layers.len());
        debug_assert_eq!(groups.len(), p);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> Model {
        let l1 = Layer::conv2d("conv1", 3, 8, (32, 32), 3, 1, 1);
        let l2 = Layer::relu("relu1", 8, &[32, 32]);
        let l3 = Layer::pool2d("pool1", 8, (32, 32), 2, 2);
        let l4 = Layer::conv2d("conv2", 8, 16, (16, 16), 3, 1, 1);
        let l5 = Layer::global_pool("gpool", 16, &[16, 16]);
        let l6 = Layer::fully_connected("fc", 16, 10);
        Model::new("tiny", 3, vec![32, 32], vec![l1, l2, l3, l4, l5, l6])
    }

    #[test]
    #[allow(clippy::identity_op)] // zeros spell out the parameter-free layers
    fn aggregate_counts() {
        let m = tiny_model();
        assert_eq!(m.num_layers(), 6);
        let expected_params = (3 * 8 * 9 + 8) + 0 + 0 + (8 * 16 * 9 + 16) + 0 + (16 * 10 + 10);
        assert_eq!(m.total_params(), expected_params);
        assert!(m.total_activations() > 0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn scaling_limits() {
        let m = tiny_model();
        assert_eq!(m.min_filters(), 8); // conv1 has 8 filters, fc has 10
        assert_eq!(m.min_channels(), 3);
        assert_eq!(m.min_channels_after_first(), 8);
        assert_eq!(m.min_spatial_size(), 16 * 16);
    }

    #[test]
    fn pipeline_groups_cover_all_layers_and_are_contiguous() {
        let m = tiny_model();
        for p in 1..=4 {
            let groups = m.balanced_pipeline_groups(p);
            assert_eq!(groups.len(), p.min(m.num_layers()));
            assert_eq!(groups[0].start, 0);
            assert_eq!(groups.last().unwrap().end, m.num_layers());
            for w in groups.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn pipeline_groups_more_than_layers_clamps() {
        let m = tiny_model();
        let groups = m.balanced_pipeline_groups(100);
        assert_eq!(groups.len(), m.num_layers());
    }

    #[test]
    fn empty_model_rejected() {
        let m = Model::new("empty", 3, vec![224, 224], vec![]);
        assert!(m.validate().is_err());
    }
}
