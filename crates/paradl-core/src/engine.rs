//! Precomputed cost engine: the search hot path of the oracle.
//!
//! The reference cost model in [`crate::cost`] and [`crate::memory`] re-walks
//! every layer of the model for every candidate strategy — `O(layers)` work
//! plus several short-lived allocations per candidate. An exhaustive search
//! over tens of thousands of candidates therefore pays
//! `O(candidates × layers)` even though almost all of that arithmetic is
//! identical between candidates.
//!
//! [`CostEngine`] precomputes, once per (model, device, cluster, config)
//! problem, every model-dependent table the cost formulas need. The tables
//! fall into two classes, and the split is **load-bearing** for
//! [`CostEngine::rebatch`] (which rewrites only the second class when the
//! global batch changes, e.g. across the cells of a
//! [`crate::grid::QueryGrid`]):
//!
//! **Batch-invariant** (held in one [`std::sync::Arc`]-shared core, so
//! rebatched siblings of an engine share it without copying):
//!
//! * per-layer `FW`/`BW`/`WU` times ([`LayerTimes`]) and their totals — the
//!   device model is only a function of layer shapes,
//! * activation/weight/bias element totals for the memory model (the batch
//!   factor is applied at query time),
//! * per-pipeline-depth aggregates for every `p ≤ G`: bottleneck stage
//!   times, boundary activation sizes, and the per-stage memory split into
//!   `(activation, static)` element pairs — the balanced grouping depends
//!   only on per-layer FLOPs, never on the batch,
//! * halo-exchange aggregates per split-dimension mask (which of the ≤ 3
//!   spatial dimensions are split — the only thing the halo volume depends
//!   on),
//! * memoized collective-time building blocks keyed by communicator size for
//!   the gradient-exchange Allreduce of the data, spatial, data+filter and
//!   data+spatial strategies — derived from the topology tables of a
//!   [`ClusterCache`] that can itself be `Arc`-shared between every engine
//!   on the same cluster ([`CostEngine::with_cache`]),
//! * the model's scaling-limit table ([`ModelLimits`]) used by candidate
//!   enumeration and validation,
//! * the per-candidate communication coefficients ([`CommCoef`], from
//!   [`CostEngine::comm_prep`]): every batch-dependent communication term
//!   of the cost model is written in batch-last form
//!   `fixed + batch · per_sample`, so four stored scalars per candidate
//!   let [`CostEngine::comm_time_prepped`] reconstruct the *exact*
//!   communication time of any batch with a couple of fused
//!   multiply-adds — no collective-model derivation, and no division, in
//!   the grid kernel's hot loop. The grid sweep tabulates one coefficient
//!   column per (model, cluster) pair and reuses it across every batch
//!   cell.
//!
//! **Batch-dependent** (rewritten in place by [`CostEngine::rebatch`],
//! `O(layers²)` float max/fma operations, no allocation, no device, layer or
//! topology queries):
//!
//! * the stored [`TrainingConfig`]'s `batch_size` (iteration counts and the
//!   per-sample → per-batch factors are derived from it at query time),
//! * the per-depth maximum pipeline-stage memory, re-maximized from the
//!   batch-invariant `(activation, static)` pairs as
//!   `max_i (2·B·act_i + static_i)`.
//!
//! Because `rebatch` re-runs exactly the arithmetic [`CostEngine::new`] runs
//! for the batch-dependent tables (same per-group pairs, same fold order), a
//! rebatched engine is **byte-for-byte identical** to an engine freshly
//! built at the new batch — which is what lets [`crate::grid::GridSweep`]
//! answer a whole batch sweep from one engine while returning exactly what
//! per-query searches would.
//!
//! After construction, [`CostEngine::estimate`], [`CostEngine::memory_per_pe`]
//! and [`CostEngine::lower_bound`] all run in `O(1)` per candidate (no
//! allocation), which is what makes the pruned search in [`crate::search`]
//! much faster than the reference path at scale. Measured end to end on a
//! CosmoFlow-scale exhaustive space (≈ 226k candidates at 16 Ki PEs, see
//! `paradl-bench/benches/engine.rs`, 16-core container): the reference path
//! finishes the search in ≈ 0.82 s (≈ 0.28 M candidates/s), the engine-backed
//! full ranking in ≈ 0.17 s (≈ 1.4 M candidates/s), and the engine with
//! top-10 pruning in ≈ 0.08 s (≈ 2.9 M candidates/s) — a 5–10× end-to-end
//! speedup, with engine construction itself costing ≈ 17 µs (CosmoFlow) to
//! ≈ 170–230 µs (ResNet-50), and a [`CostEngine::rebatch`] ≈ 36 µs on
//! ResNet-50 — ≈ 7× cheaper than the rebuild it replaces
//! (`paradl-bench/benches/grid.rs`).
//!
//! The engine is numerically *equivalent* to the reference model (same
//! formulas, refactored around precomputed aggregates) but not bit-identical
//! to it: sums are reassociated, so individual phase times can differ by a
//! few ULPs. Property tests in `tests/proptest_engine.rs` pin the relative
//! error below `1e-9` for every strategy kind. Within one engine the results
//! are fully deterministic, which is why the parallel and serial searches
//! agree exactly.

use crate::cluster::{ClusterCache, ClusterSpec, MAX_LOG2_PES};
use crate::comm::CommModel;
use crate::compute::{ComputeModel, LayerTimes};
use crate::config::TrainingConfig;
use crate::cost::{
    hierarchical_allreduce_time, segmented_allreduce_contention, CostEstimate, PhaseBreakdown,
};
use crate::model::Model;
use crate::strategy::{SpatialSplit, Strategy, StrategyKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Precomputed scaling-limit table of one model (paper Table 3, last
/// column): the quantities [`Strategy::validate`] re-derives by walking the
/// layer list on every call. Candidate enumeration consults this table so
/// validating a candidate is `O(1)`. Batch-invariant: the batch enters
/// [`ModelLimits::is_valid`] as an argument, never the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLimits {
    /// Number of layers `G` (pipeline-parallel limit).
    pub num_layers: usize,
    /// `min_l F_l` (filter-parallel limit).
    pub min_filters: usize,
    /// `min_l C_l` excluding the first conv (channel-parallel limit).
    pub min_channels_after_first: usize,
    /// `min_l (W_l × H_l [× D_l])` (spatial-parallel limit).
    pub min_spatial_size: usize,
    /// Per-dimension minimum spatial extents (per-factor spatial caps).
    pub min_spatial_extents: Vec<usize>,
}

impl ModelLimits {
    /// Walks `model` once and tabulates every scaling limit.
    pub fn of(model: &Model) -> Self {
        ModelLimits {
            num_layers: model.num_layers(),
            min_filters: model.min_filters(),
            min_channels_after_first: model.min_channels_after_first(),
            min_spatial_size: model.min_spatial_size(),
            min_spatial_extents: model.min_spatial_extents(),
        }
    }

    /// `O(1)` equivalent of `strategy.validate(model, batch).is_ok()`.
    pub fn is_valid(&self, strategy: Strategy, batch: usize) -> bool {
        if strategy.total_pes() == 0 {
            return false;
        }
        match strategy {
            Strategy::Serial => true,
            Strategy::Data { p } => p <= batch,
            Strategy::Spatial { split } => split.total() <= self.min_spatial_size,
            Strategy::Filter { p } => p <= self.min_filters,
            Strategy::Channel { p } => p <= self.min_channels_after_first,
            Strategy::Pipeline { p, segments } => {
                p <= self.num_layers && segments >= 1 && segments <= batch
            }
            Strategy::DataFilter { p1, p2 } => p1 <= batch && p2 <= self.min_filters,
            Strategy::DataSpatial { p1, split } => {
                p1 <= batch && split.total() <= self.min_spatial_size
            }
        }
    }

    /// `O(1)` equivalent of [`Strategy::max_pes`].
    pub fn max_pes(&self, batch: usize, kind: StrategyKind) -> usize {
        match kind {
            StrategyKind::Serial => 1,
            StrategyKind::Data => batch,
            StrategyKind::Spatial => self.min_spatial_size,
            StrategyKind::Filter => self.min_filters,
            StrategyKind::Channel => self.min_channels_after_first,
            StrategyKind::Pipeline => self.num_layers,
            // Saturating: a hostile batch (e.g. `usize::MAX`) must clamp,
            // not overflow — the result is only ever min'ed against budgets.
            StrategyKind::DataFilter => batch.saturating_mul(self.min_filters),
            StrategyKind::DataSpatial => batch.saturating_mul(self.min_spatial_size),
        }
    }
}

/// Why a [`CostEngine`] refused to build. Degenerate problems fail here,
/// at construction, with a diagnostic — instead of propagating NaN/Inf (or
/// a divide-by-zero panic) into every ranking computed from the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The training configuration failed
    /// [`TrainingConfig::validate`] (e.g. a zero batch size, which would
    /// divide by zero in the iteration count).
    Config(String),
    /// A precomputed table entry came out non-finite — typically a
    /// zero/NaN device rate or link parameter turning a layer time or
    /// collective time into Inf/NaN.
    NonFinite {
        /// Which table the bad entry was found in.
        table: &'static str,
        /// Which entry, and what value it held.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid config: {e}"),
            EngineError::NonFinite { table, detail } => {
                write!(f, "non-finite value in engine table {table:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Batch-invariant communication coefficients of one candidate on one
/// (model, cluster) pair, produced by [`CostEngine::comm_prep`] and consumed
/// by [`CostEngine::comm_time_prepped`]. The field meaning is per strategy
/// family (see `comm_prep`); unused fields are zero. The grid sweep
/// tabulates one coefficient column per (model, cluster) pair, aligned with
/// the model's candidate superset, so the per-candidate evaluation of every
/// batch's cell is reduced to a handful of flops. Every batch-dependent
/// communication term of the cost model is in batch-last form
/// `fixed + batch · per_sample`, so four coefficients (one 32-byte row)
/// reconstruct any family's exact time with no per-candidate division
/// (the pipeline family keeps one, by the cell batch).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CommCoef {
    /// Gradient-exchange collective time (the `*_allreduce` value), or the
    /// pipeline dataset prefactor `2·D·(p + s − 2)`.
    pub(crate) a: f64,
    /// Fixed latency part: halo `pairs·2·p2p(0)`, collective
    /// `collective_layers·α`, or the pipeline effective-link α.
    pub(crate) b: f64,
    /// The per-sample slope the batch multiplies (`halo_per_sample` /
    /// `collective_per_sample` / `boundary_per_sample`).
    pub(crate) c: f64,
    /// Strategy-derived scale: the collective families' `3·(p − 1)`, or
    /// the pipeline depth `p` (`> 1` flags a communicating pipeline).
    pub(crate) d: f64,
}

/// The per-split-mask index into the halo aggregate tables: one bit per
/// spatial dimension that is actually split (shared by
/// [`CostEngine::halo_time`] and [`CostEngine::comm_prep`]).
#[inline]
fn halo_mask(split: SpatialSplit) -> usize {
    (usize::from(split.pw > 1))
        | (usize::from(split.ph > 1) << 1)
        | (usize::from(split.pd > 1) << 2)
}

/// Batch-invariant aggregates of one pipeline depth `p`: the compute and
/// boundary quantities of the balanced layer groups. The per-stage memory is
/// *not* here — it depends on the batch and lives in `CostEngine::pipe_mem`,
/// re-derived by `rebatch` from [`EngineCore::pipe_mem_parts`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct PipelineAgg {
    /// Bottleneck per-sample forward time `max_Gi Σ FW_l`.
    max_fw: f64,
    /// Bottleneck per-sample backward time `max_Gi Σ BW_l`.
    max_bw: f64,
    /// Bottleneck per-iteration weight-update time `max_Gi Σ WU_l`.
    max_wu: f64,
    /// Largest boundary activation `max_i |y_{Gi}|` (elements), 0 when the
    /// pipeline has a single stage.
    max_boundary_act: f64,
    /// Whether any stage boundary exists (`groups > 1`).
    has_boundary: bool,
}

/// Replica of [`Model::balanced_pipeline_groups`] operating on a flat
/// per-layer FLOP array (same greedy algorithm, same accumulation order, so
/// the groupings are identical) without re-querying layer shapes. FLOPs do
/// not depend on the batch, so neither do the groupings — which is what
/// makes the per-group memory parts batch-invariant.
fn balanced_groups(flops: &[u64], p: usize) -> Vec<std::ops::Range<usize>> {
    let p = p.clamp(1, flops.len().max(1));
    let total: u64 = flops.iter().sum();
    let target = total as f64 / p as f64;
    let mut groups = Vec::with_capacity(p);
    let mut start = 0usize;
    let mut acc = 0f64;
    for (i, &f) in flops.iter().enumerate() {
        acc += f as f64;
        let remaining_groups = p - groups.len();
        let remaining_layers = flops.len() - i - 1;
        // Close the group when we reach the target, but always leave at
        // least one layer per remaining group.
        if groups.len() < p - 1 && (acc >= target || remaining_layers < (remaining_groups - 1)) {
            groups.push(start..i + 1);
            start = i + 1;
            acc = 0.0;
        }
    }
    groups.push(start..flops.len());
    groups
}

/// Memoized gradient-exchange collective times, keyed by power-of-two
/// communicator sizes. Entry `[i]` (or `[i][j]`) holds the time for
/// `p = 2^i` (and group size `p2 = 2^j`); non-power-of-two sizes use the
/// closed-form fallback. Batch-invariant: the exchanged buffer is the weight
/// gradient, whose size is `Σ|w|·δ` regardless of the batch.
#[derive(Debug, Clone)]
struct CollectiveTables {
    /// `flat[i]`: Allreduce of the full weight buffer over `2^i` PEs
    /// (data / spatial gradient exchange).
    flat: Vec<f64>,
    /// `df[i][j]`: segmented inter-group Allreduce of the `|w|/2^j` shard
    /// over `2^i` groups (data+filter gradient exchange).
    df: Vec<Vec<f64>>,
    /// `ds[i][j]`: hierarchical (leader-based) Allreduce over `2^i` groups of
    /// `2^j` PEs (data+spatial gradient exchange).
    ds: Vec<Vec<f64>>,
}

/// The batch-invariant tables of a [`CostEngine`], shared behind an
/// [`Arc`] so [`CostEngine::rebatched`] siblings (one per batch of a grid
/// sweep) cost one pointer copy instead of re-tabulating — or re-cloning —
/// any of this.
///
/// Opaque outside this module: the only things callers can do with a core
/// are obtain one from a built engine ([`CostEngine::core_handle`]), stash
/// it (e.g. in an [`EngineCache`]), and hydrate a new engine from it with
/// [`CostEngine::from_core`]. A core is valid for exactly the
/// (model, device, cluster, `bytes_per_item`, `memory_reuse`) tuple it was
/// built from — `batch_size`, `dataset_size` and `epochs` are *not* baked
/// in (they are read from the engine's owned config at query time), which
/// is what [`engine_fingerprint`] encodes.
#[derive(Debug)]
pub struct EngineCore {
    /// Scaling limits (model-only).
    limits: ModelLimits,
    /// Per-layer `FW`/`BW`/`WU` tables (model × device only).
    times: LayerTimes,
    /// `Σ_l (FW_l + BW_l)` per sample.
    fw_bw_per_sample: f64,
    /// `Σ_l WU_l` per iteration.
    wu_per_iteration: f64,
    /// `Σ_l |w_l| · δ` in bytes (the gradient-exchange buffer).
    total_weight_bytes: f64,
    /// `Σ_l (|x_l| + |y_l|)` in elements (memory model; multiplied by the
    /// batch at query time).
    act_io_sum: f64,
    /// `Σ_l |w_l|` in elements (memory model).
    weight_sum: f64,
    /// `Σ_l |bi_l|` in elements (memory model).
    bias_sum: f64,
    /// `Σ_{l < G-1} |y_l|`: activation elements feeding the layer-wise
    /// collectives (no Allgather after the last layer).
    act_out_except_last: f64,
    /// Number of layers contributing layer-wise collectives (`G − 1`).
    collective_layers: f64,
    /// `halo_pairs[mask]`: number of layers with a non-zero halo when the
    /// spatial dimensions in `mask` (bit 0 = width, 1 = height, 2 = depth)
    /// are split.
    halo_pairs: [f64; 8],
    /// `halo_elems[mask]`: `Σ_l (halo(x_l) + halo(dL/dy_l))` elements for the
    /// same masks.
    halo_elems: [f64; 8],
    /// `pipeline[p-1]`: batch-invariant aggregates of the balanced `p`-stage
    /// pipeline.
    pipeline: Vec<PipelineAgg>,
    /// Flat triangular table of per-stage memory parts: for depth `p`, the
    /// `p` entries starting at offset `p(p-1)/2` hold each stage's
    /// `(Σ(|x|+|y|), Σ(2|w|+|bi|))` element pair; the batch-dependent stage
    /// memory is `2·B·act + static`, re-maximized by [`CostEngine::rebatch`].
    pipe_mem_parts: Vec<(f64, f64)>,
    /// Memoized gradient-exchange collectives.
    tables: CollectiveTables,
    /// `γ · δ`: the factor applied to raw memory element counts.
    gamma_delta: f64,
}

impl EngineCore {
    /// Sweeps every tabulated f64 for finiteness, so a degenerate spec
    /// (zero device rates, NaN link parameters, …) fails construction with
    /// a named table instead of poisoning every downstream ranking.
    fn verify_finite(&self) -> Result<(), EngineError> {
        fn check(
            table: &'static str,
            values: impl IntoIterator<Item = f64>,
        ) -> Result<(), EngineError> {
            for (i, v) in values.into_iter().enumerate() {
                if !v.is_finite() {
                    return Err(EngineError::NonFinite {
                        table,
                        detail: format!("entry {i} is {v}"),
                    });
                }
            }
            Ok(())
        }
        let t = &self.times;
        check("layer_times", t.forward.iter().chain(&t.backward).chain(&t.weight_update).copied())?;
        check(
            "aggregates",
            [
                self.fw_bw_per_sample,
                self.wu_per_iteration,
                self.total_weight_bytes,
                self.act_io_sum,
                self.weight_sum,
                self.bias_sum,
                self.act_out_except_last,
                self.collective_layers,
                self.gamma_delta,
            ],
        )?;
        check("halo", self.halo_pairs.iter().chain(&self.halo_elems).copied())?;
        check(
            "pipeline",
            self.pipeline.iter().flat_map(|a| [a.max_fw, a.max_bw, a.max_wu, a.max_boundary_act]),
        )?;
        check("pipe_mem_parts", self.pipe_mem_parts.iter().flat_map(|&(act, stat)| [act, stat]))?;
        check(
            "collectives",
            self.tables
                .flat
                .iter()
                .chain(self.tables.df.iter().flatten())
                .chain(self.tables.ds.iter().flatten())
                .copied(),
        )?;
        Ok(())
    }
}

/// The precomputed cost engine for one (model, device, cluster, config)
/// problem. See the [module docs](crate::engine) for what is tabulated and
/// which tables are batch-invariant; all per-candidate queries are `O(1)`
/// and allocation-free.
#[derive(Debug, Clone)]
pub struct CostEngine<'a> {
    model: &'a Model,
    cluster: &'a ClusterSpec,
    /// Batch-dependent: `config.batch_size` is the only field
    /// [`CostEngine::rebatch`] rewrites (everything else in the config feeds
    /// the batch-invariant core).
    config: TrainingConfig,
    /// Batch-invariant tables, `Arc`-shared between rebatched siblings.
    core: Arc<EngineCore>,
    /// Batch-dependent: `pipe_mem[p-1]` is the raw (pre-`γδ`) memory of the
    /// largest stage of the balanced `p`-stage pipeline at the current batch.
    pipe_mem: Vec<f64>,
    /// Batch-dependent: cached `config.iterations_per_epoch()` (the
    /// estimate hot path reads it several times per candidate).
    iters: usize,
    /// `iters` as `f64`.
    iters_f: f64,
}

impl<'a> CostEngine<'a> {
    /// Builds the engine: one `O(layers²)` precomputation pass (the quadratic
    /// part is the per-depth pipeline table; everything else is linear),
    /// deriving the topology tables from a private [`ClusterCache`]. When
    /// building several engines on the same cluster, build the cache once
    /// and use [`CostEngine::with_cache`] instead.
    ///
    /// Errors instead of building when the config is invalid (zero batch,
    /// zero dataset, …) or when any precomputed table entry comes out
    /// non-finite — see [`EngineError`].
    pub fn new<C: ComputeModel + ?Sized>(
        model: &'a Model,
        device: &C,
        cluster: &'a ClusterSpec,
        config: TrainingConfig,
    ) -> Result<Self, EngineError> {
        Self::with_cache(model, device, cluster, config, &ClusterCache::new(cluster))
    }

    /// Like [`CostEngine::new`], but reuses a (typically
    /// [`Arc`]-shared) [`ClusterCache`] of `cluster`'s topology-derived
    /// communication models, so the collective tables skip the per-engine
    /// model derivation. Produces byte-for-byte the same engine as
    /// [`CostEngine::new`] — the cache holds models, not times.
    pub fn with_cache<C: ComputeModel + ?Sized>(
        model: &'a Model,
        device: &C,
        cluster: &'a ClusterSpec,
        config: TrainingConfig,
        cache: &ClusterCache,
    ) -> Result<Self, EngineError> {
        debug_assert_eq!(cache.cluster(), cluster, "ClusterCache reused across clusters");
        // Validate *before* any arithmetic: `rebatch` below divides by the
        // batch size, and a zero batch must be a typed error, not a panic.
        config.validate().map_err(EngineError::Config)?;
        let times = LayerTimes::tabulate(model, device);
        let fw_bw_per_sample = times.fw_bw_per_sample();
        let wu_per_iteration = times.wu_per_iteration();
        let delta = config.bytes_per_item;
        let total_weight_bytes = model.total_weights() as f64 * delta;

        // One per-layer tensor-shape pass: `input_size`/`output_size` allocate
        // internally, so everything downstream (aggregates, pipeline tables)
        // reads these flat arrays instead of re-querying the layers.
        let g = model.num_layers();
        let in_sizes: Vec<f64> = model.layers.iter().map(|l| l.input_size() as f64).collect();
        let out_sizes: Vec<f64> = model.layers.iter().map(|l| l.output_size() as f64).collect();
        let weights: Vec<f64> = model.layers.iter().map(|l| l.weight_count() as f64).collect();
        let biases: Vec<f64> = model.layers.iter().map(|l| l.bias_count() as f64).collect();

        let act_io_sum: f64 = in_sizes.iter().zip(&out_sizes).map(|(i, o)| i + o).sum();
        let weight_sum: f64 = weights.iter().sum();
        let bias_sum: f64 = biases.iter().sum();
        let act_out_except_last: f64 = out_sizes.iter().take(g.saturating_sub(1)).sum();

        // Halo aggregates per split-dimension mask. The exchanged halo volume
        // only depends on *which* dimensions are split (not how many ways),
        // so 8 masks cover every possible SpatialSplit.
        let mut halo_pairs = [0.0f64; 8];
        let mut halo_elems = [0.0f64; 8];
        for mask in 0usize..8 {
            let part = |bit: usize| if mask & bit != 0 { 2 } else { 1 };
            let splits = [part(1), part(2), part(4)];
            for l in &model.layers {
                let hx = l.halo_size(&splits[..l.spatial_dims().min(3)]) as f64;
                if hx == 0.0 {
                    continue;
                }
                let hdy = hx * (l.output_size() as f64 / l.input_size().max(1) as f64);
                halo_pairs[mask] += 1.0;
                halo_elems[mask] += hx + hdy;
            }
        }

        // Pipeline aggregates for every depth 1..=G. The balanced grouping is
        // recomputed from a flat FLOP array with the exact greedy algorithm of
        // `Model::balanced_pipeline_groups`, and all per-group sums become
        // prefix-sum differences — no per-depth allocation or layer re-walk.
        // The per-group memory is kept as batch-invariant (activation,
        // static) element pairs so `rebatch` can re-maximize without
        // re-deriving groups.
        let flops: Vec<u64> =
            model.layers.iter().map(|l| l.flops_forward() + l.flops_backward()).collect();
        let prefix = |xs: &dyn Fn(usize) -> f64| -> Vec<f64> {
            let mut acc = 0.0;
            let mut out = Vec::with_capacity(g + 1);
            out.push(0.0);
            for i in 0..g {
                acc += xs(i);
                out.push(acc);
            }
            out
        };
        let fw_prefix = prefix(&|i| times.forward[i]);
        let bw_prefix = prefix(&|i| times.backward[i]);
        let wu_prefix = prefix(&|i| times.weight_update[i]);
        let act_prefix = prefix(&|i| in_sizes[i] + out_sizes[i]);
        let static_prefix = prefix(&|i| 2.0 * weights[i] + biases[i]);
        let range_sum = |pfx: &[f64], r: &std::ops::Range<usize>| pfx[r.end] - pfx[r.start];

        let mut pipeline = Vec::with_capacity(g);
        let mut pipe_mem_parts = Vec::with_capacity(g * (g + 1) / 2);
        for p in 1..=g {
            let groups = balanced_groups(&flops, p);
            let mut agg = PipelineAgg { has_boundary: groups.len() > 1, ..Default::default() };
            for (gi, range) in groups.iter().enumerate() {
                agg.max_fw = agg.max_fw.max(range_sum(&fw_prefix, range));
                agg.max_bw = agg.max_bw.max(range_sum(&bw_prefix, range));
                agg.max_wu = agg.max_wu.max(range_sum(&wu_prefix, range));
                if gi + 1 < groups.len() {
                    agg.max_boundary_act = agg.max_boundary_act.max(out_sizes[range.end - 1]);
                }
                pipe_mem_parts
                    .push((range_sum(&act_prefix, range), range_sum(&static_prefix, range)));
            }
            pipeline.push(agg);
        }

        let tables = CollectiveTables::build(cache, total_weight_bytes);

        let core = EngineCore {
            limits: ModelLimits::of(model),
            times,
            fw_bw_per_sample,
            wu_per_iteration,
            total_weight_bytes,
            act_io_sum,
            weight_sum,
            bias_sum,
            act_out_except_last,
            collective_layers: g.saturating_sub(1) as f64,
            halo_pairs,
            halo_elems,
            pipeline,
            pipe_mem_parts,
            tables,
            gamma_delta: config.memory_reuse * delta,
        };
        core.verify_finite()?;
        let mut engine = CostEngine {
            model,
            cluster,
            config,
            core: Arc::new(core),
            pipe_mem: vec![0.0; g],
            iters: 0,
            iters_f: 0.0,
        };
        // Fill the batch-dependent pipeline-memory table through the same
        // code path `rebatch` uses, so fresh and rebatched engines are
        // byte-for-byte identical.
        engine.rebatch(config.batch_size);
        Ok(engine)
    }

    /// Switches the engine to a new global mini-batch `batch`, rewriting
    /// only the batch-dependent tables: the stored `batch_size` and the
    /// per-depth pipeline stage memory (re-maximized from the precomputed
    /// per-group `(activation, static)` pairs). `O(layers²)` float
    /// operations, zero allocation, and no device, layer or topology
    /// queries — a small fraction of a full [`CostEngine::new`].
    ///
    /// The result is byte-for-byte identical to building a fresh engine
    /// whose config differs only in `batch_size` (property-tested in
    /// `tests/proptest_engine.rs`).
    pub fn rebatch(&mut self, batch: usize) {
        self.config.batch_size = batch;
        self.iters = self.config.iterations_per_epoch();
        self.iters_f = self.iters as f64;
        let b = batch as f64;
        let mut off = 0usize;
        for (depth0, slot) in self.pipe_mem.iter_mut().enumerate() {
            let groups = depth0 + 1; // depth p has exactly p balanced groups
            let mut mem = 0.0f64;
            for &(act, stat) in &self.core.pipe_mem_parts[off..off + groups] {
                mem = mem.max(2.0 * b * act + stat);
            }
            *slot = mem;
            off += groups;
        }
    }

    /// A sibling engine at a different global mini-batch, sharing every
    /// batch-invariant table with `self` through the [`Arc`]-held core
    /// (the clone copies one pointer and the `O(layers)` pipeline-memory
    /// vector, then [`CostEngine::rebatch`]es it).
    pub fn rebatched(&self, batch: usize) -> Self {
        let mut sibling = self.clone();
        sibling.rebatch(batch);
        sibling
    }

    /// A shared handle to this engine's batch-invariant core, suitable for
    /// stashing in an [`EngineCache`] and later hydrating a fresh engine
    /// with [`CostEngine::from_core`] — skipping the whole `O(layers²)`
    /// precomputation pass.
    pub fn core_handle(&self) -> Arc<EngineCore> {
        Arc::clone(&self.core)
    }

    /// Hydrates an engine from a previously built core, skipping the
    /// precomputation pass entirely (no device queries — the device model
    /// is already baked into the core's tables). The batch-dependent tables
    /// are filled through the same [`CostEngine::rebatch`] path
    /// [`CostEngine::with_cache`] uses, so the result is **byte-for-byte
    /// identical** to a fresh build at `config`.
    ///
    /// Contract: `core` must have been built for this `model`, this
    /// `cluster`, the same device, and a config with the same
    /// `bytes_per_item` and `memory_reuse` — i.e. the same
    /// [`engine_fingerprint`]. `batch_size`, `dataset_size` and `epochs`
    /// may differ freely (they are not baked into any core table).
    ///
    /// Errors when `config` is invalid (the core's tables are known-finite
    /// by construction, so that is the only way hydration can fail).
    pub fn from_core(
        model: &'a Model,
        cluster: &'a ClusterSpec,
        config: TrainingConfig,
        core: Arc<EngineCore>,
    ) -> Result<Self, EngineError> {
        config.validate().map_err(EngineError::Config)?;
        debug_assert_eq!(core.limits, ModelLimits::of(model), "core reused across models");
        debug_assert_eq!(
            core.gamma_delta.to_bits(),
            (config.memory_reuse * config.bytes_per_item).to_bits(),
            "core reused across γ·δ"
        );
        let g = core.pipeline.len();
        let mut engine = CostEngine {
            model,
            cluster,
            config,
            core,
            pipe_mem: vec![0.0; g],
            iters: 0,
            iters_f: 0.0,
        };
        engine.rebatch(config.batch_size);
        Ok(engine)
    }

    /// The model this engine was built for.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The cluster this engine was built for.
    pub fn cluster(&self) -> &ClusterSpec {
        self.cluster
    }

    /// The training configuration this engine was built for (its
    /// `batch_size` tracks the latest [`CostEngine::rebatch`]).
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// The precomputed scaling-limit table.
    pub fn limits(&self) -> &ModelLimits {
        &self.core.limits
    }

    /// The per-layer compute-time tables.
    pub fn layer_times(&self) -> &LayerTimes {
        &self.core.times
    }

    /// Maximum memory (bytes) required on one PE, `O(1)` equivalent of
    /// [`crate::memory::memory_per_pe`].
    pub fn memory_per_pe(&self, strategy: Strategy) -> f64 {
        let b = self.config.batch_size as f64;
        let raw = match strategy {
            Strategy::Serial => self.mem_raw(1.0, 1.0, b),
            Strategy::Data { p } => self.mem_raw(1.0, 1.0, b / p as f64),
            Strategy::Spatial { split } => self.mem_raw(split.total() as f64, 1.0, b),
            Strategy::Filter { p } | Strategy::Channel { p } => self.mem_raw(1.0, p as f64, b),
            Strategy::Pipeline { p, .. } => self.pipe_mem[self.depth_index(p)],
            Strategy::DataFilter { p1, p2 } => self.mem_raw(p1 as f64, p2 as f64, b),
            Strategy::DataSpatial { p1, split } => {
                self.mem_raw((p1 * split.total()) as f64, 1.0, b)
            }
        };
        self.core.gamma_delta * raw
    }

    /// Full cost estimate, `O(1)` equivalent of [`crate::cost::estimate`].
    pub fn estimate(&self, strategy: Strategy) -> CostEstimate {
        let mem = self.memory_per_pe(strategy);
        self.estimate_with_memory(strategy, mem)
    }

    /// Like [`CostEngine::estimate`] but reuses a per-PE memory value the
    /// caller already computed (the search memory-prunes before costing).
    pub fn estimate_with_memory(
        &self,
        strategy: Strategy,
        memory_per_pe_bytes: f64,
    ) -> CostEstimate {
        let b = self.config.batch_size as f64;
        let iters = self.iters_f;

        let mut breakdown = PhaseBreakdown::default();
        let (fb, wu) = self.compute_terms(strategy);
        breakdown.forward_backward = fb;
        breakdown.weight_update = wu;

        match strategy {
            Strategy::Serial => {}
            Strategy::Data { p } => {
                breakdown.gradient_exchange = iters * self.weight_allreduce(p);
            }
            Strategy::Spatial { split } => {
                let p = split.total();
                breakdown.gradient_exchange = iters * self.weight_allreduce(p);
                let comm = self.cluster.comm_model(p);
                breakdown.halo_exchange = iters * self.halo_time(&comm, split, 1.0, b);
            }
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let comm = self.cluster.comm_model(p);
                breakdown.fb_collective = iters * self.layerwise_collective(&comm, p, p, b);
            }
            Strategy::Pipeline { p, segments } => {
                breakdown.pipeline_p2p = self.pipeline_p2p(p, segments);
            }
            Strategy::DataFilter { p1, p2 } => {
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                breakdown.fb_collective = iters * self.layerwise_collective(&intra, p2, p1 * p2, b);
                breakdown.gradient_exchange = iters * self.df_allreduce(p1, p2);
            }
            Strategy::DataSpatial { p1, split } => {
                let p2 = split.total();
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                breakdown.halo_exchange = iters * self.halo_time(&intra, split, p1 as f64, b);
                breakdown.gradient_exchange = iters * self.ds_allreduce(p1, p2);
            }
        }

        CostEstimate { strategy, per_epoch: breakdown, iterations: self.iters, memory_per_pe_bytes }
    }

    /// Admissible lower bound on the per-epoch time of `strategy`: its
    /// compute-only time (forward/backward + weight update), computed with
    /// the exact expressions [`CostEngine::estimate`] uses, so
    /// `lower_bound(s) ≤ estimate(s).epoch_time()` always holds (every
    /// communication term of the cost model is non-negative). Used by the
    /// branch-and-bound pruning in [`crate::search`].
    pub fn lower_bound(&self, strategy: Strategy) -> f64 {
        let (fb, wu) = self.compute_terms(strategy);
        fb + wu
    }

    /// Fused prep pass: `(memory_per_pe, lower_bound)` from a single
    /// strategy dispatch. Bit-identical to calling [`CostEngine::memory_per_pe`]
    /// and [`CostEngine::lower_bound`] separately (same sub-expressions in
    /// the same order), but the SoA prep loop in [`crate::grid`] only pays
    /// one `match` per candidate.
    pub fn prep_terms(&self, strategy: Strategy) -> (f64, f64) {
        let core = &*self.core;
        let b = self.config.batch_size as f64;
        let d = self.config.dataset_size as f64;
        let iters = self.iters_f;
        match strategy {
            Strategy::Serial => (
                core.gamma_delta * self.mem_raw(1.0, 1.0, b),
                d * core.fw_bw_per_sample + iters * core.wu_per_iteration,
            ),
            Strategy::Data { p } => (
                core.gamma_delta * self.mem_raw(1.0, 1.0, b / p as f64),
                d / p as f64 * core.fw_bw_per_sample + iters * core.wu_per_iteration,
            ),
            Strategy::Spatial { split } => (
                core.gamma_delta * self.mem_raw(split.total() as f64, 1.0, b),
                d / split.total() as f64 * core.fw_bw_per_sample + iters * core.wu_per_iteration,
            ),
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let pf = p as f64;
                (
                    core.gamma_delta * self.mem_raw(1.0, pf, b),
                    d / pf * core.fw_bw_per_sample + iters / pf * core.wu_per_iteration,
                )
            }
            Strategy::Pipeline { p, segments } => {
                let agg = self.pipeline_agg(p);
                let s = segments.max(1) as f64;
                let pf = p as f64;
                (
                    core.gamma_delta * self.pipe_mem[self.depth_index(p)],
                    d * (pf + s - 1.0) / s * (agg.max_fw + agg.max_bw) + iters * agg.max_wu,
                )
            }
            Strategy::DataFilter { p1, p2 } => {
                let p = (p1 * p2) as f64;
                (
                    core.gamma_delta * self.mem_raw(p1 as f64, p2 as f64, b),
                    d / p * core.fw_bw_per_sample + iters / p2 as f64 * core.wu_per_iteration,
                )
            }
            Strategy::DataSpatial { p1, split } => {
                let p = (p1 * split.total()) as f64;
                (
                    core.gamma_delta * self.mem_raw(p, 1.0, b),
                    d / p * core.fw_bw_per_sample + iters * core.wu_per_iteration,
                )
            }
        }
    }

    /// Scalar epoch time of `strategy`: bit-identical to
    /// `estimate(strategy).epoch_time()` without materialising the
    /// [`CostEstimate`]. The candidate-evaluation kernel in [`crate::kernel`]
    /// uses this to rank survivors and only builds full estimates for the
    /// handful of candidates that enter the heap or a budget slot.
    pub fn epoch_time(&self, strategy: Strategy) -> f64 {
        let (fb, wu) = self.compute_terms(strategy);
        (fb + wu) + self.comm_time(strategy)
    }

    /// The communication part of `epoch_time`: bit-identical to
    /// `estimate(strategy).per_epoch.communication()`. Exactness hinges on
    /// `x + 0.0 == x` for every non-negative IEEE-754 `x`: the four-term
    /// left-associated sum in [`crate::cost::PhaseBreakdown::communication`]
    /// collapses to the per-family non-zero terms in the same order.
    pub(crate) fn comm_time(&self, strategy: Strategy) -> f64 {
        let b = self.config.batch_size as f64;
        let iters = self.iters_f;
        match strategy {
            Strategy::Serial => 0.0,
            Strategy::Data { p } => iters * self.weight_allreduce(p),
            Strategy::Spatial { split } => {
                let p = split.total();
                let ge = iters * self.weight_allreduce(p);
                let comm = self.cluster.comm_model(p);
                ge + iters * self.halo_time(&comm, split, 1.0, b)
            }
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let comm = self.cluster.comm_model(p);
                iters * self.layerwise_collective(&comm, p, p, b)
            }
            Strategy::Pipeline { p, segments } => self.pipeline_p2p(p, segments),
            Strategy::DataFilter { p1, p2 } => {
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                let fbcoll = iters * self.layerwise_collective(&intra, p2, p1 * p2, b);
                let ge = iters * self.df_allreduce(p1, p2);
                ge + fbcoll
            }
            Strategy::DataSpatial { p1, split } => {
                let p2 = split.total();
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                let halo = iters * self.halo_time(&intra, split, p1 as f64, b);
                let ge = iters * self.ds_allreduce(p1, p2);
                ge + halo
            }
        }
    }

    /// Tabulates the batch-invariant communication coefficients of
    /// `strategy` for [`CostEngine::comm_time_prepped`]. Every value is a
    /// function of the model core, the cluster and the strategy only —
    /// never of the batch — so one coefficient pass per (model, cluster)
    /// pair serves every batch of a grid sweep (the whole point: the
    /// collective/link derivations behind `comm_time` are the dominant
    /// per-candidate cost, and they are re-paid per batch without this).
    ///
    /// Per family: `a` is the gradient-exchange collective time
    /// (`weight_allreduce` / `df_allreduce` / `ds_allreduce`); `b` the
    /// fixed latency part of the batch-dependent term; `c` the per-sample
    /// slope the batch multiplies (computed by the exact shared helpers
    /// `halo_per_sample` / `collective_per_sample` / `boundary_per_sample`,
    /// so the stored value is the bit-exact sub-expression of the direct
    /// paths); `d` the collective families' `3·(p − 1)` scale or the
    /// pipeline depth. `Serial` doesn't communicate (all-zero
    /// coefficients).
    pub(crate) fn comm_prep(&self, strategy: Strategy) -> CommCoef {
        let core = &*self.core;
        let zero = CommCoef::default();
        match strategy {
            Strategy::Serial => zero,
            Strategy::Pipeline { p, segments } => {
                // Zero coefficients encode the `p ≤ 1` (no communication)
                // case; `d = p ≥ 2` flags the real formula. A boundary-less
                // pipeline zeroes α and the per-sample slope so the
                // reconstructed `max_p2p` collapses to the same `0.0` the
                // direct path takes.
                if p <= 1 {
                    return zero;
                }
                let agg = self.pipeline_agg(p);
                let d = self.config.dataset_size as f64;
                let s = segments.max(1) as f64;
                let comm = self.cluster.comm_model(p.min(self.cluster.gpus_per_node.max(2)));
                let (alpha, per_sample) = if agg.has_boundary {
                    let eff = comm.link.with_contention(comm.contention);
                    (eff.alpha, self.boundary_per_sample(agg.max_boundary_act, s, eff.beta))
                } else {
                    (0.0, 0.0)
                };
                CommCoef { a: 2.0 * d * (p as f64 + s - 2.0), b: alpha, c: per_sample, d: p as f64 }
            }
            Strategy::Data { p } => CommCoef { a: self.weight_allreduce(p), ..zero },
            Strategy::Spatial { split } => {
                let p = split.total();
                let comm = self.cluster.comm_model(p);
                let mask = halo_mask(split);
                CommCoef {
                    a: self.weight_allreduce(p),
                    b: core.halo_pairs[mask] * 2.0 * comm.p2p(0.0),
                    c: self.halo_per_sample(&comm, mask, 1.0),
                    ..zero
                }
            }
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let comm = self.cluster.comm_model(p);
                CommCoef {
                    a: 0.0,
                    b: core.collective_layers * comm.link.alpha,
                    c: self.collective_per_sample(&comm, p),
                    d: 3.0 * (p as f64 - 1.0),
                }
            }
            Strategy::DataFilter { p1, p2 } => {
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                CommCoef {
                    a: self.df_allreduce(p1, p2),
                    b: core.collective_layers * intra.link.alpha,
                    c: self.collective_per_sample(&intra, p1 * p2),
                    d: 3.0 * (p2 as f64 - 1.0),
                }
            }
            Strategy::DataSpatial { p1, split } => {
                let p2 = split.total();
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                let mask = halo_mask(split);
                CommCoef {
                    a: self.ds_allreduce(p1, p2),
                    b: core.halo_pairs[mask] * 2.0 * intra.p2p(0.0),
                    c: self.halo_per_sample(&intra, mask, p1 as f64),
                    ..zero
                }
            }
        }
    }

    /// [`CostEngine::comm_time`] reconstructed from precomputed
    /// coefficients: bit-identical (the batch-invariant sub-terms are the
    /// stored *values* of the exact sub-expressions `comm_time` computes,
    /// and the remaining batch-dependent arithmetic mirrors its operation
    /// order), at a few flops per candidate instead of the full
    /// collective-model derivation. Debug builds assert the bit equality on
    /// every call, so every equivalence test crossing this path checks it
    /// for every scanned candidate.
    /// Dispatch is on the prep-row family byte ([`StrategyKind`] as `u8`),
    /// not the strategy itself, so the hot loop never loads or decodes the
    /// strategy column — every strategy-derived parameter is folded into
    /// `k` by [`CostEngine::comm_prep`]. `strategy` is a lazy accessor,
    /// only invoked by the debug-build bit-equality assert — release-mode
    /// hot loops never touch the strategy column here.
    #[inline]
    pub(crate) fn comm_time_prepped(
        &self,
        fam: u8,
        k: &CommCoef,
        strategy: impl Fn() -> Strategy,
    ) -> f64 {
        const SERIAL: u8 = StrategyKind::Serial as u8;
        const DATA: u8 = StrategyKind::Data as u8;
        const SPATIAL: u8 = StrategyKind::Spatial as u8;
        const FILTER: u8 = StrategyKind::Filter as u8;
        const CHANNEL: u8 = StrategyKind::Channel as u8;
        const PIPELINE: u8 = StrategyKind::Pipeline as u8;
        const DATA_FILTER: u8 = StrategyKind::DataFilter as u8;
        const DATA_SPATIAL: u8 = StrategyKind::DataSpatial as u8;
        let b = self.config.batch_size as f64;
        let iters = self.iters_f;
        let t = match fam {
            SERIAL => 0.0,
            DATA => iters * k.a,
            // Spatial and data+spatial share one shape: the shard divisor
            // of the per-sample halo volume is folded into `c` at prep time,
            // so both reduce to the same fused fixed-plus-slope form.
            SPATIAL | DATA_SPATIAL => {
                let ge = iters * k.a;
                let halo = 2.0 * (k.b + b * k.c);
                ge + iters * halo
            }
            FILTER | CHANNEL => iters * (k.d * (k.b + b * k.c)),
            PIPELINE => {
                // `d = p` flags a communicating pipeline (`comm_prep` stores
                // zero coefficients for `p ≤ 1`); `a` is the dataset
                // prefactor `2·D·(p + s − 2)`, `b`/`c` the effective link's
                // α and per-sample slope (zeroed for boundary-less
                // pipelines so `max_p2p` collapses to the direct path's
                // `0.0`). The one remaining division is by the cell batch.
                if k.d > 1.0 {
                    k.a / b * (k.b + b * k.c)
                } else {
                    0.0
                }
            }
            DATA_FILTER => {
                let fbcoll = iters * (k.d * (k.b + b * k.c));
                let ge = iters * k.a;
                ge + fbcoll
            }
            _ => unreachable!("family byte out of range"),
        };
        debug_assert_eq!(
            t.to_bits(),
            self.comm_time(strategy()).to_bits(),
            "prepped communication time diverged from comm_time for {}",
            strategy(),
        );
        t
    }

    /// Incremental cost estimate: like [`CostEngine::estimate`], but when
    /// `prev` is a same-kind neighbour (the sorted-superset order from
    /// [`crate::search`] places them adjacently) the sub-terms that provably
    /// cannot change are copied from `prev` instead of recomputed. Copies are
    /// bit-moves of values produced by the exact same expressions, so the
    /// result is *identical* to a fresh `estimate(next)` — equivalence is
    /// property-tested with exact `==`, stronger than the 1e-9 gate.
    ///
    /// Reuse table (terms not listed are recomputed):
    /// - `Data` → `Data`: weight-update (batch-dependent, `p`-invariant).
    /// - `Spatial` → `Spatial`: weight-update; same total also copies
    ///   forward/backward and gradient exchange; same halo mask (which dims
    ///   are split) also copies the halo term.
    /// - `Pipeline` → `Pipeline` at equal depth: weight-update (per-depth
    ///   stage aggregate, segment-invariant).
    /// - `DataFilter` → `DataFilter` at equal total: forward/backward.
    /// - `DataSpatial` → `DataSpatial`: weight-update; same total also
    ///   copies forward/backward.
    /// - `Filter`/`Channel` and every cross-kind pair: full re-estimate
    ///   (every term depends on the changed axis).
    ///
    /// `prev` must come from this engine at the current batch size (the
    /// copied terms are batch-dependent; this is the same contract as
    /// [`CostEngine::rebatch`] invalidating outstanding estimates).
    pub fn estimate_delta(&self, prev: &CostEstimate, next: Strategy) -> CostEstimate {
        let mem = self.memory_per_pe(next);
        self.estimate_delta_with_memory(prev, next, mem)
    }

    /// [`CostEngine::estimate_delta`] with a caller-computed memory value
    /// (the kernel's SoA prep columns already hold it).
    pub fn estimate_delta_with_memory(
        &self,
        prev: &CostEstimate,
        next: Strategy,
        memory_per_pe_bytes: f64,
    ) -> CostEstimate {
        debug_assert_eq!(
            prev.iterations, self.iters,
            "estimate_delta requires prev from the same engine and batch"
        );
        let core = &*self.core;
        let d = self.config.dataset_size as f64;
        let b = self.config.batch_size as f64;
        let iters = self.iters_f;
        let pe = &prev.per_epoch;
        let mut breakdown = PhaseBreakdown::default();
        match (prev.strategy, next) {
            (Strategy::Data { .. }, Strategy::Data { p }) => {
                breakdown.forward_backward = d / p as f64 * core.fw_bw_per_sample;
                breakdown.weight_update = pe.weight_update;
                breakdown.gradient_exchange = iters * self.weight_allreduce(p);
            }
            (Strategy::Spatial { split: prev_split }, Strategy::Spatial { split }) => {
                breakdown.weight_update = pe.weight_update;
                let p = split.total();
                let same_total = prev_split.total() == p;
                if same_total {
                    breakdown.forward_backward = pe.forward_backward;
                    breakdown.gradient_exchange = pe.gradient_exchange;
                } else {
                    breakdown.forward_backward = d / p as f64 * core.fw_bw_per_sample;
                    breakdown.gradient_exchange = iters * self.weight_allreduce(p);
                }
                let same_mask = (prev_split.pw > 1, prev_split.ph > 1, prev_split.pd > 1)
                    == (split.pw > 1, split.ph > 1, split.pd > 1);
                if same_total && same_mask {
                    breakdown.halo_exchange = pe.halo_exchange;
                } else {
                    let comm = self.cluster.comm_model(p);
                    breakdown.halo_exchange = iters * self.halo_time(&comm, split, 1.0, b);
                }
            }
            (Strategy::Pipeline { p: prev_p, .. }, Strategy::Pipeline { p, segments })
                if prev_p == p =>
            {
                let agg = self.pipeline_agg(p);
                let s = segments.max(1) as f64;
                let pf = p as f64;
                breakdown.forward_backward = d * (pf + s - 1.0) / s * (agg.max_fw + agg.max_bw);
                breakdown.weight_update = pe.weight_update;
                breakdown.pipeline_p2p = self.pipeline_p2p(p, segments);
            }
            (Strategy::DataFilter { p1: q1, p2: q2 }, Strategy::DataFilter { p1, p2 })
                if q1 * q2 == p1 * p2 =>
            {
                breakdown.forward_backward = pe.forward_backward;
                breakdown.weight_update = iters / p2 as f64 * core.wu_per_iteration;
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                breakdown.fb_collective = iters * self.layerwise_collective(&intra, p2, p1 * p2, b);
                breakdown.gradient_exchange = iters * self.df_allreduce(p1, p2);
            }
            (
                Strategy::DataSpatial { p1: q1, split: prev_split },
                Strategy::DataSpatial { p1, split },
            ) => {
                breakdown.weight_update = pe.weight_update;
                if q1 * prev_split.total() == p1 * split.total() {
                    breakdown.forward_backward = pe.forward_backward;
                } else {
                    let p = (p1 * split.total()) as f64;
                    breakdown.forward_backward = d / p * core.fw_bw_per_sample;
                }
                let p2 = split.total();
                let intra = self.cluster.comm_model(p2.min(self.cluster.gpus_per_node));
                breakdown.halo_exchange = iters * self.halo_time(&intra, split, p1 as f64, b);
                breakdown.gradient_exchange = iters * self.ds_allreduce(p1, p2);
            }
            (_, next) => return self.estimate_with_memory(next, memory_per_pe_bytes),
        }
        CostEstimate {
            strategy: next,
            per_epoch: breakdown,
            iterations: self.iters,
            memory_per_pe_bytes,
        }
    }

    /// Forward/backward and weight-update epoch times of `strategy` — the
    /// compute part shared by [`CostEngine::estimate_with_memory`] and
    /// [`CostEngine::lower_bound`].
    fn compute_terms(&self, strategy: Strategy) -> (f64, f64) {
        let core = &*self.core;
        let d = self.config.dataset_size as f64;
        let iters = self.iters_f;
        match strategy {
            Strategy::Serial => (d * core.fw_bw_per_sample, iters * core.wu_per_iteration),
            Strategy::Data { p } => {
                (d / p as f64 * core.fw_bw_per_sample, iters * core.wu_per_iteration)
            }
            Strategy::Spatial { split } => {
                (d / split.total() as f64 * core.fw_bw_per_sample, iters * core.wu_per_iteration)
            }
            Strategy::Filter { p } | Strategy::Channel { p } => {
                let pf = p as f64;
                (d / pf * core.fw_bw_per_sample, iters / pf * core.wu_per_iteration)
            }
            Strategy::Pipeline { p, segments } => {
                let agg = self.pipeline_agg(p);
                let s = segments.max(1) as f64;
                let pf = p as f64;
                (d * (pf + s - 1.0) / s * (agg.max_fw + agg.max_bw), iters * agg.max_wu)
            }
            Strategy::DataFilter { p1, p2 } => {
                let p = (p1 * p2) as f64;
                (d / p * core.fw_bw_per_sample, iters / p2 as f64 * core.wu_per_iteration)
            }
            Strategy::DataSpatial { p1, split } => {
                let p = (p1 * split.total()) as f64;
                (d / p * core.fw_bw_per_sample, iters * core.wu_per_iteration)
            }
        }
    }

    /// `Σ_l (2·batch·(|x|+|y|)/act_div + 2|w|/weight_div + |bi|)`, factored
    /// over the precomputed element totals. The batch enters here at query
    /// time — the totals themselves are batch-invariant.
    fn mem_raw(&self, act_div: f64, weight_div: f64, batch: f64) -> f64 {
        let core = &*self.core;
        2.0 * batch * core.act_io_sum / act_div + 2.0 * core.weight_sum / weight_div + core.bias_sum
    }

    /// Clamped index of pipeline depth `p` into the per-depth tables.
    fn depth_index(&self, p: usize) -> usize {
        p.clamp(1, self.core.pipeline.len().max(1)) - 1
    }

    fn pipeline_agg(&self, p: usize) -> PipelineAgg {
        self.core.pipeline[self.depth_index(p)]
    }

    /// Flat ring/tree Allreduce of the full weight buffer
    /// (`total_weight_bytes`) over `p` PEs, memoized for power-of-two `p`.
    fn weight_allreduce(&self, p: usize) -> f64 {
        if p.is_power_of_two() {
            if let Some(&t) = self.core.tables.flat.get(p.trailing_zeros() as usize) {
                return t;
            }
        }
        self.cluster.comm_model(p).allreduce(p, self.core.total_weight_bytes)
    }

    /// Data+filter gradient exchange: segmented inter-group Allreduce of the
    /// per-group weight shard (memoized for power-of-two `p1`, `p2`).
    fn df_allreduce(&self, p1: usize, p2: usize) -> f64 {
        if p1.is_power_of_two() && p2.is_power_of_two() {
            let (i, j) = (p1.trailing_zeros() as usize, p2.trailing_zeros() as usize);
            if let Some(&t) = self.core.tables.df.get(i).and_then(|row| row.get(j)) {
                return t;
            }
        }
        CollectiveTables::df_entry(self.cluster, self.core.total_weight_bytes, p1, p2)
    }

    /// Data+spatial gradient exchange: hierarchical leader-based Allreduce
    /// (memoized for power-of-two `p1`, `p2`).
    fn ds_allreduce(&self, p1: usize, p2: usize) -> f64 {
        if p1.is_power_of_two() && p2.is_power_of_two() {
            let (i, j) = (p1.trailing_zeros() as usize, p2.trailing_zeros() as usize);
            if let Some(&t) = self.core.tables.ds.get(i).and_then(|row| row.get(j)) {
                return t;
            }
        }
        CollectiveTables::ds_entry(self.cluster, self.core.total_weight_bytes, p1, p2)
    }

    /// Batch-invariant per-sample halo bytes·β for one split mask:
    /// `halo_elems/shard · δ · β` (`shard` is `1` for `Spatial`, the data
    /// replica count `p1` for `DataSpatial`). Every batch-dependent halo
    /// term is `batch · halo_per_sample(..)`, so [`CostEngine::comm_prep`]
    /// stores this value once per candidate and the reconstruction in
    /// `comm_time_prepped` is bit-identical by sharing this expression.
    #[inline]
    fn halo_per_sample(&self, comm: &CommModel, mask: usize, shard: f64) -> f64 {
        self.core.halo_elems[mask] / shard * self.config.bytes_per_item * comm.link.beta
    }

    /// Batch-invariant per-sample collective bytes·φ·β of filter/channel
    /// parallelism: `act_out_except_last/p_total · δ · φ · β`. Shared by
    /// the direct paths and [`CostEngine::comm_prep`] for the same
    /// bit-identity-by-construction reason as `halo_per_sample`.
    #[inline]
    fn collective_per_sample(&self, comm: &CommModel, p_total: usize) -> f64 {
        self.core.act_out_except_last / p_total as f64
            * self.config.bytes_per_item
            * comm.contention
            * comm.link.beta
    }

    /// Batch-invariant per-sample boundary-activation bytes·β of pipeline
    /// parallelism: `max_boundary_act/segments · δ · β_eff`.
    #[inline]
    fn boundary_per_sample(&self, act: f64, segments: f64, beta: f64) -> f64 {
        act / segments * self.config.bytes_per_item * beta
    }

    /// Halo-exchange time for one iteration over the precomputed
    /// per-split-mask aggregates (paper Eq. 10). `shard` divides the
    /// per-sample halo volume (data replicas process `batch/shard` samples
    /// each); the batch multiplies *last*, so the whole batch-dependence is
    /// one fused multiply-add over prep-stored coefficients.
    fn halo_time(&self, comm: &CommModel, split: SpatialSplit, shard: f64, batch: f64) -> f64 {
        let core = &*self.core;
        let mask = halo_mask(split);
        2.0 * (core.halo_pairs[mask] * 2.0 * comm.p2p(0.0)
            + batch * self.halo_per_sample(comm, mask, shard))
    }

    /// Layer-wise collective time of filter/channel parallelism for one
    /// iteration (paper Eq. 15/19), over the precomputed activation total.
    /// Batch-last form, like [`CostEngine::halo_time`].
    fn layerwise_collective(&self, comm: &CommModel, p: usize, p_total: usize, batch: f64) -> f64 {
        let core = &*self.core;
        if p <= 1 {
            return 0.0;
        }
        3.0 * (p as f64 - 1.0)
            * (core.collective_layers * comm.link.alpha
                + batch * self.collective_per_sample(comm, p_total))
    }

    /// Pipeline boundary-exchange epoch time (paper Eq. 23), shared by
    /// [`CostEngine::estimate_with_memory`], [`CostEngine::comm_time`] and
    /// [`CostEngine::estimate_delta_with_memory`] so the three paths stay
    /// bit-identical by construction. Batch-last form: the per-stage p2p
    /// is `α_eff + batch · boundary_per_sample(..)`.
    fn pipeline_p2p(&self, p: usize, segments: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let agg = self.pipeline_agg(p);
        let d = self.config.dataset_size as f64;
        let b = self.config.batch_size as f64;
        let s = segments.max(1) as f64;
        let pf = p as f64;
        let comm = self.cluster.comm_model(p.min(self.cluster.gpus_per_node.max(2)));
        let max_p2p = if agg.has_boundary {
            let eff = comm.link.with_contention(comm.contention);
            eff.alpha + b * self.boundary_per_sample(agg.max_boundary_act, s, eff.beta)
        } else {
            0.0
        };
        2.0 * d * (pf + s - 2.0) / b * max_p2p
    }
}

impl CollectiveTables {
    /// Evaluates the memoized collective times from the cluster's cached
    /// communication models. Value-identical to deriving each model on the
    /// fly (the fallback entries below), since the cache stores models, not
    /// times, and both paths share the same core formulas.
    fn build(cache: &ClusterCache, weight_bytes: f64) -> Self {
        let n = MAX_LOG2_PES + 1;
        let flat: Vec<f64> =
            (0..n).map(|i| cache.pow2(i).allreduce(1 << i, weight_bytes)).collect();
        let mut df = Vec::with_capacity(n);
        let mut ds = Vec::with_capacity(n);
        for i in 0..n {
            let mut df_row = Vec::with_capacity(n);
            let mut ds_row = Vec::with_capacity(n);
            for j in 0..n {
                if i + j <= MAX_LOG2_PES {
                    df_row.push(Self::df_core(
                        cache.inter_group(i, j),
                        cache.segmented_phi(j),
                        1 << i,
                        1 << j,
                        weight_bytes,
                    ));
                    ds_row.push(Self::ds_core(
                        cache.intra(j),
                        cache.inter_group(i, j),
                        1 << i,
                        1 << j,
                        weight_bytes,
                    ));
                } else {
                    break;
                }
            }
            df.push(df_row);
            ds.push(ds_row);
        }
        CollectiveTables { flat, df, ds }
    }

    /// Data+filter gradient-exchange time from already-derived communication
    /// models: the single formula shared by the power-of-two table above and
    /// the non-power-of-two fallback below, so the two can never drift.
    fn df_core(inter: &CommModel, phi: f64, p1: usize, p2: usize, weight_bytes: f64) -> f64 {
        inter.with_contention(phi).allreduce(p1, weight_bytes / p2 as f64)
    }

    /// Data+spatial gradient-exchange time from already-derived models (see
    /// [`CollectiveTables::df_core`]).
    fn ds_core(intra: &CommModel, inter: &CommModel, p1: usize, p2: usize, bytes: f64) -> f64 {
        hierarchical_allreduce_time(intra, inter, p2, p1, bytes)
    }

    fn df_entry(cluster: &ClusterSpec, weight_bytes: f64, p1: usize, p2: usize) -> f64 {
        Self::df_core(
            &cluster.comm_model_inter_group(p1, p2),
            segmented_allreduce_contention(cluster, p2),
            p1,
            p2,
            weight_bytes,
        )
    }

    fn ds_entry(cluster: &ClusterSpec, weight_bytes: f64, p1: usize, p2: usize) -> f64 {
        Self::ds_core(
            &cluster.comm_model(p2.min(cluster.gpus_per_node)),
            &cluster.comm_model_inter_group(p1, p2),
            p1,
            p2,
            weight_bytes,
        )
    }
}

/// FNV-1a 64-bit over a byte stream — the workspace has no external hashing
/// crates, and a stable, documented hash is preferable for fingerprints that
/// cross the serve wire anyway.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a cluster (device profile, shape and link
/// parameters — everything a [`ClusterCache`]'s topology tables depend on).
/// Two specs with equal `Debug` representations hash equally; `Debug` for
/// the float fields prints shortest-round-trip decimals, so distinct bit
/// patterns yield distinct strings.
pub fn cluster_fingerprint(cluster: &ClusterSpec) -> u64 {
    fnv1a(format!("{cluster:?}").into_bytes())
}

/// Stable fingerprint of the validity key of an [`EngineCore`]:
/// (model, cluster incl. device profile, `bytes_per_item`, `memory_reuse`).
/// Deliberately **excludes** `batch_size`, `dataset_size` and `epochs` —
/// cores are batch-invariant (see [`EngineCore`]), so one cached core
/// serves every batch/dataset variant of the same problem via
/// [`CostEngine::from_core`].
pub fn engine_fingerprint(model: &Model, cluster: &ClusterSpec, config: &TrainingConfig) -> u64 {
    let mut bytes = format!("{model:?}|{cluster:?}|").into_bytes();
    bytes.extend_from_slice(&config.bytes_per_item.to_bits().to_be_bytes());
    bytes.extend_from_slice(&config.memory_reuse.to_bits().to_be_bytes());
    fnv1a(bytes)
}

/// A tiny thread-safe LRU: a `Mutex`-guarded vec in recency order. Fine for
/// the capacities the serve daemon uses (tens of entries); lookups are
/// `O(len)` but each hit saves an `O(layers²)` engine build.
struct Lru<V: Clone> {
    entries: Mutex<Vec<(u64, V)>>,
    cap: usize,
}

impl<V: Clone> Lru<V> {
    fn new(cap: usize) -> Self {
        Lru { entries: Mutex::new(Vec::new()), cap }
    }

    /// Looks up `key`, promoting a hit to most-recent; on miss inserts
    /// `build()` and evicts the least-recent entry past capacity. Returns
    /// `(value, was_hit)`. With `cap == 0` the cache is disabled: every call
    /// builds fresh.
    fn get_or_insert(&self, key: u64, build: impl FnOnce() -> V) -> (V, bool) {
        self.try_get_or_insert::<std::convert::Infallible>(key, || Ok(build()))
            .unwrap_or_else(|never| match never {})
    }

    /// [`Lru::get_or_insert`] with a fallible builder: a build error
    /// propagates to the caller and nothing is inserted (a later lookup
    /// rebuilds).
    fn try_get_or_insert<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if self.cap == 0 {
            return Ok((build()?, false));
        }
        // Recover from poisoning rather than unwrap: the serve daemon runs
        // query evaluation under `catch_unwind`, and a panic while this lock
        // is held must cost that one request, not brick the cache (and with
        // it every future cached query) for the daemon's lifetime. The
        // guarded Vec is structurally valid at every await-free step above,
        // so the recovered state is safe to keep using.
        let mut entries = self.entries.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            let entry = entries.remove(pos);
            let value = entry.1.clone();
            entries.insert(0, entry);
            return Ok((value, true));
        }
        // Build while holding the lock: concurrent requests for the same key
        // then build once, and the daemon's batcher (the only heavy caller)
        // is single-threaded anyway.
        let value = build()?;
        entries.insert(0, (key, value.clone()));
        entries.truncate(self.cap);
        Ok((value, false))
    }

    /// Whether `key` is cached, without promoting it.
    fn contains(&self, key: u64) -> bool {
        self.cap != 0
            && self
                .entries
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .any(|(k, _)| *k == key)
    }
}

/// Cumulative hit/miss counters of an [`EngineCache`] (cores and cluster
/// caches pooled together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
}

/// A thread-safe LRU of [`EngineCore`]s and [`ClusterCache`]s, keyed by the
/// stable fingerprints above. This is the engine-reuse hook behind
/// `Oracle::engine()`'s per-instance caching, `GridSweep::run_cached`, and
/// the `paradl-serve` daemon's cross-request reuse: repeated queries against
/// the same (model, device, cluster, γ·δ) problem skip the `O(layers²)`
/// engine build and the topology-table derivation entirely, paying only the
/// `O(layers²)`-float [`CostEngine::rebatch`].
///
/// Capacity `0` disables caching (every lookup builds fresh) — used as the
/// serve daemon's no-reuse baseline.
pub struct EngineCache {
    cores: Lru<Arc<EngineCore>>,
    clusters: Lru<Arc<ClusterCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for EngineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCache")
            .field("cap", &self.cores.cap)
            .field("stats", &self.stats())
            .finish()
    }
}

impl EngineCache {
    /// A cache holding up to `cap` engine cores and `cap` cluster caches.
    pub fn new(cap: usize) -> Self {
        EngineCache {
            cores: Lru::new(cap),
            clusters: Lru::new(cap),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The core for `key` (an [`engine_fingerprint`]), building and caching
    /// it with `build` on a miss.
    pub fn core(&self, key: u64, build: impl FnOnce() -> Arc<EngineCore>) -> Arc<EngineCore> {
        let (core, hit) = self.cores.get_or_insert(key, build);
        self.count(hit);
        core
    }

    /// Like [`EngineCache::core`], but with a fallible builder: a build
    /// error ([`EngineError`]) propagates to the caller, nothing is cached,
    /// and the miss is still counted. Returns `(core, was_hit)` — the serve
    /// daemon's admission path uses the hit flag for its per-response
    /// `cache_hit` stat.
    pub fn try_core(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<Arc<EngineCore>, EngineError>,
    ) -> Result<(Arc<EngineCore>, bool), EngineError> {
        let result = self.cores.try_get_or_insert(key, build);
        if let Ok((_, hit)) = &result {
            self.count(*hit);
        } else {
            self.count(false);
        }
        result
    }

    /// The cluster cache for `key` (a [`cluster_fingerprint`]), building and
    /// caching it with `build` on a miss.
    pub fn cluster(
        &self,
        key: u64,
        build: impl FnOnce() -> Arc<ClusterCache>,
    ) -> Arc<ClusterCache> {
        let (cache, hit) = self.clusters.get_or_insert(key, build);
        self.count(hit);
        cache
    }

    /// Whether a core for `key` is currently cached (a non-promoting peek —
    /// the serve daemon uses this to report per-response `cache_hit` without
    /// perturbing recency).
    pub fn contains_core(&self, key: u64) -> bool {
        self.cores.contains(key)
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> EngineCacheStats {
        EngineCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::DeviceProfile;
    use crate::cost::estimate;
    use crate::layer::Layer;
    use crate::memory::memory_per_pe;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 16, (32, 32), 3, 1, 1),
                Layer::relu("r1", 16, &[32, 32]),
                Layer::pool2d("p1", 16, (32, 32), 2, 2),
                Layer::conv2d("c2", 16, 32, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 32, &[16, 16]),
                Layer::fully_connected("fc", 32, 10),
            ],
        )
    }

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy::Serial,
            Strategy::Data { p: 8 },
            Strategy::Data { p: 7 }, // non-power-of-two fallback path
            Strategy::Spatial { split: SpatialSplit { pw: 2, ph: 2, pd: 1 } },
            Strategy::Spatial { split: SpatialSplit { pw: 4, ph: 1, pd: 1 } },
            Strategy::Filter { p: 8 },
            Strategy::Channel { p: 8 },
            Strategy::Pipeline { p: 2, segments: 4 },
            Strategy::Pipeline { p: 4, segments: 1 },
            Strategy::DataFilter { p1: 4, p2: 2 },
            Strategy::DataFilter { p1: 3, p2: 2 },
            Strategy::DataSpatial { p1: 4, split: SpatialSplit { pw: 2, ph: 2, pd: 1 } },
        ]
    }

    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30)
    }

    #[test]
    fn engine_matches_reference_cost_model() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let engine = CostEngine::new(&m, &d, &c, cfg).expect("engine builds");
        for s in strategies() {
            let fast = engine.estimate(s);
            let slow = estimate(&m, &d, &c, &cfg, s);
            assert_eq!(fast.iterations, slow.iterations, "{s}");
            for (name, a, b) in [
                ("fw/bw", fast.per_epoch.forward_backward, slow.per_epoch.forward_backward),
                ("wu", fast.per_epoch.weight_update, slow.per_epoch.weight_update),
                ("ge", fast.per_epoch.gradient_exchange, slow.per_epoch.gradient_exchange),
                ("fb-coll", fast.per_epoch.fb_collective, slow.per_epoch.fb_collective),
                ("halo", fast.per_epoch.halo_exchange, slow.per_epoch.halo_exchange),
                ("p2p", fast.per_epoch.pipeline_p2p, slow.per_epoch.pipeline_p2p),
                ("mem", fast.memory_per_pe_bytes, slow.memory_per_pe_bytes),
            ] {
                assert!(rel_close(a, b), "{s}: {name} engine={a} reference={b}");
            }
        }
    }

    #[test]
    fn engine_memory_matches_reference() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let engine = CostEngine::new(&m, &d, &c, cfg).expect("engine builds");
        for s in strategies() {
            let fast = engine.memory_per_pe(s);
            let slow = memory_per_pe(&m, &cfg, s);
            assert!(rel_close(fast, slow), "{s}: engine={fast} reference={slow}");
        }
    }

    #[test]
    fn rebatch_is_byte_identical_to_fresh_build() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let base =
            CostEngine::new(&m, &d, &c, TrainingConfig::small(4096, 64)).expect("engine builds");
        for batch in [8usize, 32, 64, 96, 256] {
            let fresh = CostEngine::new(&m, &d, &c, TrainingConfig::small(4096, batch))
                .expect("engine builds");
            let rebatched = base.rebatched(batch);
            assert_eq!(rebatched.config(), fresh.config());
            for s in strategies() {
                // Exact equality, not tolerance: rebatch re-runs the same
                // arithmetic over the same shared tables.
                assert_eq!(
                    rebatched.memory_per_pe(s),
                    fresh.memory_per_pe(s),
                    "{s} memory at B={batch}"
                );
                assert_eq!(rebatched.estimate(s), fresh.estimate(s), "{s} estimate at B={batch}");
                assert_eq!(
                    rebatched.lower_bound(s),
                    fresh.lower_bound(s),
                    "{s} bound at B={batch}"
                );
            }
        }
    }

    #[test]
    fn rebatched_siblings_share_the_core() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let base =
            CostEngine::new(&m, &d, &c, TrainingConfig::small(4096, 64)).expect("engine builds");
        let sibling = base.rebatched(128);
        assert!(Arc::ptr_eq(&base.core, &sibling.core), "rebatch must not copy the core");
        assert_eq!(sibling.config().batch_size, 128);
        assert_eq!(base.config().batch_size, 64, "rebatched must not mutate the original");
    }

    #[test]
    fn memoized_collective_tables_match_fallback_formulas() {
        // The power-of-two tables are built from the ClusterCache's derived
        // communication models; the non-power-of-two runtime path derives
        // the models on the fly. Both must produce bit-identical times for
        // the sizes the tables cover (the cache holds models, not times,
        // and both paths share df_core/ds_core).
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let engine = CostEngine::with_cache(&m, &d, &c, cfg, &c.cache()).expect("engine builds");
        let w = m.total_weights() as f64 * cfg.bytes_per_item;
        let tables = &engine.core.tables;
        for i in 0..10usize {
            assert_eq!(tables.flat[i], c.comm_model(1 << i).allreduce(1 << i, w), "flat[{i}]");
            for j in 0..10usize {
                assert_eq!(
                    tables.df[i][j],
                    CollectiveTables::df_entry(&c, w, 1 << i, 1 << j),
                    "df[{i}][{j}]"
                );
                assert_eq!(
                    tables.ds[i][j],
                    CollectiveTables::ds_entry(&c, w, 1 << i, 1 << j),
                    "ds[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_admissible_and_equals_compute() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let engine = CostEngine::new(&m, &d, &c, cfg).expect("engine builds");
        for s in strategies() {
            let est = engine.estimate(s);
            let lb = engine.lower_bound(s);
            assert!(lb <= est.epoch_time(), "{s}: bound {lb} > total {}", est.epoch_time());
            assert_eq!(lb, est.per_epoch.compute(), "{s}: bound must equal the compute part");
        }
    }

    #[test]
    fn limits_match_direct_validation() {
        let m = model();
        let limits = ModelLimits::of(&m);
        assert_eq!(limits.num_layers, m.num_layers());
        assert_eq!(limits.min_filters, m.min_filters());
        assert_eq!(limits.min_spatial_size, m.min_spatial_size());
        let batch = 64;
        let candidates = [
            Strategy::Serial,
            Strategy::Data { p: 64 },
            Strategy::Data { p: 65 },
            Strategy::Filter { p: 10 },
            Strategy::Filter { p: 11 },
            Strategy::Channel { p: 16 },
            Strategy::Channel { p: 17 },
            Strategy::Pipeline { p: 6, segments: 4 },
            Strategy::Pipeline { p: 7, segments: 4 },
            Strategy::Pipeline { p: 2, segments: 65 },
            Strategy::Spatial { split: SpatialSplit { pw: 16, ph: 16, pd: 1 } },
            Strategy::Spatial { split: SpatialSplit { pw: 32, ph: 16, pd: 1 } },
            Strategy::DataFilter { p1: 64, p2: 10 },
            Strategy::DataFilter { p1: 65, p2: 10 },
            Strategy::DataSpatial { p1: 8, split: SpatialSplit { pw: 2, ph: 2, pd: 1 } },
        ];
        for s in candidates {
            assert_eq!(
                limits.is_valid(s, batch),
                s.validate(&m, batch).is_ok(),
                "limits/validate disagree on {s}"
            );
        }
        for kind in StrategyKind::ALL {
            assert_eq!(limits.max_pes(batch, kind), Strategy::max_pes(&m, batch, kind));
        }
    }

    #[test]
    fn balanced_groups_replicates_model_grouping() {
        let m = model();
        let flops: Vec<u64> =
            m.layers.iter().map(|l| l.flops_forward() + l.flops_backward()).collect();
        for p in 1..=m.num_layers() + 2 {
            assert_eq!(
                balanced_groups(&flops, p),
                m.balanced_pipeline_groups(p.min(m.num_layers()).max(1)),
                "grouping diverges at p={p}"
            );
        }
    }

    #[test]
    fn from_core_is_byte_identical_to_fresh_build() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let base =
            CostEngine::new(&m, &d, &c, TrainingConfig::small(4096, 64)).expect("engine builds");
        let core = base.core_handle();
        // Different batch AND different dataset size: neither is baked into
        // the core, so hydration must still match a fresh build exactly.
        let cfg = TrainingConfig::small(8192, 96);
        let hydrated = CostEngine::from_core(&m, &c, cfg, core).expect("hydration succeeds");
        let fresh = CostEngine::new(&m, &d, &c, cfg).expect("engine builds");
        assert_eq!(hydrated.config(), fresh.config());
        for s in strategies() {
            assert_eq!(hydrated.estimate(s), fresh.estimate(s), "{s}");
            assert_eq!(hydrated.memory_per_pe(s), fresh.memory_per_pe(s), "{s} memory");
            assert_eq!(hydrated.lower_bound(s), fresh.lower_bound(s), "{s} bound");
        }
        assert!(Arc::ptr_eq(&base.core, &hydrated.core), "hydration must share the core");
    }

    #[test]
    fn engine_fingerprint_ignores_batch_but_not_problem() {
        let m = model();
        let c = ClusterSpec::paper_system();
        let cfg_a = TrainingConfig::small(4096, 64);
        let mut cfg_b = cfg_a;
        cfg_b.batch_size = 256;
        cfg_b.dataset_size = 9999;
        cfg_b.epochs = 3;
        // Batch/dataset/epochs are not part of the core's validity key.
        assert_eq!(engine_fingerprint(&m, &c, &cfg_a), engine_fingerprint(&m, &c, &cfg_b));
        // δ and γ are.
        let mut cfg_c = cfg_a;
        cfg_c.memory_reuse = 0.5;
        assert_ne!(engine_fingerprint(&m, &c, &cfg_a), engine_fingerprint(&m, &c, &cfg_c));
        // So are the model and the cluster.
        let c2 = ClusterSpec::workstation(8);
        assert_ne!(engine_fingerprint(&m, &c, &cfg_a), engine_fingerprint(&m, &c2, &cfg_a));
        assert_ne!(cluster_fingerprint(&c), cluster_fingerprint(&c2));
        assert_eq!(cluster_fingerprint(&c), cluster_fingerprint(&ClusterSpec::paper_system()));
    }

    #[test]
    fn engine_cache_hits_reuse_and_evict_lru() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let key = engine_fingerprint(&m, &c, &cfg);
        let cache = EngineCache::new(2);
        let build = || CostEngine::new(&m, &d, &c, cfg).expect("engine builds").core_handle();
        let first = cache.core(key, build);
        assert!(cache.contains_core(key));
        let second = cache.core(key, || panic!("must not rebuild on a hit"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), EngineCacheStats { hits: 1, misses: 1 });
        // Fill past capacity: the least-recently-used key falls out.
        cache.core(key ^ 1, build);
        cache.core(key ^ 2, build);
        assert!(!cache.contains_core(key), "LRU entry should have been evicted");
        assert!(cache.contains_core(key ^ 2));
        // Capacity 0 disables caching entirely.
        let off = EngineCache::new(0);
        off.core(key, build);
        assert!(!off.contains_core(key));
        assert_eq!(off.stats(), EngineCacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn three_d_halo_masks_cover_depth_splits() {
        let m = Model::new(
            "3d",
            4,
            vec![16, 16, 16],
            vec![
                Layer::conv3d("c1", 4, 8, (16, 16, 16), 3, 1, 1),
                Layer::global_pool("g", 8, &[16, 16, 16]),
                Layer::fully_connected("fc", 8, 4),
            ],
        );
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(1024, 32);
        let engine = CostEngine::new(&m, &d, &c, cfg).expect("engine builds");
        for split in [
            SpatialSplit { pw: 2, ph: 1, pd: 1 },
            SpatialSplit { pw: 1, ph: 2, pd: 1 },
            SpatialSplit { pw: 1, ph: 1, pd: 2 },
            SpatialSplit { pw: 2, ph: 2, pd: 2 },
        ] {
            let s = Strategy::Spatial { split };
            let fast = engine.estimate(s).per_epoch.halo_exchange;
            let slow = estimate(&m, &d, &c, &cfg, s).per_epoch.halo_exchange;
            assert!(rel_close(fast, slow), "{s}: halo engine={fast} reference={slow}");
            assert!(fast > 0.0, "{s}: expected a non-zero halo");
        }
    }

    #[test]
    fn degenerate_specs_fail_construction_with_a_diagnostic() {
        let m = model();
        let c = ClusterSpec::paper_system();
        // A zero batch is a typed Config error, not a divide-by-zero panic.
        let err = CostEngine::new(&m, &DeviceProfile::v100(), &c, TrainingConfig::small(4096, 0))
            .expect_err("zero batch must not build");
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        assert!(err.to_string().contains("invalid config"), "{err}");
        // A zero-rate device turns layer times into Inf: NonFinite names the
        // poisoned table instead of letting Inf reach a ranking.
        let mut dead = DeviceProfile::v100();
        dead.peak_flops = 0.0;
        let err = CostEngine::new(&m, &dead, &c, TrainingConfig::small(4096, 64))
            .expect_err("zero-rate device must not build");
        match &err {
            EngineError::NonFinite { table, .. } => assert_eq!(*table, "layer_times"),
            other => panic!("expected NonFinite, got {other}"),
        }
        // Hydration re-checks the config too.
        let good = CostEngine::new(&m, &DeviceProfile::v100(), &c, TrainingConfig::small(4096, 64))
            .expect("engine builds");
        let err = CostEngine::from_core(&m, &c, TrainingConfig::small(4096, 0), good.core_handle())
            .expect_err("zero batch must not hydrate");
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn try_core_propagates_errors_without_caching() {
        let m = model();
        let d = DeviceProfile::v100();
        let c = ClusterSpec::paper_system();
        let cfg = TrainingConfig::small(4096, 64);
        let key = engine_fingerprint(&m, &c, &cfg);
        let cache = EngineCache::new(4);
        let err = cache
            .try_core(key, || Err(EngineError::Config("nope".into())))
            .expect_err("builder error propagates");
        assert_eq!(err, EngineError::Config("nope".into()));
        assert!(!cache.contains_core(key), "a failed build must not be cached");
        let (core, hit) = cache
            .try_core(key, || Ok(CostEngine::new(&m, &d, &c, cfg).unwrap().core_handle()))
            .expect("build succeeds");
        assert!(!hit);
        assert!(cache.contains_core(key));
        let (again, hit) = cache.try_core(key, || panic!("must not rebuild on a hit")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&core, &again));
    }
}
