//! Parallelization strategies (paper Section 3) and their scaling limits
//! (last column of Table 3).

use crate::model::Model;
use std::fmt;

/// How the spatial dimensions are factored over PEs in spatial parallelism:
/// `p = p_w × p_h × p_d` (depth only for 3-D inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpatialSplit {
    /// Split factor along the width dimension.
    pub pw: usize,
    /// Split factor along the height dimension.
    pub ph: usize,
    /// Split factor along the depth dimension (1 for 2-D inputs).
    pub pd: usize,
}

impl SpatialSplit {
    /// A split over `p` PEs along a single (width) dimension.
    pub fn width_only(p: usize) -> Self {
        SpatialSplit { pw: p, ph: 1, pd: 1 }
    }

    /// Factors `p` as evenly as possible into two dimensions (width × height).
    pub fn balanced_2d(p: usize) -> Self {
        let (a, b) = closest_factor_pair(p);
        SpatialSplit { pw: a, ph: b, pd: 1 }
    }

    /// Factors `p` as evenly as possible into three dimensions.
    pub fn balanced_3d(p: usize) -> Self {
        // Find the factorization (a, b, c) of p minimizing max/min ratio.
        let mut best = (p, 1, 1);
        let mut best_spread = p;
        for a in 1..=p {
            if !p.is_multiple_of(a) {
                continue;
            }
            let rest = p / a;
            for b in 1..=rest {
                if !rest.is_multiple_of(b) {
                    continue;
                }
                let c = rest / b;
                let mx = a.max(b).max(c);
                let mn = a.min(b).min(c);
                if mx - mn < best_spread {
                    best_spread = mx - mn;
                    best = (a, b, c);
                }
            }
        }
        SpatialSplit { pw: best.0, ph: best.1, pd: best.2 }
    }

    /// Total number of PEs `p = p_w · p_h · p_d`.
    pub fn total(&self) -> usize {
        self.pw * self.ph * self.pd
    }

    /// Per-dimension split factors as a slice-compatible vector
    /// `[pw, ph, pd]` truncated to the model's spatial rank.
    pub fn factors(&self, rank: usize) -> Vec<usize> {
        let all = [self.pw, self.ph, self.pd];
        all[..rank.min(3)].to_vec()
    }
}

fn closest_factor_pair(p: usize) -> (usize, usize) {
    let mut best = (1, p);
    let mut a = 1;
    while a * a <= p {
        if p.is_multiple_of(a) {
            best = (a, p / a);
        }
        a += 1;
    }
    best
}

/// A parallelization strategy with its total PE count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Sequential baseline on a single PE.
    Serial,
    /// Data parallelism over `p` PEs (mini-batch split).
    Data {
        /// Number of PEs.
        p: usize,
    },
    /// Spatial (height/width/depth) parallelism.
    Spatial {
        /// Per-dimension split factors.
        split: SpatialSplit,
    },
    /// Filter (output-channel) parallelism over `p` PEs.
    Filter {
        /// Number of PEs.
        p: usize,
    },
    /// Channel (input-channel) parallelism over `p` PEs.
    Channel {
        /// Number of PEs.
        p: usize,
    },
    /// Layer (pipeline) parallelism over `p` composite layers with `s`
    /// micro-batch segments (GPipe-style).
    Pipeline {
        /// Number of pipeline stages (composite layers).
        p: usize,
        /// Number of micro-batch segments `S`.
        segments: usize,
    },
    /// Hybrid data (between `p1` groups) + filter (within groups of `p2`).
    DataFilter {
        /// Number of data-parallel groups.
        p1: usize,
        /// Filter-parallel PEs per group.
        p2: usize,
    },
    /// Hybrid data (between `p1` groups) + spatial (within groups of `p2`).
    DataSpatial {
        /// Number of data-parallel groups.
        p1: usize,
        /// Spatial split used within each group.
        split: SpatialSplit,
    },
}

impl Strategy {
    /// Total number of PEs `p` used by the strategy.
    pub fn total_pes(&self) -> usize {
        match *self {
            Strategy::Serial => 1,
            Strategy::Data { p } | Strategy::Filter { p } | Strategy::Channel { p } => p,
            Strategy::Spatial { split } => split.total(),
            Strategy::Pipeline { p, .. } => p,
            Strategy::DataFilter { p1, p2 } => p1 * p2,
            Strategy::DataSpatial { p1, split } => p1 * split.total(),
        }
    }

    /// Short lowercase label used in reports (`d`, `s`, `p`, `f`, `c`, `df`,
    /// `ds`), matching the paper's notation.
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::Serial => "serial",
            Strategy::Data { .. } => "d",
            Strategy::Spatial { .. } => "s",
            Strategy::Filter { .. } => "f",
            Strategy::Channel { .. } => "c",
            Strategy::Pipeline { .. } => "p",
            Strategy::DataFilter { .. } => "df",
            Strategy::DataSpatial { .. } => "ds",
        }
    }

    /// Number of data-parallel replicas (groups whose gradients are averaged
    /// in the gradient-exchange phase).
    pub fn data_groups(&self) -> usize {
        match *self {
            Strategy::Data { p } => p,
            Strategy::Spatial { .. } => 1,
            Strategy::DataFilter { p1, .. } | Strategy::DataSpatial { p1, .. } => p1,
            _ => 1,
        }
    }

    /// Maximum PE count the strategy admits for a given model and global
    /// mini-batch size (paper Table 3, last column).
    pub fn max_pes(model: &Model, batch: usize, kind: StrategyKind) -> usize {
        match kind {
            StrategyKind::Serial => 1,
            StrategyKind::Data => batch,
            StrategyKind::Spatial => model.min_spatial_size(),
            StrategyKind::Filter => model.min_filters(),
            StrategyKind::Channel => model.min_channels_after_first(),
            StrategyKind::Pipeline => model.num_layers(),
            // Saturating: a hostile batch must clamp, not overflow — the result
            // is only ever min'ed against budgets (and must stay equal to
            // `ModelLimits::max_pes`, which saturates the same way).
            StrategyKind::DataFilter => batch.saturating_mul(model.min_filters()),
            StrategyKind::DataSpatial => batch.saturating_mul(model.min_spatial_size()),
        }
    }

    /// The kind of this strategy (without the PE counts).
    pub fn kind(&self) -> StrategyKind {
        match self {
            Strategy::Serial => StrategyKind::Serial,
            Strategy::Data { .. } => StrategyKind::Data,
            Strategy::Spatial { .. } => StrategyKind::Spatial,
            Strategy::Filter { .. } => StrategyKind::Filter,
            Strategy::Channel { .. } => StrategyKind::Channel,
            Strategy::Pipeline { .. } => StrategyKind::Pipeline,
            Strategy::DataFilter { .. } => StrategyKind::DataFilter,
            Strategy::DataSpatial { .. } => StrategyKind::DataSpatial,
        }
    }

    /// Validates the strategy against the scaling limits of `model` with the
    /// given global mini-batch size. Returns a description of the violated
    /// limit on failure.
    pub fn validate(&self, model: &Model, batch: usize) -> Result<(), String> {
        let p = self.total_pes();
        if p == 0 {
            return Err("strategy uses zero PEs".into());
        }
        match *self {
            Strategy::Serial => Ok(()),
            Strategy::Data { p } => {
                if p > batch {
                    Err(format!("data parallelism needs p ≤ B ({p} > {batch})"))
                } else {
                    Ok(())
                }
            }
            Strategy::Spatial { split } => {
                let lim = model.min_spatial_size();
                if split.total() > lim {
                    Err(format!(
                        "spatial parallelism needs p ≤ min(W·H) ({} > {lim})",
                        split.total()
                    ))
                } else {
                    Ok(())
                }
            }
            Strategy::Filter { p } => {
                let lim = model.min_filters();
                if p > lim {
                    Err(format!("filter parallelism needs p ≤ min F_l ({p} > {lim})"))
                } else {
                    Ok(())
                }
            }
            Strategy::Channel { p } => {
                let lim = model.min_channels_after_first();
                if p > lim {
                    Err(format!("channel parallelism needs p ≤ min C_l ({p} > {lim})"))
                } else {
                    Ok(())
                }
            }
            Strategy::Pipeline { p, segments } => {
                if p > model.num_layers() {
                    Err(format!("pipeline parallelism needs p ≤ G ({p} > {})", model.num_layers()))
                } else if segments == 0 {
                    Err("pipeline needs at least one segment".into())
                } else if segments > batch {
                    Err(format!(
                        "pipeline segments must not exceed the mini-batch (S={segments} > B={batch})"
                    ))
                } else {
                    Ok(())
                }
            }
            Strategy::DataFilter { p1, p2 } => {
                if p1 > batch {
                    return Err(format!("data groups must be ≤ B ({p1} > {batch})"));
                }
                let lim = model.min_filters();
                if p2 > lim {
                    return Err(format!("filter split must be ≤ min F_l ({p2} > {lim})"));
                }
                Ok(())
            }
            Strategy::DataSpatial { p1, split } => {
                if p1 > batch {
                    return Err(format!("data groups must be ≤ B ({p1} > {batch})"));
                }
                let lim = model.min_spatial_size();
                if split.total() > lim {
                    return Err(format!(
                        "spatial split must be ≤ min(W·H) ({} > {lim})",
                        split.total()
                    ));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Strategy::Serial => write!(f, "serial"),
            Strategy::Data { p } => write!(f, "data(p={p})"),
            Strategy::Spatial { split } => {
                write!(f, "spatial(pw={},ph={},pd={})", split.pw, split.ph, split.pd)
            }
            Strategy::Filter { p } => write!(f, "filter(p={p})"),
            Strategy::Channel { p } => write!(f, "channel(p={p})"),
            Strategy::Pipeline { p, segments } => write!(f, "pipeline(p={p},S={segments})"),
            Strategy::DataFilter { p1, p2 } => write!(f, "data+filter(p1={p1},p2={p2})"),
            Strategy::DataSpatial { p1, split } => {
                write!(f, "data+spatial(p1={p1},pw={},ph={},pd={})", split.pw, split.ph, split.pd)
            }
        }
    }
}

/// Strategy family without parameters, used for enumerating sweeps and for
/// the `max_pes` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Single-PE sequential execution.
    Serial,
    /// Data parallelism.
    Data,
    /// Spatial parallelism.
    Spatial,
    /// Filter parallelism.
    Filter,
    /// Channel parallelism.
    Channel,
    /// Layer/pipeline parallelism.
    Pipeline,
    /// Hybrid data+filter.
    DataFilter,
    /// Hybrid data+spatial.
    DataSpatial,
}

impl StrategyKind {
    /// All the strategy families evaluated in the paper.
    pub const ALL: [StrategyKind; 8] = [
        StrategyKind::Serial,
        StrategyKind::Data,
        StrategyKind::Spatial,
        StrategyKind::Filter,
        StrategyKind::Channel,
        StrategyKind::Pipeline,
        StrategyKind::DataFilter,
        StrategyKind::DataSpatial,
    ];

    /// The six non-serial strategies from the evaluation (Figure 3 columns
    /// plus the CosmoFlow data+spatial case).
    pub const EVALUATED: [StrategyKind; 6] = [
        StrategyKind::Data,
        StrategyKind::Filter,
        StrategyKind::Channel,
        StrategyKind::Pipeline,
        StrategyKind::DataFilter,
        StrategyKind::DataSpatial,
    ];
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyKind::Serial => "serial",
            StrategyKind::Data => "data",
            StrategyKind::Spatial => "spatial",
            StrategyKind::Filter => "filter",
            StrategyKind::Channel => "channel",
            StrategyKind::Pipeline => "pipeline",
            StrategyKind::DataFilter => "data+filter",
            StrategyKind::DataSpatial => "data+spatial",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn model() -> Model {
        Model::new(
            "m",
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 16, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 16, (32, 32), 2, 2),
                Layer::conv2d("c2", 16, 32, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 32, &[16, 16]),
                Layer::fully_connected("fc", 32, 10),
            ],
        )
    }

    #[test]
    fn spatial_split_factorization() {
        assert_eq!(SpatialSplit::balanced_2d(16), SpatialSplit { pw: 4, ph: 4, pd: 1 });
        assert_eq!(SpatialSplit::balanced_2d(8).total(), 8);
        assert_eq!(SpatialSplit::balanced_3d(8), SpatialSplit { pw: 2, ph: 2, pd: 2 });
        assert_eq!(SpatialSplit::width_only(7).total(), 7);
        assert_eq!(SpatialSplit::balanced_3d(27).total(), 27);
    }

    #[test]
    fn total_pes_per_strategy() {
        assert_eq!(Strategy::Serial.total_pes(), 1);
        assert_eq!(Strategy::Data { p: 64 }.total_pes(), 64);
        assert_eq!(Strategy::DataFilter { p1: 16, p2: 4 }.total_pes(), 64);
        assert_eq!(
            Strategy::DataSpatial { p1: 8, split: SpatialSplit::balanced_2d(4) }.total_pes(),
            32
        );
    }

    #[test]
    fn validation_enforces_scaling_limits() {
        let m = model();
        // min filters = 10 (fc), so filter parallelism with 16 fails.
        assert!(Strategy::Filter { p: 16 }.validate(&m, 64).is_err());
        assert!(Strategy::Filter { p: 10 }.validate(&m, 64).is_ok());
        // channel limit after first layer: min(16, 32) = 16.
        assert!(Strategy::Channel { p: 16 }.validate(&m, 64).is_ok());
        assert!(Strategy::Channel { p: 17 }.validate(&m, 64).is_err());
        // data cannot exceed batch size.
        assert!(Strategy::Data { p: 128 }.validate(&m, 64).is_err());
        // pipeline limited by layer count.
        assert!(Strategy::Pipeline { p: 6, segments: 4 }.validate(&m, 64).is_err());
        assert!(Strategy::Pipeline { p: 4, segments: 4 }.validate(&m, 64).is_ok());
        // pipeline segments bounded by batch.
        assert!(Strategy::Pipeline { p: 2, segments: 128 }.validate(&m, 64).is_err());
    }

    #[test]
    fn max_pes_matches_table3() {
        let m = model();
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::Data), 64);
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::Filter), 10);
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::Channel), 16);
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::Pipeline), 5);
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::Spatial), 16 * 16);
        assert_eq!(Strategy::max_pes(&m, 64, StrategyKind::DataFilter), 640);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Strategy::Data { p: 8 }.to_string(), "data(p=8)");
        assert_eq!(Strategy::DataFilter { p1: 4, p2: 2 }.to_string(), "data+filter(p1=4,p2=2)");
        assert_eq!(StrategyKind::DataSpatial.to_string(), "data+spatial");
    }
}
