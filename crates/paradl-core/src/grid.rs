//! Amortized multi-query oracle: evaluate a whole configuration grid
//! (model × global batch × cluster) at near-single-query cost.
//!
//! The oracle is most useful when queried many times — across models, batch
//! sizes, clusters and PE budgets, exactly the grids the paper's tables and
//! figures sweep. A naive sweep calls [`Oracle::search`] per cell and pays,
//! for every cell, a full [`CostEngine`] tabulation, a candidate-space
//! enumeration (including its serial sort) and the evaluation pass.
//! [`GridSweep`] answers the same grid while amortizing everything shareable:
//!
//! * **engines** — one [`CostEngine`] per (model, cluster) pair; the other
//!   batches of the grid get [`CostEngine::rebatch`]ed siblings that share
//!   every batch-invariant table through the engine's `Arc`-held core,
//! * **topology tables** — one [`ClusterCache`] per cluster
//!   ([`std::sync::Arc`]-shared), so every engine on a cluster reuses its
//!   communication-model derivations,
//! * **candidate spaces** — one enumerated superset per model at the
//!   largest batch; each batch's space is an order-preserving `O(1)`-per-
//!   candidate filter of the superset (valid because every batch-dependent
//!   enumeration bound is also checked by [`ModelLimits::is_valid`], and
//!   validity is monotone in the batch, so each candidate resolves its
//!   validity once at the smallest admitting batch), so the `O(n log n)`
//!   sort+dedup runs once per model instead of once per cell,
//! * **evaluation prep** — per-PE memory and the compute-only lower bound
//!   are cluster-independent given the device profile, so one
//!   structure-of-arrays prep pass per (model, batch, device) feeds every
//!   cluster cell sharing that device: the memory pruning, its counter, and
//!   the bound column are computed once instead of once per cell,
//! * **reporting** — in top-k mode only the `k` best and the per-budget
//!   winners are reported, so they are folded incrementally (two relaxed
//!   atomic reads for the common non-improving candidate) instead of
//!   materializing the hundreds of thousands of costed candidates per cell
//!   that the streaming search would collect and re-scan,
//! * **parallelism** — evaluation is split into fixed-size candidate chunks
//!   interleaved round-robin across *all* cells and run rayon-parallel, so
//!   one huge query (a CosmoFlow-scale exhaustive space) doesn't serialize
//!   the sweep behind it, and per-query serial phases (enumeration, final
//!   ranking sort) run concurrently across cells,
//! * **allocation** — the chunk columns come from the shared prep tables
//!   and each worker reuses a thread-local survivor buffer, so the
//!   per-candidate hot path allocates nothing,
//! * **analytic evaluation** — the chunks run through the
//!   [`crate::kernel`] module: a fused memory+bound prep pass
//!   ([`CostEngine::prep_terms`]), static dominance bounds seeded per cell
//!   (seed *selection* reuses the device-dependent prep columns across
//!   clusters; seed *times* are costed per cell because communication is
//!   cluster-dependent), a branchless mask pass over the `lbs` column, and
//!   incremental [`CostEngine::estimate_delta_with_memory`] chains in
//!   full-ranking mode. Which engine tables the delta path may reuse is
//!   documented in the `engine` module (batch-invariant vs batch-dependent
//!   — load-bearing, exactly as with [`CostEngine::rebatch`]).
//!   [`GridSweep::run_mechanical`] keeps the pre-kernel path as the
//!   measured baseline of `bench_kernel_summary`.
//!
//! Set `PARADL_GRID_TRACE=1` to print per-stage wall-clock timings of a
//! sweep to stderr ([`GridSweep::run_timed`] returns them
//! programmatically), and `PARADL_CHUNK` to override the evaluation chunk
//! granularity.
//!
//! The sweep is *exact*: every cell's [`SearchReport`] has the same
//! `enumerated`/`pruned_by_memory` counts, ranking and budget winners as a
//! per-query [`Oracle::search`] at that cell's configuration (byte-identical
//! projections — rebatched engines are bit-equal to freshly built ones, and
//! the search reduction is order-independent). Only the prune-accounting
//! split may differ: the analytic kernel reports deterministic
//! `pruned_by_dominance` counts (and zero `pruned_by_bound`), while the
//! streaming baseline reports dynamic `pruned_by_bound` counts that already
//! vary between two runs of the parallel search. Property-tested in
//! `tests/proptest_grid.rs`; [`GridSweep::run_per_query`] keeps the naive
//! sweep as the equivalence baseline and benchmark reference
//! (`paradl-bench/benches/grid.rs`, the `bench_grid_summary` binary, and
//! `bench_kernel_summary`, which gates the kernel's ≥ 5× candidates/sec
//! trajectory on the same paper-scale grid).

use crate::cluster::{ClusterCache, ClusterSpec};
use crate::config::TrainingConfig;
use crate::engine::CommCoef;
use crate::engine::{
    cluster_fingerprint, engine_fingerprint, CostEngine, EngineCache, ModelLimits,
};
use crate::kernel::{chunk_from_env, eval_chunk_kernel, select_seeds, KernelColumns, StaticBounds};
use crate::model::Model;
use crate::oracle::{Constraints, Oracle, Projection};
use crate::search::{
    budget_index, candidate_cmp, evaluate_pruned_with_bound, finish_report, finish_report_topk,
    RankedCandidate, SearchReport, SearchShared, StrategySpace,
};
use crate::strategy::Strategy;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// One model entry of a [`QueryGrid`]: the model plus its base training
/// configuration (dataset size, datum width, memory-reuse factor). The
/// grid's batch axis overrides `base.batch_size` per cell.
#[derive(Debug, Clone)]
pub struct GridModel {
    /// The CNN model.
    pub model: Model,
    /// Base training configuration; `batch_size` is replaced per grid cell.
    pub base: TrainingConfig,
}

impl GridModel {
    /// The cell configuration at global batch `batch`.
    pub fn config_at(&self, batch: usize) -> TrainingConfig {
        TrainingConfig { batch_size: batch, ..self.base }
    }
}

/// Coordinates of one grid cell: indices into the grid's model and cluster
/// axes plus the global batch *value* of the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridQuery {
    /// Index into [`QueryGrid::models`].
    pub model: usize,
    /// Index into [`QueryGrid::clusters`].
    pub cluster: usize,
    /// Global mini-batch size of this cell.
    pub batch: usize,
}

/// A batched set of oracle queries: the cross product of models (with their
/// base configurations), global batch sizes, and clusters, all searched
/// under one [`Constraints`]. Build with the `with_*` methods, evaluate with
/// a [`GridSweep`].
///
/// Each cluster's [`ClusterSpec::device`] profile provides the per-layer
/// compute times for the cells on that cluster.
#[derive(Debug, Clone)]
pub struct QueryGrid {
    models: Vec<GridModel>,
    batches: Vec<usize>,
    clusters: Vec<ClusterSpec>,
    constraints: Constraints,
}

impl QueryGrid {
    /// An empty grid evaluated under `constraints`.
    pub fn new(constraints: Constraints) -> Self {
        QueryGrid { models: Vec::new(), batches: Vec::new(), clusters: Vec::new(), constraints }
    }

    /// Adds a model with its base training configuration (the grid's batch
    /// axis overrides `base.batch_size`).
    pub fn with_model(mut self, model: Model, base: TrainingConfig) -> Self {
        self.models.push(GridModel { model, base });
        self
    }

    /// Adds global batch sizes to the batch axis.
    pub fn with_batches(mut self, batches: impl IntoIterator<Item = usize>) -> Self {
        self.batches.extend(batches);
        self
    }

    /// Adds a cluster (its [`ClusterSpec::device`] provides the compute
    /// model for the cells on it).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// The model axis.
    pub fn models(&self) -> &[GridModel] {
        &self.models
    }

    /// The global-batch axis.
    pub fn batches(&self) -> &[usize] {
        &self.batches
    }

    /// The cluster axis.
    pub fn clusters(&self) -> &[ClusterSpec] {
        &self.clusters
    }

    /// The shared search constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Number of cells (`models × batches × clusters`).
    pub fn num_queries(&self) -> usize {
        self.models.len() * self.batches.len() * self.clusters.len()
    }

    /// The cell coordinates in evaluation order: model-major, then batch,
    /// then cluster — the order of [`GridReport::cells`].
    pub fn queries(&self) -> Vec<GridQuery> {
        let mut out = Vec::with_capacity(self.num_queries());
        for m in 0..self.models.len() {
            for &batch in &self.batches {
                for c in 0..self.clusters.len() {
                    out.push(GridQuery { model: m, cluster: c, batch });
                }
            }
        }
        out
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The cell's coordinates.
    pub query: GridQuery,
    /// The cell's search result — identical to what a per-query
    /// [`Oracle::search`] at this configuration returns.
    pub report: SearchReport,
}

/// The result of a grid sweep: one [`GridCell`] per query, in
/// [`QueryGrid::queries`] order.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Evaluated cells (model-major, then batch, then cluster).
    pub cells: Vec<GridCell>,
}

impl GridReport {
    /// Number of evaluated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the report has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell for (model index, batch value, cluster index), if present.
    pub fn get(&self, model: usize, batch: usize, cluster: usize) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.query.model == model && c.query.batch == batch && c.query.cluster == cluster
        })
    }

    /// Per-cell winner extraction: the `n` fastest ranked candidates of
    /// every cell (fewer where the ranking is shorter), in cell order.
    /// Cells where nothing was feasible yield an empty slice. This is the
    /// list a conformance harness replays through a measurement source to
    /// build a [`crate::validate::FidelityReport`].
    pub fn winners(&self, n: usize) -> Vec<(GridQuery, &[RankedCandidate])> {
        self.cells.iter().map(|c| (c.query, c.report.top(n))).collect()
    }
}

/// Per-(model, batch, device) evaluation tables, shared by every cell whose
/// cluster carries that device profile: the filtered candidate count, the
/// memory-pruned count, and the memory-feasible candidates as
/// structure-of-arrays columns (strategy, per-PE memory, compute-only lower
/// bound) in deterministic enumeration order. Per-PE memory is
/// cluster-independent and the lower bound only depends on the device, so
/// one prep pass — enumeration filter, memory pruning, bound tabulation —
/// serves every cluster sharing the device instead of being repeated per
/// cell.
struct PreppedSpace {
    /// Candidates enumerated for this (model, batch) under the constraints.
    enumerated: usize,
    /// Of those, how many the memory-capacity check removed.
    mem_pruned: usize,
    /// Memory-feasible candidates, in enumeration order.
    cands: Vec<Strategy>,
    /// Per-PE memory column, aligned with `cands`.
    mems: Vec<f64>,
    /// Compute-only lower-bound column, aligned with `cands`.
    lbs: Vec<f64>,
    /// PE-budget slot column (`budget_index` of each candidate, ≤ 64 so it
    /// fits a byte), aligned with `cands`. Analytic mode only.
    slots: Vec<u8>,
    /// Seed-panel indices into `cands` (per-(family, slot) lower-bound
    /// minima; device-dependent but cluster-independent, so selected once
    /// per prep and costed per cell). Analytic mode only.
    seeds: Vec<usize>,
    /// Superset index of each feasible candidate (`cands[i]` is
    /// `superset[sup[i]]`), linking the prep rows to the per-(model,
    /// cluster) communication-coefficient columns. Analytic mode only.
    sup: Vec<u32>,
    /// Strategy-family byte per candidate ([`crate::strategy::StrategyKind`]
    /// as `u8`) — the kernel's communication dispatch, so the hot loop
    /// never decodes the strategy column. Analytic mode only.
    fams: Vec<u8>,
}

impl PreppedSpace {
    fn empty_per_batch(batches: &[usize]) -> Vec<PreppedSpace> {
        batches
            .iter()
            .map(|_| PreppedSpace {
                enumerated: 0,
                mem_pruned: 0,
                cands: Vec::new(),
                mems: Vec::new(),
                lbs: Vec::new(),
                slots: Vec::new(),
                seeds: Vec::new(),
                sup: Vec::new(),
                fams: Vec::new(),
            })
            .collect()
    }

    /// Batch indices in ascending batch order (validity at one batch
    /// implies validity at every larger one).
    fn batch_order(batches: &[usize]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..batches.len()).collect();
        order.sort_by_key(|&i| batches[i]);
        order
    }

    /// Builds the prep tables of one (model, device) for *every* batch of
    /// the grid in a single superset pass: candidate validity is monotone in
    /// the batch (every batch-dependent bound is a `≤ batch` comparison), so
    /// each candidate's validity is resolved once at the smallest admitting
    /// batch instead of being re-checked per batch. `base` is any engine of
    /// the (model, device) pair; per-batch siblings are rebatched from it.
    ///
    /// The analytic prep: memory and the lower bound come from the fused
    /// [`CostEngine::prep_terms`] pass, the budget-slot and seed-panel
    /// columns for the kernel are tabulated alongside, and — for the
    /// non-pipeline families, whose per-PE memory is provably nondecreasing
    /// in the batch (`2·batch·act/div + const`) — a candidate that exceeds
    /// the capacity at one batch skips the memory computation at every
    /// larger batch (it still counts as enumerated and memory-pruned
    /// there, so the accounting is unchanged).
    fn build_all(
        superset: &[Strategy],
        limits: &ModelLimits,
        base: &CostEngine<'_>,
        batches: &[usize],
        constraints: &Constraints,
    ) -> Vec<PreppedSpace> {
        let engines: Vec<CostEngine<'_>> = batches.iter().map(|&b| base.rebatched(b)).collect();
        let mut preps = PreppedSpace::empty_per_batch(batches);
        let order = PreppedSpace::batch_order(batches);
        for (si, &strategy) in superset.iter().enumerate() {
            let mut j = 0;
            while j < order.len() && !limits.is_valid(strategy, batches[order[j]]) {
                j += 1;
            }
            let slot = budget_index(strategy.total_pes()) as u8;
            let fam = strategy.kind() as u8;
            // Pipeline memory is a per-depth table, not the shared
            // `2·batch·act + const` form, so the monotone early-break only
            // applies to the other families.
            let monotone = !matches!(strategy, Strategy::Pipeline { .. });
            let mut infeasible = false;
            for &bi in &order[j..] {
                let prep = &mut preps[bi];
                prep.enumerated += 1;
                if infeasible {
                    continue;
                }
                let (mem, lb) = engines[bi].prep_terms(strategy);
                if mem > constraints.memory_capacity_bytes {
                    infeasible = monotone;
                    continue;
                }
                prep.cands.push(strategy);
                prep.mems.push(mem);
                prep.lbs.push(lb);
                prep.slots.push(slot);
                prep.sup.push(si as u32);
                prep.fams.push(fam);
            }
        }
        let n_slots = budget_index(constraints.max_pes.max(1)) + 1;
        for prep in &mut preps {
            prep.mem_pruned = prep.enumerated - prep.cands.len();
            prep.seeds = select_seeds(&prep.cands, &prep.lbs, &prep.slots, n_slots);
        }
        preps
    }

    /// The pre-kernel (mechanical) prep: separate `memory_per_pe` and
    /// `lower_bound` calls per candidate, no slot/seed columns, no
    /// early-break. Kept verbatim as the baseline side of
    /// [`GridSweep::run_mechanical`] so the kernel's speedup is measured
    /// against the real predecessor, not a strawman.
    fn build_all_mechanical(
        superset: &[Strategy],
        limits: &ModelLimits,
        base: &CostEngine<'_>,
        batches: &[usize],
        constraints: &Constraints,
    ) -> Vec<PreppedSpace> {
        let engines: Vec<CostEngine<'_>> = batches.iter().map(|&b| base.rebatched(b)).collect();
        let mut preps = PreppedSpace::empty_per_batch(batches);
        let order = PreppedSpace::batch_order(batches);
        for &strategy in superset {
            let mut j = 0;
            while j < order.len() && !limits.is_valid(strategy, batches[order[j]]) {
                j += 1;
            }
            for &bi in &order[j..] {
                let prep = &mut preps[bi];
                prep.enumerated += 1;
                let mem = engines[bi].memory_per_pe(strategy);
                if mem > constraints.memory_capacity_bytes {
                    continue;
                }
                prep.cands.push(strategy);
                prep.mems.push(mem);
                prep.lbs.push(engines[bi].lower_bound(strategy));
            }
        }
        for prep in &mut preps {
            prep.mem_pruned = prep.enumerated - prep.cands.len();
        }
        preps
    }
}

/// Per-(model, cluster) batch-invariant communication columns, aligned
/// with the model's candidate superset: one [`CommCoef`] row per superset
/// candidate, from which the kernel's fused evaluation pass reconstructs
/// every candidate's *exact* communication time
/// ([`CostEngine::comm_time_prepped`]) — the collective/link derivations
/// behind `comm_time` are tabulated once per (model, cluster) pair
/// instead of being re-derived in every batch's cell.
struct CommColumns {
    /// Coefficient rows, indexed by superset row.
    coef: Vec<CommCoef>,
}

/// Per-worker reusable survivor buffer, retaining its capacity across
/// chunks so the evaluation hot path never allocates.
#[derive(Default)]
struct EvalScratch {
    found: Vec<RankedCandidate>,
}

thread_local! {
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

/// Evaluates one candidate chunk of one cell through its engine. The
/// chunk's structure-of-arrays columns come from the cell's
/// [`PreppedSpace`], so per-PE memory and the compute lower bound are read
/// instead of recomputed. Costing goes through the exact per-candidate
/// logic of the streaming search, so chunked and per-query evaluation
/// agree; in top-k mode the per-budget winners are folded incrementally
/// instead of materializing every costed candidate.
fn eval_chunk(cell: &CellCtx<'_, '_>, lo: usize, hi: usize, constraints: &Constraints) {
    let (cands, mems, lbs) =
        (&cell.prep.cands[lo..hi], &cell.prep.mems[lo..hi], &cell.prep.lbs[lo..hi]);
    let shared = &cell.shared;
    if constraints.top_k.is_some() {
        // Top-k reporting only needs the k best (tracked inside `shared`)
        // and the per-budget winners — fold both incrementally instead of
        // materializing every costed candidate. The typical candidate
        // improves neither, so it exits after two relaxed atomic reads
        // without assembling a `RankedCandidate`; the shared-state
        // transitions are exactly those of the streaming search's
        // `observe` (skipping only its no-op updates), so the final
        // report is identical.
        for (i, &strategy) in cands.iter().enumerate() {
            if shared.should_prune(lbs[i], &strategy) {
                shared.count_bound_pruned();
                continue;
            }
            let cost = cell.engine.estimate_with_memory(strategy, mems[i]);
            let time = cost.epoch_time();
            let idx = budget_index(strategy.total_pes());
            let improves_budget = time <= shared.budget_best_time(idx);
            if !improves_budget && time > shared.threshold_time() {
                continue;
            }
            let c = RankedCandidate {
                strategy,
                projection: Projection { cost, fits_memory: true, within_scaling_limit: true },
            };
            if improves_budget {
                shared.record_budget(idx, time);
                let mut slot = cell.winners[idx].lock().expect("winner slot poisoned");
                let better = slot
                    .map(|cur| candidate_cmp(&c, &cur) == std::cmp::Ordering::Less)
                    .unwrap_or(true);
                if better {
                    *slot = Some(c);
                }
            }
            shared.offer_topk(&c);
        }
        return;
    }
    // Full-ranking mode: every costed candidate is a survivor; batch them
    // through the per-worker scratch to keep lock traffic at one append per
    // chunk.
    SCRATCH.with(|tls| {
        let scratch = &mut *tls.borrow_mut();
        scratch.found.clear();
        for (i, &strategy) in cands.iter().enumerate() {
            if let Some(c) = evaluate_pruned_with_bound(
                &cell.engine,
                strategy,
                mems[i],
                lbs[i],
                constraints,
                shared,
            ) {
                scratch.found.push(c);
            }
        }
        if !scratch.found.is_empty() {
            cell.found
                .lock()
                .expect("grid survivor accumulator poisoned")
                .append(&mut scratch.found);
        }
    });
}

/// One in-flight cell of a sweep.
struct CellCtx<'a, 'w> {
    query: GridQuery,
    engine: CostEngine<'a>,
    prep: &'w PreppedSpace,
    shared: SearchShared,
    /// Static dominance-prune bounds derived from the prep's seed panel
    /// through this cell's engine (analytic mode only).
    bounds: Option<StaticBounds>,
    /// The (model, cluster) pair's batch-invariant communication columns,
    /// superset-aligned (empty in mechanical mode).
    comm: Option<&'w CommColumns>,
    /// Survivor accumulator (full-ranking mode, `top_k == None`).
    found: Mutex<Vec<RankedCandidate>>,
    /// Per-budget-slot running winners (top-k mode).
    winners: Vec<Mutex<Option<RankedCandidate>>>,
}

/// Which candidate-evaluation path a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalMode {
    /// The analytic kernel ([`crate::kernel`]): static dominance bounds,
    /// branchless mask filtering, incremental cost deltas.
    Analytic,
    /// The pre-kernel path: one full estimate per candidate with dynamic
    /// branch-and-bound checks. Kept as the measured baseline.
    Mechanical,
}

/// Per-stage wall-clock seconds of one [`GridSweep::run_timed`] sweep,
/// reported by `bench_kernel_summary` so the kernel's per-stage trajectory
/// (prep, evaluation) is visible next to the end-to-end number.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridStageTimings {
    /// Cluster topology-cache derivation.
    pub caches: f64,
    /// Candidate-superset enumeration (one per model).
    pub supersets: f64,
    /// Engine builds (one per model × cluster).
    pub engines: f64,
    /// SoA prep passes (enumeration filter, memory pruning, bound/slot
    /// tabulation, seed selection).
    pub preps: f64,
    /// Batch-invariant communication-coefficient columns (one per
    /// model × cluster pair).
    pub comms: f64,
    /// Cell-context assembly (rebatched engines, static bounds).
    pub cells: f64,
    /// Chunked candidate evaluation — the kernel hot loop.
    pub eval: f64,
    /// Final per-cell ranking and report assembly.
    pub finish: f64,
}

/// Evaluates a [`QueryGrid`], amortizing engines, topology caches and
/// candidate enumeration across cells (see the [module docs](crate::grid)).
#[derive(Debug, Clone)]
pub struct GridSweep {
    /// Candidates per work unit of the interleaved evaluation.
    chunk: usize,
    /// Evaluation path (analytic kernel by default).
    mode: EvalMode,
}

impl Default for GridSweep {
    fn default() -> Self {
        GridSweep::new()
    }
}

impl GridSweep {
    /// A sweep through the analytic kernel with the default work-splitting
    /// granularity ([`PARADL_CHUNK`-overridable](crate::kernel); the
    /// default is picked by the chunk sweep in `BENCH_kernel.json` — small
    /// enough that a paper-scale query splits into many units, large
    /// enough that chunk dispatch and mask-pass overhead stay negligible).
    pub fn new() -> Self {
        GridSweep { chunk: chunk_from_env(), mode: EvalMode::Analytic }
    }

    /// Overrides the candidates-per-chunk granularity (clamped to ≥ 1).
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Alias for [`GridSweep::with_chunk_size`].
    pub fn with_chunk(self, chunk: usize) -> Self {
        self.with_chunk_size(chunk)
    }

    /// Evaluates every cell of `grid`, returning one [`SearchReport`] per
    /// cell in [`QueryGrid::queries`] order — each identical to what
    /// [`Oracle::search`] would return for that cell (modulo the
    /// non-deterministic `pruned_by_bound` counter).
    pub fn run(&self, grid: &QueryGrid) -> GridReport {
        self.run_with(grid, None).0
    }

    /// Like [`GridSweep::run`], but also returns per-stage wall-clock
    /// timings (used by `bench_kernel_summary` to report the prep/eval
    /// split of the kernel trajectory).
    pub fn run_timed(&self, grid: &QueryGrid) -> (GridReport, GridStageTimings) {
        self.run_with(grid, None)
    }

    /// Runs the sweep through the pre-kernel (mechanical) evaluation path:
    /// reference enumeration, separate memory/bound prep calls, and one
    /// full cost estimate per surviving candidate with dynamic
    /// branch-and-bound checks. Produces the same reports as
    /// [`GridSweep::run`] (modulo the bound/dominance counters — the
    /// mechanical path counts dynamic bound prunes where the kernel counts
    /// static dominance prunes); kept as the measured baseline the
    /// analytic kernel's speedup gate compares against.
    pub fn run_mechanical(&self, grid: &QueryGrid) -> (GridReport, GridStageTimings) {
        GridSweep { chunk: self.chunk, mode: EvalMode::Mechanical }.run_with(grid, None)
    }

    /// Like [`GridSweep::run`], but sourcing engine cores and cluster caches
    /// from (and contributing them back to) an [`EngineCache`], so *repeated*
    /// sweeps over the same (model, device, cluster, γ·δ) problems skip the
    /// engine builds entirely — the cross-request amortization behind the
    /// `paradl-serve` daemon. Exactly the same results as [`GridSweep::run`]:
    /// a hydrated engine is byte-for-byte identical to a fresh build
    /// ([`CostEngine::from_core`]).
    pub fn run_cached(&self, grid: &QueryGrid, cache: &EngineCache) -> GridReport {
        self.run_with(grid, Some(cache)).0
    }

    fn run_with(
        &self,
        grid: &QueryGrid,
        ecache: Option<&EngineCache>,
    ) -> (GridReport, GridStageTimings) {
        let mut timings = GridStageTimings::default();
        let queries = grid.queries();
        if queries.is_empty() {
            return (GridReport { cells: Vec::new() }, timings);
        }
        let trace = std::env::var_os("PARADL_GRID_TRACE").is_some();
        let mut last = std::time::Instant::now();
        let mut stage = move |name: &str| -> f64 {
            let elapsed = last.elapsed().as_secs_f64();
            last = std::time::Instant::now();
            if trace {
                eprintln!("[grid] {name:>10}: {:>8.1} ms", elapsed * 1e3);
            }
            elapsed
        };
        let analytic = self.mode == EvalMode::Analytic;
        let n_clusters = grid.clusters.len();
        let max_batch = *grid.batches.iter().max().expect("non-empty batch axis");
        let constraints = &grid.constraints;

        // Shared per-cluster topology caches, sourced from the engine cache
        // when one is supplied (the cache stores models, not times, so the
        // derived engines are identical either way).
        let caches: Vec<Arc<ClusterCache>> = grid
            .clusters
            .iter()
            .map(|c| match ecache {
                Some(ec) => ec.cluster(cluster_fingerprint(c), || Arc::new(ClusterCache::new(c))),
                None => Arc::new(ClusterCache::new(c)),
            })
            .collect();

        timings.caches = stage("caches");
        // Per-model scaling limits (cheap, needed by both stages below).
        let limits: Vec<ModelLimits> =
            grid.models.iter().map(|gm| ModelLimits::of(&gm.model)).collect();

        // One candidate superset per model, enumerated at the largest batch;
        // models enumerate in parallel (the sort inside is each model's
        // serial bottleneck in the per-query path). The mechanical baseline
        // keeps the pre-kernel sort-based enumeration.
        let supersets: Vec<Vec<Strategy>> = (0..grid.models.len())
            .into_par_iter()
            .map(|m| {
                if analytic {
                    StrategySpace::with_limits(max_batch, constraints, &limits[m]).into_vec()
                } else {
                    StrategySpace::with_limits_reference(max_batch, constraints, &limits[m])
                        .into_vec()
                }
            })
            .collect();

        timings.supersets = stage("supersets");
        // One engine per (model, cluster) pair, sharing the cluster caches;
        // every batch of the grid reuses the pair's batch-invariant core.
        let engines: Vec<CostEngine<'_>> = (0..grid.models.len() * n_clusters)
            .into_par_iter()
            .map(|i| {
                let (m, c) = (i / n_clusters, i % n_clusters);
                let gm = &grid.models[m];
                let cluster = &grid.clusters[c];
                let config = gm.config_at(max_batch);
                // The grid's workloads are vetted/curated upstream; an
                // unbuildable engine here is a caller bug, not a request.
                match ecache {
                    Some(ec) => {
                        let core =
                            ec.core(engine_fingerprint(&gm.model, cluster, &gm.base), || {
                                CostEngine::with_cache(
                                    &gm.model,
                                    &cluster.device,
                                    cluster,
                                    config,
                                    &caches[c],
                                )
                                .expect("grid engine build failed")
                                .core_handle()
                            });
                        CostEngine::from_core(&gm.model, cluster, config, core)
                            .expect("grid engine hydration failed")
                    }
                    None => CostEngine::with_cache(
                        &gm.model,
                        &cluster.device,
                        cluster,
                        config,
                        &caches[c],
                    )
                    .expect("grid engine build failed"),
                }
            })
            .collect();

        timings.engines = stage("engines");
        // Group clusters by device profile: per-PE memory and the compute
        // lower bound are cluster-independent given the device, so one prep
        // pass per (model, batch, device) serves every cluster in the group.
        let mut group_of = Vec::with_capacity(n_clusters);
        let mut group_reps: Vec<usize> = Vec::new();
        for (c, cluster) in grid.clusters.iter().enumerate() {
            match group_reps.iter().position(|&r| grid.clusters[r].device == cluster.device) {
                Some(g) => group_of.push(g),
                None => {
                    group_of.push(group_reps.len());
                    group_reps.push(c);
                }
            }
        }
        let n_groups = group_reps.len();

        // Per-(model, device) prepped spaces covering the whole batch axis:
        // one superset pass enumerates, memory-prunes and bound-tabulates
        // every batch's candidates.
        let preps: Vec<Vec<PreppedSpace>> = (0..grid.models.len() * n_groups)
            .into_par_iter()
            .map(|i| {
                let (m, g) = (i / n_groups, i % n_groups);
                let build = if analytic {
                    PreppedSpace::build_all
                } else {
                    PreppedSpace::build_all_mechanical
                };
                build(
                    &supersets[m],
                    &limits[m],
                    &engines[m * n_clusters + group_reps[g]],
                    &grid.batches,
                    constraints,
                )
            })
            .collect();

        timings.preps = stage("preps");
        // Per-(model, cluster) communication columns, aligned with the
        // model's candidate superset: the batch-invariant parts of every
        // candidate's communication time (collective times, link
        // parameters — the dominant per-candidate cost) are tabulated once
        // per pair instead of being re-derived in every batch's cell.
        // Rows no batch's prep references (invalid or memory-infeasible at
        // every batch) are skipped.
        let coefs: Vec<CommColumns> = if analytic {
            let used: Vec<Vec<bool>> = (0..grid.models.len() * n_groups)
                .map(|i| {
                    let m = i / n_groups;
                    let mut used = vec![false; supersets[m].len()];
                    for prep in &preps[i] {
                        for &si in &prep.sup {
                            used[si as usize] = true;
                        }
                    }
                    used
                })
                .collect();
            (0..grid.models.len() * n_clusters)
                .into_par_iter()
                .map(|i| {
                    let (m, c) = (i / n_clusters, i % n_clusters);
                    let engine = &engines[i];
                    let used = &used[m * n_groups + group_of[c]];
                    let coef = supersets[m]
                        .iter()
                        .zip(used)
                        .map(|(&s, &u)| if u { engine.comm_prep(s) } else { CommCoef::default() })
                        .collect();
                    CommColumns { coef }
                })
                .collect()
        } else {
            Vec::new()
        };

        timings.comms = stage("comms");
        // Cell contexts: a rebatched engine sibling plus the shared search
        // state each cell's chunks reduce into. The memory-pruned count is
        // seeded from the prep (the per-query search counts it before bound
        // pruning, so the accounting matches); in analytic mode the cell's
        // static dominance bounds are derived here, costing the prep's seed
        // panel through the cell's own engine (communication is cluster-
        // dependent, so seed *times* are per cell even though seed
        // *selection* is per prep).
        let cells: Vec<CellCtx<'_, '_>> = queries
            .iter()
            .map(|&query| {
                let b = grid.batches.iter().position(|&x| x == query.batch).expect("own axis");
                let prep = &preps[query.model * n_groups + group_of[query.cluster]][b];
                let shared = SearchShared::new(constraints);
                shared.set_memory_pruned(prep.mem_pruned);
                let winners = (0..shared.num_budget_slots()).map(|_| Mutex::new(None)).collect();
                let engine =
                    engines[query.model * n_clusters + query.cluster].rebatched(query.batch);
                let bounds = analytic.then(|| {
                    StaticBounds::from_seeds(
                        &engine,
                        &prep.cands,
                        &prep.lbs,
                        &prep.slots,
                        &prep.seeds,
                        &shared,
                    )
                });
                let comm = analytic.then(|| &coefs[query.model * n_clusters + query.cluster]);
                CellCtx {
                    query,
                    engine,
                    prep,
                    shared,
                    bounds,
                    comm,
                    found: Mutex::new(Vec::new()),
                    winners,
                }
            })
            .collect();

        timings.cells = stage("cells");
        // Candidate-level work splitting: fixed-size chunks, interleaved
        // round-robin across cells so a huge cell spreads over all workers
        // instead of pinning one. Round-robin also runs every cell's
        // lowest-bound chunk first, tightening the pruning thresholds before
        // the (wholesale-prunable) tails are touched.
        let chunk = self.chunk;
        let mut items: Vec<(usize, usize)> = Vec::new();
        let mut round = 0usize;
        loop {
            let mut any = false;
            for (ci, cell) in cells.iter().enumerate() {
                if round * chunk < cell.prep.cands.len() {
                    items.push((ci, round));
                    any = true;
                }
            }
            if !any {
                break;
            }
            round += 1;
        }
        let _: Vec<()> = items
            .par_iter()
            .map(|&(ci, round)| {
                let cell = &cells[ci];
                let lo = round * chunk;
                let hi = (lo + chunk).min(cell.prep.cands.len());
                if analytic {
                    let bounds = cell.bounds.as_ref().expect("analytic cells carry bounds");
                    let comm = cell.comm.expect("analytic cells carry comm columns");
                    eval_chunk_kernel(
                        &cell.engine,
                        KernelColumns {
                            cands: &cell.prep.cands,
                            mems: &cell.prep.mems,
                            lbs: &cell.prep.lbs,
                            slots: &cell.prep.slots,
                            sup: &cell.prep.sup,
                            fams: &cell.prep.fams,
                            coef: &comm.coef,
                        },
                        bounds,
                        lo,
                        hi,
                        constraints,
                        &cell.shared,
                        &cell.winners,
                        &cell.found,
                    );
                } else {
                    eval_chunk(cell, lo, hi, constraints);
                }
            })
            .collect();

        timings.eval = stage("eval");
        // Per-cell final ranking, in parallel across cells.
        let cells: Vec<GridCell> = cells
            .into_par_iter()
            .map(|cell| {
                let report = if constraints.top_k.is_some() {
                    let slot_best = cell
                        .winners
                        .into_iter()
                        .map(|slot| slot.into_inner().expect("winner slot poisoned"))
                        .collect();
                    finish_report_topk(cell.prep.enumerated, slot_best, constraints, cell.shared)
                } else {
                    let survivors = cell.found.into_inner().expect("grid accumulator poisoned");
                    finish_report(cell.prep.enumerated, survivors, constraints, cell.shared)
                };
                GridCell { query: cell.query, report }
            })
            .collect();
        timings.finish = stage("finish");
        (GridReport { cells }, timings)
    }

    /// The naive sweep: one streaming [`Oracle::search_streaming`] per
    /// cell, each building its own engine and enumerating its own candidate
    /// space. Kept as the equivalence baseline ([`GridSweep::run`] must
    /// reproduce it cell for cell) and as the benchmark reference the ≥ 5×
    /// amortization target is measured against — pinned to the streaming
    /// (pre-kernel) evaluation so the baseline does not silently inherit
    /// the analytic kernel's speedup through [`Oracle::search`].
    pub fn run_per_query(&self, grid: &QueryGrid) -> GridReport {
        let cells = grid
            .queries()
            .into_iter()
            .map(|query| {
                let gm = &grid.models[query.model];
                let cluster = &grid.clusters[query.cluster];
                let oracle =
                    Oracle::new(&gm.model, &cluster.device, cluster, gm.config_at(query.batch));
                let engine = oracle.engine();
                GridCell { query, report: oracle.search_streaming(&engine, &grid.constraints) }
            })
            .collect();
        GridReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::oracle::PeSweep;

    fn model(seed: usize) -> Model {
        Model::new(
            format!("m{seed}"),
            3,
            vec![32, 32],
            vec![
                Layer::conv2d("c1", 3, 32 + 16 * seed, (32, 32), 3, 1, 1),
                Layer::pool2d("p1", 32 + 16 * seed, (32, 32), 2, 2),
                Layer::conv2d("c2", 32 + 16 * seed, 64, (16, 16), 3, 1, 1),
                Layer::global_pool("g", 64, &[16, 16]),
                Layer::fully_connected("fc", 64, 10),
            ],
        )
    }

    fn small_grid(constraints: Constraints) -> QueryGrid {
        QueryGrid::new(constraints)
            .with_model(model(0), TrainingConfig::small(8192, 64))
            .with_model(model(1), TrainingConfig::small(4096, 64))
            .with_batches([32usize, 64, 96])
            .with_cluster(ClusterSpec::paper_system())
            .with_cluster(ClusterSpec::workstation(8))
    }

    fn assert_reports_equal(a: &SearchReport, b: &SearchReport, what: &str) {
        assert_eq!(a.enumerated, b.enumerated, "{what}: enumerated");
        assert_eq!(a.pruned_by_memory, b.pruned_by_memory, "{what}: memory-pruned");
        assert_eq!(a.ranked.len(), b.ranked.len(), "{what}: ranked length");
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.strategy, y.strategy, "{what}: ranked strategy");
            assert_eq!(x.projection, y.projection, "{what}: ranked projection");
        }
        assert_eq!(a.best_per_budget.len(), b.best_per_budget.len(), "{what}: budgets");
        for (x, y) in a.best_per_budget.iter().zip(&b.best_per_budget) {
            assert_eq!(x.max_pes, y.max_pes, "{what}: budget");
            assert_eq!(x.candidate.strategy, y.candidate.strategy, "{what}: budget winner");
            assert_eq!(x.candidate.projection, y.candidate.projection, "{what}: budget proj");
        }
    }

    #[test]
    fn filtered_superset_equals_direct_enumeration() {
        for sweep in [PeSweep::PowersOfTwo, PeSweep::Exhaustive] {
            let constraints =
                Constraints { max_pes: 256, sweep, pipeline_segments: 16, ..Default::default() };
            let m = model(0);
            let limits = ModelLimits::of(&m);
            let max_batch = 96;
            let superset: Vec<Strategy> =
                StrategySpace::with_limits(max_batch, &constraints, &limits).into_vec();
            for batch in [17usize, 32, 64, 96] {
                let filtered: Vec<Strategy> =
                    superset.iter().copied().filter(|&s| limits.is_valid(s, batch)).collect();
                let direct: Vec<Strategy> =
                    StrategySpace::with_limits(batch, &constraints, &limits).into_vec();
                assert_eq!(filtered, direct, "sweep {sweep:?}, batch {batch}");
            }
        }
    }

    #[test]
    fn sweep_matches_per_query_search() {
        let grid = small_grid(Constraints { max_pes: 256, ..Default::default() });
        let sweep = GridSweep::new().with_chunk_size(64); // force many chunks
        let fast = sweep.run(&grid);
        let slow = sweep.run_per_query(&grid);
        let (mech, _) = sweep.run_mechanical(&grid);
        assert_eq!(fast.len(), grid.num_queries());
        assert_eq!(fast.len(), slow.len());
        for ((a, b), m) in fast.cells.iter().zip(&slow.cells).zip(&mech.cells) {
            assert_eq!(a.query, b.query);
            assert_reports_equal(&a.report, &b.report, &format!("{:?}", a.query));
            assert_reports_equal(&a.report, &m.report, &format!("mech {:?}", a.query));
        }
    }

    #[test]
    fn sweep_matches_per_query_search_with_pruning() {
        let grid = small_grid(Constraints {
            max_pes: 256,
            top_k: Some(7),
            sweep: PeSweep::Exhaustive,
            ..Default::default()
        });
        let sweep = GridSweep::new().with_chunk_size(128);
        let fast = sweep.run(&grid);
        let slow = sweep.run_per_query(&grid);
        let (mech, _) = sweep.run_mechanical(&grid);
        for ((a, b), m) in fast.cells.iter().zip(&slow.cells).zip(&mech.cells) {
            assert_eq!(a.query, b.query);
            assert_reports_equal(&a.report, &b.report, &format!("{:?}", a.query));
            assert_reports_equal(&a.report, &m.report, &format!("mech {:?}", a.query));
        }
        // The kernel's static prune accounting is deterministic: two runs
        // report the same dominance count, and the dynamic bound counter
        // stays zero on the analytic path.
        let again = sweep.run(&grid);
        for (a, b) in fast.cells.iter().zip(&again.cells) {
            assert_eq!(a.report.pruned_by_bound, 0, "analytic path counts no dynamic prunes");
            assert_eq!(
                a.report.pruned_by_dominance, b.report.pruned_by_dominance,
                "dominance count must be deterministic at {:?}",
                a.query
            );
            assert_eq!(
                a.report.evaluated() + a.report.pruned(),
                a.report.enumerated,
                "kernel accounting must add up at {:?}",
                a.query
            );
        }
    }

    #[test]
    fn cached_sweep_matches_uncached_and_hits_on_repeat() {
        let grid = small_grid(Constraints { max_pes: 256, top_k: Some(5), ..Default::default() });
        let sweep = GridSweep::new();
        let cache = EngineCache::new(16);
        let plain = sweep.run(&grid);
        let cached = sweep.run_cached(&grid, &cache);
        for (a, b) in plain.cells.iter().zip(&cached.cells) {
            assert_eq!(a.query, b.query);
            assert_reports_equal(&a.report, &b.report, &format!("cold {:?}", a.query));
        }
        let first = cache.stats();
        assert!(first.misses > 0, "cold sweep must populate the cache");
        // A second sweep over the same grid hits for every engine and
        // cluster cache, and still produces identical reports.
        let warm = sweep.run_cached(&grid, &cache);
        let second = cache.stats();
        assert_eq!(second.misses, first.misses, "warm sweep must not rebuild");
        assert!(second.hits > first.hits, "warm sweep must hit");
        for (a, b) in plain.cells.iter().zip(&warm.cells) {
            assert_reports_equal(&a.report, &b.report, &format!("warm {:?}", a.query));
        }
    }

    #[test]
    fn cells_follow_query_order_and_get_finds_them() {
        let grid = small_grid(Constraints { max_pes: 64, ..Default::default() });
        let report = GridSweep::new().run(&grid);
        let queries = grid.queries();
        assert_eq!(report.len(), queries.len());
        for (cell, q) in report.cells.iter().zip(&queries) {
            assert_eq!(cell.query, *q);
        }
        let found = report.get(1, 96, 1).expect("cell exists");
        assert_eq!(found.query, GridQuery { model: 1, cluster: 1, batch: 96 });
        assert!(report.get(2, 96, 1).is_none());
        assert!(!report.is_empty());
    }

    #[test]
    fn empty_grid_yields_empty_report() {
        let grid = QueryGrid::new(Constraints::default());
        assert_eq!(grid.num_queries(), 0);
        let report = GridSweep::new().run(&grid);
        assert!(report.is_empty());
        // A grid missing just one axis is also empty.
        let no_batches = QueryGrid::new(Constraints::default())
            .with_model(model(0), TrainingConfig::small(1024, 32))
            .with_cluster(ClusterSpec::paper_system());
        assert_eq!(no_batches.num_queries(), 0);
        assert!(GridSweep::new().run(&no_batches).is_empty());
    }
}
